//! Crash-safe persistence primitives: atomic file replacement and a
//! write-ahead log (WAL) of dynamic update batches.
//!
//! The dynamic serving layer (PR 5) applies UPDATE batches in memory and
//! hot-swaps epochs, but a crash loses every applied batch and a partially
//! written index file corrupts the target path. This module supplies the two
//! durability building blocks:
//!
//! * [`atomic_write`] / [`atomic_write_with`] — write to a sibling temp
//!   file, `sync_all`, `rename` over the target, then fsync the parent
//!   directory, so the target path always holds either the complete old
//!   bytes or the complete new bytes;
//! * a WAL ([`WalWriter`] / [`read_wal`]) that journals update batches with
//!   per-record length prefixes and FNV-1a checksums, fsyncs each append,
//!   and on recovery distinguishes a *torn tail* (the expected artefact of a
//!   crash mid-append: tolerated and truncated) from *corruption* (any
//!   byte-flip inside a complete record or the header: a typed
//!   [`PllError::Format`], never a panic).
//!
//! # WAL file layout (little-endian)
//!
//! ```text
//! header  40 bytes:
//!   magic             8 bytes  "PLLWAL01"
//!   fingerprint       u64      FNV-1a of the base index file generation
//!   prev_fingerprint  u64      fingerprint of the previous generation
//!   base_epoch        u64      epoch already folded into the base index
//!   checksum          u64      FNV-1a of header bytes 0..32
//! records, each:
//!   len       u32     payload length in bytes
//!   checksum  u64     FNV-1a of the payload
//!   payload   len bytes:
//!     kind    u8      1 = Update, 2 = Commit, 3 = Rebase
//!     meta    u64     Update: journal-time epoch; Commit: sequence number
//!                     of the Update record it commits; Rebase: informational
//!     count   u32     number of (u32, u32) edge pairs that follow
//!     edges   count × (u32, u32)
//! ```
//!
//! The header is written via [`atomic_write`], so a WAL file never exists
//! with a partial header: a file shorter than the header is corruption, not
//! a torn create. Appends are a single `write_all` + `sync_all`, so a crash
//! mid-append leaves a record whose length prefix exceeds the remaining
//! bytes — the torn tail that [`read_wal`] truncates. One ambiguity is
//! inherent to length-prefixed logs: a byte-flip that *enlarges* a record's
//! `len` field past the end of the file is indistinguishable from a torn
//! tail and truncates from that record onward; flips anywhere else produce
//! a typed error because the header and every complete record carry
//! checksums over fixed spans.

use crate::error::{PllError, Result};
use crate::types::Vertex;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"PLLWAL01";
/// Size of the fixed WAL header in bytes.
pub const WAL_HEADER_LEN: u64 = 40;
/// Per-record framing overhead: `len` (u32) + checksum (u64).
const RECORD_OVERHEAD: u64 = 12;
/// Fixed payload prefix: kind (u8) + meta (u64) + count (u32).
const PAYLOAD_PREFIX: usize = 13;
/// Upper bound on a single record payload (1 GiB); larger lengths are
/// treated as corruption rather than attempted allocations.
const MAX_RECORD_PAYLOAD: u64 = 1 << 30;
/// Largest number of edges a single record may carry without its payload
/// exceeding `MAX_RECORD_PAYLOAD` (≈134M). Writers of unbounded edge
/// sets (a snapshot's `Rebase` of every edge inserted across server
/// lifetimes) must chunk at this bound; [`WalRecord`] encoding refuses
/// larger records with a typed error rather than writing a length prefix
/// the next [`read_wal`] would reject as corrupt (or, past `u32::MAX`
/// payload bytes, silently truncating the length field).
pub const MAX_RECORD_EDGES: usize = (MAX_RECORD_PAYLOAD as usize - PAYLOAD_PREFIX) / 8;

/// Refuses an edge count whose record payload would exceed
/// [`MAX_RECORD_PAYLOAD`], keeping every on-disk length prefix readable.
fn check_record_edges(count: usize) -> Result<()> {
    if count > MAX_RECORD_EDGES {
        return Err(PllError::Format {
            message: format!(
                "WAL record with {count} edges exceeds the {MAX_RECORD_EDGES}-edge \
                 record cap; split it into chunks"
            ),
        });
    }
    Ok(())
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a fingerprint of an in-memory byte image (e.g. a serialised index
/// about to be snapshotted).
pub fn fingerprint_bytes(bytes: &[u8]) -> u64 {
    fnv1a(bytes)
}

/// FNV-1a fingerprint of a file's contents, streamed in chunks.
pub fn fingerprint_file(path: &Path) -> Result<u64> {
    let mut file = File::open(path)?;
    let mut h = FNV_OFFSET;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        for &b in &buf[..n] {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    Ok(h)
}

/// Writes `bytes` to `path` atomically: the target either keeps its old
/// contents or holds exactly `bytes`, even across a crash at any point.
///
/// Implementation: write to a sibling `.tmp.<pid>` file, `sync_all`, rename
/// over the target, then fsync the parent directory so the rename itself is
/// durable.
///
/// ```
/// use pll_core::wal::atomic_write;
///
/// let dir = std::env::temp_dir().join(format!("pll-doc-{}", std::process::id()));
/// std::fs::create_dir_all(&dir).unwrap();
/// let target = dir.join("index.pll2");
///
/// atomic_write(&target, b"generation 1").unwrap();
/// // Replacement is all-or-nothing: readers of `target` only ever see
/// // one complete generation, never a partial write.
/// atomic_write(&target, b"generation 2").unwrap();
/// assert_eq!(std::fs::read(&target).unwrap(), b"generation 2");
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<()> {
    atomic_write_with(path, |w| w.write_all(bytes).map_err(PllError::from))
}

/// Like [`atomic_write`], but the caller streams the contents through a
/// buffered writer. If the closure (or any subsequent step) fails, the
/// temporary file is removed and the target is left untouched.
pub fn atomic_write_with<F>(path: &Path, write: F) -> Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> Result<()>,
{
    let file_name = path
        .file_name()
        .ok_or_else(|| PllError::Format {
            message: format!("atomic_write: path {} has no file name", path.display()),
        })?
        .to_os_string();
    let mut tmp_name = file_name;
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);

    let cleanup = |e: PllError| {
        let _ = fs::remove_file(&tmp);
        e
    };
    let file = File::create(&tmp).map_err(PllError::from)?;
    let mut writer = BufWriter::new(file);
    write(&mut writer).map_err(cleanup)?;
    let file = writer
        .into_inner()
        .map_err(|e| cleanup(PllError::Io(e.into_error())))?;
    file.sync_all().map_err(|e| cleanup(PllError::Io(e)))?;
    fs::rename(&tmp, path).map_err(|e| cleanup(PllError::Io(e)))?;
    // Make the rename itself durable. Directories cannot be opened for
    // fsync on every platform, so this step is best-effort.
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Fixed per-file WAL metadata, keying the log to a base index generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalHeader {
    /// FNV-1a fingerprint of the index file this WAL journals against.
    pub fingerprint: u64,
    /// Fingerprint of the previous index generation. During snapshot
    /// compaction the WAL is reset *before* the new index lands, so a crash
    /// between the two leaves a new WAL next to the old index; recovery
    /// accepts either fingerprint and the leading `Rebase` record restores
    /// the state the old index is missing.
    pub prev_fingerprint: u64,
    /// Epoch already folded into the base index (0 for a freshly built
    /// index); recovery restores the epoch counter to this value after
    /// replaying the `Rebase` record.
    pub base_epoch: u64,
}

impl WalHeader {
    fn to_bytes(self) -> [u8; WAL_HEADER_LEN as usize] {
        let mut out = [0u8; WAL_HEADER_LEN as usize];
        out[0..8].copy_from_slice(WAL_MAGIC);
        out[8..16].copy_from_slice(&self.fingerprint.to_le_bytes());
        out[16..24].copy_from_slice(&self.prev_fingerprint.to_le_bytes());
        out[24..32].copy_from_slice(&self.base_epoch.to_le_bytes());
        let sum = fnv1a(&out[0..32]);
        out[32..40].copy_from_slice(&sum.to_le_bytes());
        out
    }
}

/// One journaled record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// An UPDATE batch journaled *before* it was applied.
    Update {
        /// The serving epoch at journal time (metadata; replay recomputes
        /// epochs deterministically).
        epoch: u64,
        /// The edge batch exactly as received.
        edges: Vec<(Vertex, Vertex)>,
    },
    /// Marks the `seq`-th `Update` record (0-based, counting only `Update`
    /// records) as published. Advisory: recovery replays every complete
    /// `Update` record whether or not it is committed, because replay is
    /// idempotent — an uncommitted batch was journaled and possibly applied,
    /// and re-inserting an existing edge is skipped.
    Commit {
        /// 0-based index of the committed `Update` record.
        seq: u64,
    },
    /// Written as the first record of a compacted WAL: every edge inserted
    /// since the *graph file* was loaded. If the snapshot index landed, these
    /// all prune to no-ops on replay; if the crash beat the snapshot rename,
    /// they rebuild the missing state on top of the previous index.
    Rebase {
        /// All inserted edges since the base graph.
        edges: Vec<(Vertex, Vertex)>,
    },
}

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let (kind, meta, edges): (u8, u64, &[(Vertex, Vertex)]) = match self {
            WalRecord::Update { epoch, edges } => (1, *epoch, edges),
            WalRecord::Commit { seq } => (2, *seq, &[]),
            WalRecord::Rebase { edges } => (3, 0, edges),
        };
        let mut payload = Vec::with_capacity(PAYLOAD_PREFIX + edges.len() * 8);
        payload.push(kind);
        payload.extend_from_slice(&meta.to_le_bytes());
        payload.extend_from_slice(&(edges.len() as u32).to_le_bytes());
        for &(u, v) in edges {
            payload.extend_from_slice(&u.to_le_bytes());
            payload.extend_from_slice(&v.to_le_bytes());
        }
        payload
    }

    fn encode(&self) -> Result<Vec<u8>> {
        let edge_count = match self {
            WalRecord::Update { edges, .. } | WalRecord::Rebase { edges } => edges.len(),
            WalRecord::Commit { .. } => 0,
        };
        check_record_edges(edge_count)?;
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(RECORD_OVERHEAD as usize + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    fn decode_payload(payload: &[u8]) -> Result<WalRecord> {
        let malformed = |message: String| PllError::Format { message };
        if payload.len() < PAYLOAD_PREFIX {
            return Err(malformed(format!(
                "WAL record payload of {} bytes is shorter than the {} byte prefix",
                payload.len(),
                PAYLOAD_PREFIX
            )));
        }
        let kind = payload[0];
        let meta = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(payload[9..13].try_into().expect("4 bytes")) as usize;
        if payload.len() != PAYLOAD_PREFIX + count * 8 {
            return Err(malformed(format!(
                "WAL record declares {count} edges but carries {} payload bytes",
                payload.len()
            )));
        }
        let mut edges = Vec::with_capacity(count);
        for i in 0..count {
            let at = PAYLOAD_PREFIX + i * 8;
            let u = u32::from_le_bytes(payload[at..at + 4].try_into().expect("4 bytes"));
            let v = u32::from_le_bytes(payload[at + 4..at + 8].try_into().expect("4 bytes"));
            edges.push((u, v));
        }
        match kind {
            1 => Ok(WalRecord::Update { epoch: meta, edges }),
            2 => {
                if count != 0 {
                    return Err(malformed(format!(
                        "WAL commit record carries {count} edges; commits have none"
                    )));
                }
                Ok(WalRecord::Commit { seq: meta })
            }
            3 => Ok(WalRecord::Rebase { edges }),
            k => Err(malformed(format!("unknown WAL record kind {k}"))),
        }
    }
}

/// The result of reading a WAL file: header, every complete record, and how
/// much of the file they span.
#[derive(Debug)]
pub struct WalContents {
    /// The validated file header.
    pub header: WalHeader,
    /// Every complete, checksum-verified record in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + complete records). A
    /// writer reopening this WAL truncates the file to this length.
    pub valid_len: u64,
    /// Bytes beyond `valid_len` — the torn tail left by a crash mid-append
    /// (0 for a cleanly closed log).
    pub truncated_bytes: u64,
}

/// Reads a WAL file. Returns `Ok(None)` if the file does not exist (no log
/// yet). A torn tail record — the expected artefact of a crash mid-append —
/// is tolerated and reported via `truncated_bytes`; any other malformation
/// (bad magic, short file, checksum mismatch, structural nonsense inside a
/// complete record) is a typed [`PllError::Format`].
pub fn read_wal(path: &Path) -> Result<Option<WalContents>> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PllError::Io(e)),
    };
    read_wal_bytes(&bytes).map(Some)
}

fn read_wal_bytes(bytes: &[u8]) -> Result<WalContents> {
    let corrupt = |message: String| PllError::Format { message };
    // The header is created atomically, so a short or mismatched header is
    // corruption — it cannot be a torn create.
    if (bytes.len() as u64) < WAL_HEADER_LEN {
        return Err(corrupt(format!(
            "WAL file of {} bytes is shorter than the {WAL_HEADER_LEN} byte header",
            bytes.len()
        )));
    }
    if &bytes[0..8] != WAL_MAGIC {
        return Err(corrupt("WAL file has bad magic bytes".into()));
    }
    let stored = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
    if stored != fnv1a(&bytes[0..32]) {
        return Err(corrupt("WAL header checksum mismatch".into()));
    }
    let header = WalHeader {
        fingerprint: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        prev_fingerprint: u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
        base_epoch: u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
    };

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN as usize;
    loop {
        let rem = (bytes.len() - pos) as u64;
        if rem == 0 {
            // Cleanly closed log.
            break;
        }
        if rem < RECORD_OVERHEAD {
            // Not even a full length prefix + checksum: torn tail.
            break;
        }
        let len = u64::from(u32::from_le_bytes(
            bytes[pos..pos + 4].try_into().expect("4 bytes"),
        ));
        if len > MAX_RECORD_PAYLOAD {
            return Err(corrupt(format!(
                "WAL record at byte {pos} declares an implausible {len} byte payload"
            )));
        }
        if RECORD_OVERHEAD + len > rem {
            // The append was cut short: torn tail.
            break;
        }
        let sum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let payload = &bytes[pos + 12..pos + 12 + len as usize];
        // A crashed append only ever leaves a *short* record (single
        // write_all), so a full-length record with a bad checksum is
        // corruption even at the tail.
        if sum != fnv1a(payload) {
            return Err(corrupt(format!(
                "WAL record at byte {pos} fails its checksum"
            )));
        }
        records.push(WalRecord::decode_payload(payload)?);
        pos += (RECORD_OVERHEAD + len) as usize;
    }
    Ok(WalContents {
        header,
        records,
        valid_len: pos as u64,
        truncated_bytes: (bytes.len() - pos) as u64,
    })
}

/// Appends records to a WAL file, fsyncing each append.
pub struct WalWriter {
    file: File,
}

impl WalWriter {
    /// Creates (or atomically replaces) a WAL at `path` containing `header`
    /// and `initial` records, then reopens it for appending. Because the
    /// initial image goes through [`atomic_write`], a crash during creation
    /// never leaves a partial header on disk.
    pub fn create(path: &Path, header: &WalHeader, initial: &[WalRecord]) -> Result<WalWriter> {
        let mut image = Vec::new();
        image.extend_from_slice(&header.to_bytes());
        for rec in initial {
            image.extend_from_slice(&rec.encode()?);
        }
        atomic_write(path, &image)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(WalWriter { file })
    }

    /// Reopens an existing WAL for appending, truncating it to `valid_len`
    /// first (discarding the torn tail reported by [`read_wal`]).
    pub fn open_existing(path: &Path, valid_len: u64) -> Result<WalWriter> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let actual = file.metadata()?.len();
        if actual > valid_len {
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(WalWriter { file })
    }

    /// Appends one record and fsyncs. The record is written with a single
    /// `write_all`, so a crash mid-append leaves at most a torn tail that
    /// the next [`read_wal`] truncates. A record over [`MAX_RECORD_EDGES`]
    /// is refused with a typed error before any byte is written.
    ///
    /// Returns a receipt with the appended byte count and the fsync wall
    /// time, so callers can account WAL throughput and sync latency
    /// (`pll-server` feeds these into its metrics registry); callers
    /// that only need durability can ignore it.
    pub fn append(&mut self, record: &WalRecord) -> Result<AppendReceipt> {
        let encoded = record.encode()?;
        self.file.write_all(&encoded)?;
        let sync_started = std::time::Instant::now();
        self.file.sync_all()?;
        Ok(AppendReceipt {
            bytes: encoded.len() as u64,
            fsync_nanos: sync_started.elapsed().as_nanos() as u64,
        })
    }
}

/// Accounting for one [`WalWriter::append`]: how many bytes landed in
/// the journal and how long the fsync took.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Encoded record size appended to the WAL.
    pub bytes: u64,
    /// Wall-clock nanoseconds the `fsync` (`File::sync_all`) took.
    pub fsync_nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(name: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("pll_wal_test_{}_{id}_{name}", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Rebase {
                edges: vec![(7, 9)],
            },
            WalRecord::Update {
                epoch: 3,
                edges: vec![(1, 2), (3, 4), (1, 2)],
            },
            WalRecord::Commit { seq: 0 },
            WalRecord::Update {
                epoch: 4,
                edges: vec![],
            },
        ]
    }

    #[test]
    fn wal_roundtrip_create_append_read() {
        let path = temp_path("roundtrip");
        let header = WalHeader {
            fingerprint: 0xdead_beef,
            prev_fingerprint: 0xdead_beef,
            base_epoch: 5,
        };
        let records = sample_records();
        let mut writer = WalWriter::create(&path, &header, &records[..1]).unwrap();
        for rec in &records[1..] {
            writer.append(rec).unwrap();
        }
        drop(writer);
        let contents = read_wal(&path).unwrap().unwrap();
        assert_eq!(contents.header, header);
        assert_eq!(contents.records, records);
        assert_eq!(contents.truncated_bytes, 0);
        assert_eq!(contents.valid_len, std::fs::metadata(&path).unwrap().len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_wal_reads_as_none() {
        assert!(read_wal(&temp_path("missing")).unwrap().is_none());
    }

    #[test]
    fn torn_tail_is_truncated_at_every_boundary() {
        let header = WalHeader {
            fingerprint: 1,
            prev_fingerprint: 1,
            base_epoch: 0,
        };
        let mut image = Vec::new();
        image.extend_from_slice(&header.to_bytes());
        let complete = vec![
            WalRecord::Update {
                epoch: 1,
                edges: vec![(0, 1)],
            },
            WalRecord::Commit { seq: 0 },
        ];
        for rec in &complete {
            image.extend_from_slice(&rec.encode().unwrap());
        }
        let valid_len = image.len() as u64;
        let tail = WalRecord::Update {
            epoch: 2,
            edges: vec![(2, 3), (4, 5)],
        }
        .encode()
        .unwrap();
        // Every strictly-partial prefix of the final append must be treated
        // as a torn tail: both records survive, the tail is reported.
        for cut in 0..tail.len() {
            let mut bytes = image.clone();
            bytes.extend_from_slice(&tail[..cut]);
            let contents = read_wal_bytes(&bytes).unwrap();
            assert_eq!(contents.records, complete, "cut at {cut}");
            assert_eq!(contents.valid_len, valid_len, "cut at {cut}");
            assert_eq!(contents.truncated_bytes, cut as u64, "cut at {cut}");
        }
    }

    #[test]
    fn open_existing_truncates_the_torn_tail() {
        let path = temp_path("truncate");
        let header = WalHeader {
            fingerprint: 2,
            prev_fingerprint: 2,
            base_epoch: 0,
        };
        let first = WalRecord::Update {
            epoch: 1,
            edges: vec![(0, 1)],
        };
        let mut writer = WalWriter::create(&path, &header, std::slice::from_ref(&first)).unwrap();
        drop(writer);
        // Simulate a crash mid-append: half a record at the tail.
        let tail = WalRecord::Update {
            epoch: 2,
            edges: vec![(1, 2)],
        }
        .encode()
        .unwrap();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&tail[..tail.len() / 2]).unwrap();
        }
        let contents = read_wal(&path).unwrap().unwrap();
        assert!(contents.truncated_bytes > 0);
        writer = WalWriter::open_existing(&path, contents.valid_len).unwrap();
        let second = WalRecord::Commit { seq: 0 };
        writer.append(&second).unwrap();
        drop(writer);
        let contents = read_wal(&path).unwrap().unwrap();
        assert_eq!(contents.records, vec![first, second]);
        assert_eq!(contents.truncated_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_byte_flip_is_truncation_or_typed_error_never_panic() {
        let header = WalHeader {
            fingerprint: 42,
            prev_fingerprint: 41,
            base_epoch: 9,
        };
        let mut image = Vec::new();
        image.extend_from_slice(&header.to_bytes());
        let records = sample_records();
        // Byte positions of the records' u32 length prefixes: a flip there
        // can enlarge the length past EOF, which is indistinguishable from
        // a torn tail (the documented ambiguity of length-prefixed logs).
        let mut len_field: Vec<bool> = Vec::new();
        for rec in &records {
            let encoded = rec.encode().unwrap();
            for i in 0..encoded.len() {
                len_field.push(i < 4);
            }
            image.extend_from_slice(&encoded);
        }
        for at in 0..image.len() {
            for flip in [0x01u8, 0x80u8] {
                let mut bytes = image.clone();
                bytes[at] ^= flip;
                match read_wal_bytes(&bytes) {
                    // A flip may mimic a torn tail (e.g. enlarging the last
                    // record's length prefix); the recovered records must
                    // then be a strict prefix of the real ones.
                    Ok(contents) => {
                        assert!(
                            records.starts_with(&contents.records),
                            "flip at {at}: recovered records are not a prefix"
                        );
                        assert!(
                            contents.records.len() < records.len(),
                            "flip at {at}: a corrupted image decoded fully"
                        );
                    }
                    Err(PllError::Format { .. }) => {}
                    Err(e) => panic!("flip at {at}: unexpected error kind {e}"),
                }
                // Outside the length prefixes a flip can never be mistaken
                // for a torn tail: the header and every payload/checksum
                // byte is covered by a checksum over a fixed span.
                let in_len_field =
                    at >= WAL_HEADER_LEN as usize && len_field[at - WAL_HEADER_LEN as usize];
                if !in_len_field {
                    assert!(
                        matches!(read_wal_bytes(&bytes), Err(PllError::Format { .. })),
                        "flip at {at}: non-length corruption must be a typed error"
                    );
                }
            }
        }
    }

    #[test]
    fn short_file_and_bad_magic_are_typed_errors() {
        assert!(matches!(
            read_wal_bytes(&[0u8; 10]),
            Err(PllError::Format { .. })
        ));
        let mut bytes = WalHeader {
            fingerprint: 0,
            prev_fingerprint: 0,
            base_epoch: 0,
        }
        .to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            read_wal_bytes(&bytes),
            Err(PllError::Format { .. })
        ));
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let path = temp_path("atomic");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failed_partial_write_never_replaces_the_old_file() {
        let path = temp_path("partial");
        std::fs::write(&path, b"precious old index").unwrap();
        // Simulate a crash mid-write: the closure emits half the data and
        // then fails, as an interrupted serialisation would.
        let result = atomic_write_with(&path, |w| {
            w.write_all(b"half of the new conte")
                .map_err(PllError::from)?;
            Err(PllError::Format {
                message: "simulated crash mid-write".into(),
            })
        });
        assert!(result.is_err());
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"precious old index",
            "a failed write must leave the old file untouched"
        );
        // And no temp litter alongside it.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        for entry in std::fs::read_dir(dir).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            assert!(
                !(name.starts_with(&stem) && name.contains(".tmp.")),
                "leftover temp file {name}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversized_records_are_refused_with_a_typed_error() {
        // The cap sits exactly where a record's payload would cross
        // MAX_RECORD_PAYLOAD and the next read_wal would reject the log
        // as corrupt.
        assert!(check_record_edges(MAX_RECORD_EDGES).is_ok());
        assert!(matches!(
            check_record_edges(MAX_RECORD_EDGES + 1),
            Err(PllError::Format { .. })
        ));
        assert!(
            (PAYLOAD_PREFIX + MAX_RECORD_EDGES * 8) as u64 <= MAX_RECORD_PAYLOAD,
            "a maximal record must still be readable"
        );
        assert!(
            (PAYLOAD_PREFIX + (MAX_RECORD_EDGES + 1) * 8) as u64 > MAX_RECORD_PAYLOAD,
            "the cap must not be needlessly conservative"
        );
        // Ordinary records still encode.
        for rec in sample_records() {
            assert!(rec.encode().is_ok());
        }
    }

    #[test]
    fn fingerprints_agree_between_file_and_bytes() {
        let path = temp_path("fingerprint");
        let data = b"some index image bytes".repeat(1000);
        std::fs::write(&path, &data).unwrap();
        assert_eq!(fingerprint_file(&path).unwrap(), fingerprint_bytes(&data));
        let _ = std::fs::remove_file(&path);
    }
}
