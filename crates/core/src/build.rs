//! Index construction: the pruned landmark labeling algorithm.
//!
//! The build pipeline follows §4.2, §4.5 and §5.4 of the paper, in four
//! phases that [`ConstructionStats`] times individually
//! (`order_seconds` / `relabel_seconds` / `bp_seconds` +
//! `pruned_seconds` / `flatten_seconds`):
//!
//! 1. **Phase 0a — ordering**: compute the vertex order (§4.4);
//! 2. **Phase 0b — relabelling**: relabel the graph so vertex `i` *is*
//!    rank `i` — labels then store ranks and are implicitly sorted (§4.5
//!    "Sorting Labels");
//! 3. **searches**: run `t` *bit-parallel* BFSs without pruning from the
//!    highest-priority unused vertices, each absorbing the root and up to
//!    64 of its highest-priority unused neighbours (§5.4), then a
//!    *pruned* BFS (Algorithm 1) from every remaining vertex in rank
//!    order. A visit of `u` at distance `d` is pruned when the distance
//!    is already answerable: either a bit-parallel label pair certifies
//!    `dist ≤ d`, or the temp-array query over `L(u)` does (§4.5
//!    "Querying" — `O(|L(u)|)` per test instead of a two-sided merge);
//! 4. **flatten**: copy the per-vertex label vectors into the flat
//!    sentinel-terminated arena of [`LabelSet`].
//!
//! Engineering notes honoured from §4.5: the tentative-distance array and
//! temp array are 8-bit and reset lazily (touched entries only), labels are
//! appended in rank order, and the final arena adds sentinels (§4.5
//! "Sentinel").
//!
//! # Batch-parallel construction
//!
//! [`IndexBuilder::threads`] selects the batch-parallel path implemented in
//! [`crate::par`]: roots are processed in rank-ordered *batches*, each
//! batch's pruned BFSs run concurrently on worker threads with thread-local
//! 8-bit tentative/temp scratch (reset lazily, exactly as the sequential
//! path does), and each BFS buffers its would-be label entries instead of
//! writing them. At the batch barrier the buffers are committed in rank
//! order; because an in-batch BFS could not see labels produced by
//! lower-ranked roots of the *same* batch, a cheap re-prune pass removes
//! every buffered entry that a same-batch hub certifies, which restores the
//! canonical labeling. The result is **byte-identical to the sequential
//! build** — see the determinism argument in [`crate::par`]'s module docs.
//! The same substrate (via the [`crate::par::PrunedSearch`] trait) powers
//! the `threads` knob of the directed, weighted and weighted-directed
//! builders.
//!
//! The non-search phases honour the same `threads` knob with the same
//! byte-identical guarantee: the ordering fans out over the workers
//! ([`crate::order::compute_order_threaded`]), the relabelling translates
//! disjoint rank chunks in parallel
//! ([`pll_graph::reorder::apply_order_threaded`]), and the flatten copies
//! label chunks into the arena from the workers
//! ([`LabelSet`]`::from_vecs`) — removing the serial prefix/suffix that
//! would otherwise floor the parallel build's speedup (Amdahl).

use crate::bp::{select_bp_roots, BitParallelLabels, BpEntry, BpScratch};
use crate::error::{PllError, Result};
use crate::index::PllIndex;
use crate::label::LabelSet;
use crate::order::{compute_order, OrderingStrategy};
use crate::stats::{ConstructionStats, RootStats};
use crate::types::{Dist, Rank, INF8, INF_QUERY, MAX_DIST, RANK_SENTINEL};
use pll_graph::reorder::{apply_order, inverse_permutation};
use pll_graph::{CsrGraph, Vertex};
use std::time::Instant;

/// Configures and runs index construction.
///
/// ```
/// use pll_core::{IndexBuilder, OrderingStrategy};
/// use pll_graph::gen;
///
/// let g = gen::barabasi_albert(500, 3, 7).unwrap();
/// let index = IndexBuilder::new()
///     .ordering(OrderingStrategy::Degree)
///     .bit_parallel_roots(8)
///     .build(&g)
///     .unwrap();
/// assert_eq!(index.distance(3, 3), Some(0));
/// ```
#[derive(Clone, Debug)]
pub struct IndexBuilder {
    pub(crate) ordering: OrderingStrategy,
    pub(crate) bp_roots: usize,
    pub(crate) store_parents: bool,
    pub(crate) seed: u64,
    pub(crate) record_root_stats: bool,
    pub(crate) abort_avg_label: Option<f64>,
    pub(crate) abort_seconds: Option<f64>,
    pub(crate) threads: usize,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl IndexBuilder {
    /// Default configuration: Degree ordering (the paper's default), 16
    /// bit-parallel roots (the paper's setting for its smaller datasets),
    /// no parent pointers.
    pub fn new() -> Self {
        IndexBuilder {
            ordering: OrderingStrategy::Degree,
            bp_roots: 16,
            store_parents: false,
            seed: 0x5EED_1A5E,
            record_root_stats: false,
            abort_avg_label: None,
            abort_seconds: None,
            threads: 1,
        }
    }

    /// Sets the number of worker threads for the batch-parallel
    /// construction path (see the module docs and [`crate::par`]).
    ///
    /// * `1` (the default) — the sequential Algorithm 1 path;
    /// * `k > 1` — batch-parallel construction on `k` threads (clamped to
    ///   [`crate::par::max_threads`]), producing a [`LabelSet`]
    ///   byte-identical to the sequential build — successful builds return
    ///   identical indices at every thread count;
    /// * `0` — auto-detect: one thread per available CPU.
    ///
    /// Incompatible with [`IndexBuilder::store_parents`]: parent pointers
    /// depend on BFS queue order, which the parallel path does not
    /// reproduce. (Checked against the requested value, so
    /// `threads(0)` + `store_parents(true)` fails on every host.)
    ///
    /// Two error-path behaviours differ from `threads(1)`, by design:
    /// a multi-threaded build can return [`PllError::DiameterTooLarge`]
    /// on a graph whose sequential build prunes every search short of the
    /// 8-bit ceiling (its relaxed in-batch BFSs explore further; such
    /// graphs need the weighted index either way), and
    /// [`IndexBuilder::abort_after_seconds`] is checked at batch rather
    /// than per-root granularity.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the vertex ordering strategy (§4.4).
    pub fn ordering(mut self, strategy: OrderingStrategy) -> Self {
        self.ordering = strategy;
        self
    }

    /// Sets `t`, the number of bit-parallel BFSs run before the pruned
    /// phase (§5.4). `0` disables bit-parallel labels entirely.
    pub fn bit_parallel_roots(mut self, t: usize) -> Self {
        self.bp_roots = t;
        self
    }

    /// Stores parent pointers for shortest-*path* reconstruction (§6).
    /// Incompatible with bit-parallel roots (BP labels carry no parents);
    /// set `bit_parallel_roots(0)` as well.
    pub fn store_parents(mut self, yes: bool) -> Self {
        self.store_parents = yes;
        self
    }

    /// Seed for the Random/Closeness ordering strategies.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records per-root visit/label/prune counts (Figures 3 and 4).
    pub fn record_root_stats(mut self, yes: bool) -> Self {
        self.record_root_stats = yes;
        self
    }

    /// Aborts construction with [`PllError::LabelBudgetExceeded`] once the
    /// average normal-label size exceeds `budget` — the Table 5 harness uses
    /// this to report DNF for orderings that explode.
    pub fn abort_if_avg_label_exceeds(mut self, budget: f64) -> Self {
        self.abort_avg_label = Some(budget);
        self
    }

    /// Aborts construction with [`PllError::TimeBudgetExceeded`] once the
    /// wall clock passes `seconds` (checked between pruned BFSs) — the
    /// harness's bounded version of the paper's "did not finish in one
    /// day".
    pub fn abort_after_seconds(mut self, seconds: f64) -> Self {
        self.abort_seconds = Some(seconds);
        self
    }

    /// Builds the index.
    pub fn build(&self, g: &CsrGraph) -> Result<PllIndex> {
        self.build_with_observer(g, &mut NoopObserver)
    }

    /// Builds the index, invoking `observer` after the bit-parallel phase
    /// and after every pruned BFS with a queryable view of the partial
    /// index. Figure 4 (pair coverage against the number of performed BFSs)
    /// is measured through this hook.
    pub fn build_with_observer(
        &self,
        g: &CsrGraph,
        observer: &mut dyn BuildObserver,
    ) -> Result<PllIndex> {
        if self.store_parents && self.bp_roots > 0 {
            return Err(PllError::IncompatibleOptions {
                message: "store_parents(true) requires bit_parallel_roots(0): bit-parallel \
                          labels carry no parent pointers"
                    .into(),
            });
        }
        // Validate the *requested* combination, not the resolved thread
        // count: `threads(0)` (auto) may resolve to 1 on a single-core
        // host, and `store_parents` must not succeed or fail depending on
        // the machine it runs on.
        if self.store_parents && self.threads != 1 {
            return Err(PllError::IncompatibleOptions {
                message: "store_parents(true) requires threads(1): parent pointers \
                          depend on BFS queue order, which the parallel path does not \
                          reproduce"
                    .into(),
            });
        }
        let threads = crate::par::resolve_threads(self.threads);
        if threads > 1 {
            return crate::par::build_parallel(self, g, observer, threads);
        }
        let n = g.num_vertices();
        if n > u32::MAX as usize - 1 {
            return Err(PllError::Graph(pll_graph::GraphError::TooLarge {
                what: "vertex count",
            }));
        }

        // Phase 0: ordering + relabelling (§4.4, §4.5 "Sorting Labels").
        let t0 = Instant::now();
        let order = compute_order(g, &self.ordering, self.seed)?;
        let order_seconds = t0.elapsed().as_secs_f64();
        let tr = Instant::now();
        let inv = inverse_permutation(&order);
        let h = apply_order(g, &order)?; // rank-space graph
        let relabel_seconds = tr.elapsed().as_secs_f64();

        let mut stats = ConstructionStats {
            order_seconds,
            relabel_seconds,
            threads: 1,
            per_root: self.record_root_stats.then(Vec::new),
            ..Default::default()
        };

        // usd[v]: v is covered as a BP root / BP neighbour / finished pruned
        // root and must not root another search.
        let mut usd = vec![false; n];

        // Phase 1: bit-parallel BFSs from the highest-priority unused
        // vertices (§5.4).
        let t1 = Instant::now();
        let t = self.bp_roots;
        let mut bp = BitParallelLabels::new(n, t);
        {
            let mut scratch = BpScratch::new(n);
            for (i, (root, sub)) in select_bp_roots(&h, &mut usd, t).into_iter().enumerate() {
                bp.run_root(&h, i, root, &sub, &mut scratch)?;
                stats.bp_roots_used += 1;
            }
        }
        stats.bp_seconds = t1.elapsed().as_secs_f64();

        // Phase 2: pruned BFS from every remaining vertex in rank order.
        let t2 = Instant::now();
        let mut label_ranks: Vec<Vec<Rank>> = vec![Vec::new(); n];
        let mut label_dists: Vec<Vec<Dist>> = vec![Vec::new(); n];
        let mut label_parents: Option<Vec<Vec<Rank>>> =
            self.store_parents.then(|| vec![Vec::new(); n]);

        let mut tentative: Vec<Dist> = vec![INF8; n]; // the P array
        let mut temp: Vec<Dist> = vec![INF8; n]; // the T array (§4.5 "Querying")
        let mut parent_of: Vec<Rank> = if self.store_parents {
            vec![RANK_SENTINEL; n]
        } else {
            Vec::new()
        };
        let mut queue: Vec<Rank> = Vec::with_capacity(n);
        let label_budget_entries = self.abort_avg_label.map(|b| (b * n as f64).ceil() as u64);

        {
            observer.after_bp_phase(&PartialIndex {
                label_ranks: &label_ranks,
                label_dists: &label_dists,
                bp: &bp,
                inv: &inv,
            });
        }

        for r in 0..n as Rank {
            if usd[r as usize] {
                continue;
            }
            // Prepare the temp array from L(r): T[w] = d(w, r).
            {
                let lr = &label_ranks[r as usize];
                let ld = &label_dists[r as usize];
                for (idx, &w) in lr.iter().enumerate() {
                    temp[w as usize] = ld[idx];
                }
            }
            let root_bp = bp.entries_of(r).to_vec(); // t is small; copy out

            queue.clear();
            queue.push(r);
            tentative[r as usize] = 0;
            if self.store_parents {
                parent_of[r as usize] = RANK_SENTINEL;
            }
            let mut head = 0usize;
            let mut visited = 0u32;
            let mut labeled = 0u32;
            let mut pruned = 0u32;

            while head < queue.len() {
                let u = queue[head];
                head += 1;
                let d = tentative[u as usize];
                visited += 1;

                let prune = prune_test(
                    &root_bp,
                    bp.entries_of(u),
                    &label_ranks[u as usize],
                    &label_dists[u as usize],
                    &temp,
                    d,
                );
                if prune {
                    pruned += 1;
                    continue;
                }

                label_ranks[u as usize].push(r);
                label_dists[u as usize].push(d);
                if let Some(lp) = &mut label_parents {
                    lp[u as usize].push(parent_of[u as usize]);
                }
                labeled += 1;

                for &w in h.neighbors(u) {
                    if tentative[w as usize] == INF8 {
                        if d >= MAX_DIST {
                            return Err(PllError::DiameterTooLarge { root_rank: r });
                        }
                        tentative[w as usize] = d + 1;
                        if self.store_parents {
                            parent_of[w as usize] = u;
                        }
                        queue.push(w);
                    }
                }
            }

            // Lazy reset of the touched entries (§4.5 "Initialization").
            for &v in &queue {
                tentative[v as usize] = INF8;
            }
            {
                let lr = &label_ranks[r as usize];
                for &w in lr.iter() {
                    temp[w as usize] = INF8;
                }
            }
            usd[r as usize] = true;

            stats.pruned_roots += 1;
            stats.total_visited += visited as u64;
            stats.total_labeled += labeled as u64;
            stats.total_pruned += pruned as u64;
            let root_stats = RootStats {
                rank: r,
                visited,
                labeled,
                pruned,
            };
            if let Some(per_root) = &mut stats.per_root {
                per_root.push(root_stats);
            }
            observer.after_root(
                stats.pruned_roots,
                &root_stats,
                &PartialIndex {
                    label_ranks: &label_ranks,
                    label_dists: &label_dists,
                    bp: &bp,
                    inv: &inv,
                },
            );

            if let Some(budget) = label_budget_entries {
                if stats.total_labeled > budget {
                    return Err(PllError::LabelBudgetExceeded {
                        budget: self.abort_avg_label.unwrap_or_default(),
                    });
                }
            }
            if let Some(seconds) = self.abort_seconds {
                // Only consult the clock every few roots; `Instant::now` per
                // BFS would be noise but not free.
                if stats.pruned_roots.is_multiple_of(64) && t2.elapsed().as_secs_f64() > seconds {
                    return Err(PllError::TimeBudgetExceeded { seconds });
                }
            }
        }
        stats.pruned_seconds = t2.elapsed().as_secs_f64();

        let tf = Instant::now();
        let labels = LabelSet::from_vecs(&label_ranks, &label_dists, label_parents.as_deref(), 1)?;
        stats.flatten_seconds = tf.elapsed().as_secs_f64();
        Ok(PllIndex::from_parts(order, inv, labels, bp, stats))
    }
}

/// The pruning test of Algorithm 1 line 7 for a visit of `u` at distance
/// `d` from the current root: first against bit-parallel labels (§5.4) —
/// `root_bp`/`u_bp` are the root's and `u`'s BP entries, with the
/// δ̃−2 / δ̃−1 / δ̃ case analysis of §5.3 — then against normal labels via
/// the temp array (`temp[w] = d(w, root)`, §4.5 "Querying").
///
/// Shared verbatim by the sequential loop and the batch-parallel path in
/// [`crate::par`]: the parallel build's byte-identical-output contract
/// depends on both paths pruning with exactly this predicate.
#[inline]
pub(crate) fn prune_test(
    root_bp: &[BpEntry],
    u_bp: &[BpEntry],
    u_label_ranks: &[Rank],
    u_label_dists: &[Dist],
    temp: &[Dist],
    d: Dist,
) -> bool {
    for (a, b) in root_bp.iter().zip(u_bp.iter()) {
        if a.dist == INF8 || b.dist == INF8 {
            continue;
        }
        let mut td = a.dist as u32 + b.dist as u32;
        if td.saturating_sub(2) <= d as u32 {
            if a.set_minus1 & b.set_minus1 != 0 {
                td -= 2;
            } else if (a.set_minus1 & b.set_zero) | (a.set_zero & b.set_minus1) != 0 {
                td -= 1;
            }
            if td <= d as u32 {
                return true;
            }
        }
    }
    for (idx, &w) in u_label_ranks.iter().enumerate() {
        let tw = temp[w as usize];
        if tw != INF8 && tw as u32 + u_label_dists[idx] as u32 <= d as u32 {
            return true;
        }
    }
    false
}

/// Hook into construction progress; see
/// [`IndexBuilder::build_with_observer`].
pub trait BuildObserver {
    /// Called once, after the bit-parallel phase and before the first pruned
    /// BFS.
    fn after_bp_phase(&mut self, _view: &PartialIndex<'_>) {}
    /// Called after the `k`-th pruned BFS (`k` counts from 1).
    fn after_root(&mut self, _k: usize, _stats: &RootStats, _view: &PartialIndex<'_>) {}
}

/// The do-nothing observer used by [`IndexBuilder::build`].
struct NoopObserver;
impl BuildObserver for NoopObserver {}

/// A queryable snapshot of the index mid-construction. Distances returned
/// are upper bounds that become exact once the covering root has been
/// processed (Theorem 4.1's invariant) — exactly the "covered pairs"
/// semantics of Figure 4.
pub struct PartialIndex<'a> {
    pub(crate) label_ranks: &'a [Vec<Rank>],
    pub(crate) label_dists: &'a [Vec<Dist>],
    pub(crate) bp: &'a BitParallelLabels,
    pub(crate) inv: &'a [Vertex],
}

impl PartialIndex<'_> {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.label_ranks.len()
    }

    /// Current 2-hop upper bound between *original* vertices `u` and `v`
    /// (`None` = not yet covered / disconnected).
    pub fn distance(&self, u: Vertex, v: Vertex) -> Option<u32> {
        if u == v {
            return Some(0);
        }
        let (ru, rv) = (self.inv[u as usize], self.inv[v as usize]);
        let mut best = self.bp.query(ru, rv);
        let (ar, ad) = (
            &self.label_ranks[ru as usize],
            &self.label_dists[ru as usize],
        );
        let (br, bd) = (
            &self.label_ranks[rv as usize],
            &self.label_dists[rv as usize],
        );
        let (mut i, mut j) = (0usize, 0usize);
        while i < ar.len() && j < br.len() {
            if ar[i] == br[j] {
                let d = ad[i] as u32 + bd[j] as u32;
                if d < best {
                    best = d;
                }
                i += 1;
                j += 1;
            } else if ar[i] < br[j] {
                i += 1;
            } else {
                j += 1;
            }
        }
        (best != INF_QUERY).then_some(best)
    }

    /// Total label entries so far.
    pub fn total_label_entries(&self) -> usize {
        self.label_ranks.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::gen;
    use pll_graph::traversal::bfs::BfsEngine;

    fn check_exact(g: &CsrGraph, builder: &IndexBuilder) {
        let idx = builder.build(g).unwrap();
        let n = g.num_vertices();
        let mut engine = BfsEngine::new(n);
        for s in 0..n as Vertex {
            let d = engine.run(g, s).to_vec();
            for t in 0..n as Vertex {
                let expect = (d[t as usize] != u32::MAX).then_some(d[t as usize]);
                assert_eq!(idx.distance(s, t), expect, "pair ({s}, {t})");
            }
        }
    }

    #[test]
    fn exact_on_small_graphs_no_bp() {
        let b = IndexBuilder::new().bit_parallel_roots(0);
        check_exact(&gen::path(12).unwrap(), &b);
        check_exact(&gen::cycle(9).unwrap(), &b);
        check_exact(&gen::star(15).unwrap(), &b);
        check_exact(&gen::grid(5, 6).unwrap(), &b);
        check_exact(&gen::complete(8).unwrap(), &b);
        check_exact(&gen::balanced_tree(3, 3).unwrap(), &b);
    }

    #[test]
    fn exact_on_small_graphs_with_bp() {
        let b = IndexBuilder::new().bit_parallel_roots(4);
        check_exact(&gen::path(12).unwrap(), &b);
        check_exact(&gen::grid(6, 5).unwrap(), &b);
        check_exact(&gen::erdos_renyi_gnm(80, 160, 3).unwrap(), &b);
        check_exact(&gen::barabasi_albert(90, 2, 5).unwrap(), &b);
    }

    #[test]
    fn exact_with_bp_saturation() {
        // More BP roots than vertices: everything is covered by phase 1.
        let g = gen::erdos_renyi_gnm(40, 100, 9).unwrap();
        let b = IndexBuilder::new().bit_parallel_roots(64);
        check_exact(&g, &b);
    }

    #[test]
    fn exact_on_disconnected_graph() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        check_exact(&g, &IndexBuilder::new().bit_parallel_roots(0));
        check_exact(&g, &IndexBuilder::new().bit_parallel_roots(2));
    }

    #[test]
    fn all_orderings_give_exact_indices() {
        let g = gen::barabasi_albert(120, 3, 11).unwrap();
        for strat in [
            OrderingStrategy::Degree,
            OrderingStrategy::Random,
            OrderingStrategy::Closeness { samples: 8 },
        ] {
            let b = IndexBuilder::new().ordering(strat).bit_parallel_roots(2);
            check_exact(&g, &b);
        }
    }

    #[test]
    fn custom_order_is_respected() {
        let g = gen::path(6).unwrap();
        let order: Vec<Vertex> = vec![5, 4, 3, 2, 1, 0];
        let idx = IndexBuilder::new()
            .ordering(OrderingStrategy::Custom(order.clone()))
            .bit_parallel_roots(0)
            .build(&g)
            .unwrap();
        assert_eq!(idx.order(), &order[..]);
        assert_eq!(idx.distance(0, 5), Some(5));
    }

    #[test]
    fn parents_require_no_bp() {
        let g = gen::path(4).unwrap();
        let err = IndexBuilder::new()
            .store_parents(true)
            .bit_parallel_roots(4)
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PllError::IncompatibleOptions { .. }));
        let ok = IndexBuilder::new()
            .store_parents(true)
            .bit_parallel_roots(0)
            .build(&g)
            .unwrap();
        assert!(ok.has_parents());
    }

    #[test]
    fn diameter_overflow_is_reported() {
        let g = gen::path(300).unwrap();
        let err = IndexBuilder::new()
            .bit_parallel_roots(0)
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PllError::DiameterTooLarge { .. }));
    }

    #[test]
    fn label_budget_abort() {
        let g = gen::erdos_renyi_gnm(200, 600, 1).unwrap();
        let err = IndexBuilder::new()
            .ordering(OrderingStrategy::Random)
            .bit_parallel_roots(0)
            .abort_if_avg_label_exceeds(0.5)
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PllError::LabelBudgetExceeded { .. }));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let empty = CsrGraph::empty(0);
        let idx = IndexBuilder::new().build(&empty).unwrap();
        assert_eq!(idx.num_vertices(), 0);

        let single = CsrGraph::empty(1);
        let idx = IndexBuilder::new().build(&single).unwrap();
        assert_eq!(idx.distance(0, 0), Some(0));
    }

    #[test]
    fn observer_sees_monotone_progress() {
        struct Probe {
            roots_seen: usize,
            entries_last: usize,
            bp_called: bool,
        }
        impl BuildObserver for Probe {
            fn after_bp_phase(&mut self, view: &PartialIndex<'_>) {
                self.bp_called = true;
                assert_eq!(view.total_label_entries(), 0);
            }
            fn after_root(&mut self, k: usize, stats: &RootStats, view: &PartialIndex<'_>) {
                self.roots_seen += 1;
                assert_eq!(k, self.roots_seen);
                assert_eq!(stats.visited, stats.labeled + stats.pruned);
                let entries = view.total_label_entries();
                assert!(entries >= self.entries_last);
                self.entries_last = entries;
            }
        }
        let g = gen::barabasi_albert(80, 2, 2).unwrap();
        let mut probe = Probe {
            roots_seen: 0,
            entries_last: 0,
            bp_called: false,
        };
        let idx = IndexBuilder::new()
            .bit_parallel_roots(2)
            .build_with_observer(&g, &mut probe)
            .unwrap();
        assert!(probe.bp_called);
        assert_eq!(probe.roots_seen, idx.stats().pruned_roots);
    }

    #[test]
    fn observer_partial_distances_are_upper_bounds() {
        let g = gen::erdos_renyi_gnm(60, 140, 4).unwrap();
        struct Check<'g> {
            g: &'g CsrGraph,
        }
        impl BuildObserver for Check<'_> {
            fn after_root(&mut self, k: usize, _s: &RootStats, view: &PartialIndex<'_>) {
                if !k.is_multiple_of(10) {
                    return;
                }
                let mut engine = BfsEngine::new(self.g.num_vertices());
                for (s, t) in [(0u32, 5u32), (3, 59), (10, 20)] {
                    if let Some(ub) = view.distance(s, t) {
                        let exact = engine.distance(self.g, s, t).unwrap();
                        assert!(ub >= exact, "upper bound {ub} < exact {exact}");
                    }
                }
            }
        }
        IndexBuilder::new()
            .bit_parallel_roots(0)
            .build_with_observer(&g, &mut Check { g: &g })
            .unwrap();
    }

    #[test]
    fn stats_are_populated() {
        let g = gen::barabasi_albert(150, 3, 8).unwrap();
        let idx = IndexBuilder::new()
            .bit_parallel_roots(4)
            .record_root_stats(true)
            .build(&g)
            .unwrap();
        let s = idx.stats();
        assert_eq!(s.bp_roots_used, 4);
        assert!(s.pruned_roots > 0);
        assert_eq!(
            s.per_root.as_ref().unwrap().len(),
            s.pruned_roots,
            "one record per pruned root"
        );
        assert_eq!(s.total_visited, s.total_labeled + s.total_pruned);
        assert!(s.total_seconds() >= 0.0);
    }
}
