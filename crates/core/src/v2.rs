//! The v2 on-disk index format: zero-copy, section-aligned, queryable in
//! place.
//!
//! The v1 format (`crate::serialize`) is a stream the loader parses into
//! owned `Vec`s — an O(index) copy before the first query. v2 instead
//! lays every array out as its own little-endian section starting on a
//! 64-byte boundary, so the section layout *is* the in-memory layout of
//! the view backends in [`crate::storage`]: opening an index is one read
//! (or an `mmap` with the `mmap` feature on Linux) plus pointer casts —
//! no per-label work, no per-label allocation.
//!
//! ```text
//! header   64 bytes
//!   0   magic          8 bytes   PLLIDX02 | PLLDIDX2 | PLLWIDX2 | PLLWDID2
//!   8   version        u32       2
//!   12  flags          u32       bit 0: parents stored
//!   16  n              u64       vertices
//!   24  t              u64       bit-parallel roots (undirected only)
//!   32  file_len       u64       total file bytes (truncation check)
//!   40  section_count  u64
//!   48  reserved       u64       0
//!   56  checksum       u64       FNV-1a over bytes [0,56) ++ [64,file_len)
//! stats    128 bytes at offset 64 (persisted ConstructionStats)
//! table    section_count × 16 bytes at offset 192
//!   id u32, elem_size u32, byte_offset u64 — elem_count is implied by the
//!   header fields per id, and re-checked on open
//! sections each at its 64-byte-aligned byte_offset, zero-padded between
//! ```
//!
//! Unlike v1, the bit-parallel entries are stored structure-of-arrays
//! (`dist` / `set_minus1` / `set_zero` sections) because `BpEntry` has
//! padding bytes and therefore no defined byte layout to cast from.
//!
//! [`AnyIndex`] is the one-stop opener: it sniffs the magic and yields
//! either an owned index (v1 files, parsed as before) or a zero-copy view
//! (v2 files) for any of the four variants.

use crate::bp::{BitParallelLabels, BpEntry};
use crate::directed::{DirectedPllIndex, DirectedPllIndexView};
use crate::error::{PllError, Result};
use crate::index::{PllIndex, PllIndexView};
use crate::kernel::DIST8_ESCAPE;
use crate::label::LabelSet;
use crate::serialize::{detect_format_versioned, FormatVersion, IndexFormat};
use crate::stats::ConstructionStats;
use crate::storage::{AlignedBytes, Pod, SectionSlice, ViewBp, ViewLabels, SECTION_ALIGN};
use crate::types::{Dist, Rank, WDist, INF8, RANK_SENTINEL};
use crate::weighted::{WeightedPllIndex, WeightedPllIndexView};
use crate::weighted_directed::{WeightedDirectedPllIndex, WeightedDirectedPllIndexView};
use crate::weighted_dist8::{WeightedDist8Index, WeightedDist8IndexView};
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

#[cfg(target_endian = "big")]
compile_error!(
    "the v2 zero-copy reader casts little-endian sections in place and \
     requires a little-endian target"
);

/// v2 magic for the undirected unweighted index.
pub const V2_UNDIRECTED_MAGIC: &[u8; 8] = b"PLLIDX02";
/// v2 magic for the directed index.
pub const V2_DIRECTED_MAGIC: &[u8; 8] = b"PLLDIDX2";
/// v2 magic for the weighted index.
pub const V2_WEIGHTED_MAGIC: &[u8; 8] = b"PLLWIDX2";
/// v2 magic for the weighted directed index.
pub const V2_WEIGHTED_DIRECTED_MAGIC: &[u8; 8] = b"PLLWDID2";

const VERSION: u32 = 2;
const FLAG_PARENTS: u32 = 1;
/// The weighted index's distance arena is narrowed to `u8` + escape
/// sidecar (`SEC_DISTS8` + `SEC_ESC_POS`/`SEC_ESC_VAL` replace
/// `SEC_DISTS32`); see `weighted_dist8`.
const FLAG_DIST8: u32 = 2;
const HEADER_LEN: usize = 64;
const STATS_LEN: usize = 128;
const TABLE_OFFSET: usize = HEADER_LEN + STATS_LEN;
const TABLE_ENTRY_LEN: usize = 16;
/// Highest section id + 1 (table slots the parser tracks).
const MAX_SECTION_ID: usize = 18;

// Section ids. The OUT side of a directed index reuses the plain label
// ids; the IN side has its own.
const SEC_ORDER: u32 = 1;
const SEC_INV: u32 = 2;
const SEC_OFFSETS: u32 = 3;
const SEC_RANKS: u32 = 4;
const SEC_DISTS8: u32 = 5;
const SEC_DISTS32: u32 = 6;
const SEC_PARENTS: u32 = 7;
const SEC_BP_ROOTS: u32 = 8;
const SEC_BP_DIST: u32 = 9;
const SEC_BP_M1: u32 = 10;
const SEC_BP_Z: u32 = 11;
const SEC_OFFSETS_IN: u32 = 12;
const SEC_RANKS_IN: u32 = 13;
const SEC_DISTS8_IN: u32 = 14;
const SEC_DISTS32_IN: u32 = 15;
const SEC_ESC_POS: u32 = 16;
const SEC_ESC_VAL: u32 = 17;

fn fnv1a_parts(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn format_err(message: impl Into<String>) -> PllError {
    PllError::Format {
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// One section's payload, typed so the writer knows the element size.
enum SecData<'a> {
    U8(&'a [u8]),
    U32(&'a [u32]),
    U64(&'a [u64]),
}

impl SecData<'_> {
    fn elem_size(&self) -> usize {
        match self {
            SecData::U8(_) => 1,
            SecData::U32(_) => 4,
            SecData::U64(_) => 8,
        }
    }
    fn byte_len(&self) -> usize {
        match self {
            SecData::U8(d) => d.len(),
            SecData::U32(d) => d.len() * 4,
            SecData::U64(d) => d.len() * 8,
        }
    }
    fn append_to(&self, out: &mut Vec<u8>) {
        match self {
            SecData::U8(d) => out.extend_from_slice(d),
            SecData::U32(d) => {
                for &v in *d {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            SecData::U64(d) => {
                for &v in *d {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
}

fn align_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

fn stats_block(stats: &ConstructionStats) -> [u8; STATS_LEN] {
    let mut out = [0u8; STATS_LEN];
    let fields: [u64; 13] = [
        stats.order_seconds.to_bits(),
        stats.relabel_seconds.to_bits(),
        stats.bp_seconds.to_bits(),
        stats.pruned_seconds.to_bits(),
        stats.flatten_seconds.to_bits(),
        stats.bp_roots_used as u64,
        stats.pruned_roots as u64,
        stats.total_visited,
        stats.total_labeled,
        stats.total_pruned,
        stats.threads as u64,
        stats.parallel_batches as u64,
        stats.repruned,
    ];
    for (i, f) in fields.iter().enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&f.to_le_bytes());
    }
    out
}

fn parse_stats_block(block: &[u8]) -> ConstructionStats {
    let u = |i: usize| u64::from_le_bytes(block[i * 8..(i + 1) * 8].try_into().unwrap());
    ConstructionStats {
        order_seconds: f64::from_bits(u(0)),
        relabel_seconds: f64::from_bits(u(1)),
        bp_seconds: f64::from_bits(u(2)),
        pruned_seconds: f64::from_bits(u(3)),
        flatten_seconds: f64::from_bits(u(4)),
        bp_roots_used: u(5) as usize,
        pruned_roots: u(6) as usize,
        total_visited: u(7),
        total_labeled: u(8),
        total_pruned: u(9),
        threads: u(10) as usize,
        parallel_batches: u(11) as usize,
        repruned: u(12),
        per_root: None,
    }
}

/// Writes one v2 container: header + stats + table + aligned sections.
fn write_container<W: Write>(
    mut writer: W,
    magic: &[u8; 8],
    flags: u32,
    n: u64,
    t: u64,
    stats: &ConstructionStats,
    sections: &[(u32, SecData<'_>)],
) -> Result<()> {
    // Lay out the sections: each starts on the next 64-byte boundary.
    let table_end = TABLE_OFFSET + sections.len() * TABLE_ENTRY_LEN;
    let mut offsets = Vec::with_capacity(sections.len());
    let mut cursor = table_end;
    for (_, data) in sections {
        let off = align_up(cursor, SECTION_ALIGN);
        offsets.push(off);
        cursor = off + data.byte_len();
    }
    let file_len = cursor;

    // Body = everything after the header: stats block, table, sections.
    let mut body = Vec::with_capacity(file_len - HEADER_LEN);
    body.extend_from_slice(&stats_block(stats));
    for ((id, data), off) in sections.iter().zip(&offsets) {
        body.extend_from_slice(&id.to_le_bytes());
        body.extend_from_slice(&(data.elem_size() as u32).to_le_bytes());
        body.extend_from_slice(&(*off as u64).to_le_bytes());
    }
    for ((_, data), off) in sections.iter().zip(&offsets) {
        body.resize(off - HEADER_LEN, 0);
        data.append_to(&mut body);
    }
    debug_assert_eq!(body.len(), file_len - HEADER_LEN);

    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(magic);
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&flags.to_le_bytes());
    header[16..24].copy_from_slice(&n.to_le_bytes());
    header[24..32].copy_from_slice(&t.to_le_bytes());
    header[32..40].copy_from_slice(&(file_len as u64).to_le_bytes());
    header[40..48].copy_from_slice(&(sections.len() as u64).to_le_bytes());
    // bytes 48..56 reserved (zero)
    let checksum = fnv1a_parts(&[&header[..56], &body]);
    header[56..64].copy_from_slice(&checksum.to_le_bytes());

    writer.write_all(&header)?;
    writer.write_all(&body)?;
    writer.flush()?;
    Ok(())
}

/// Splits an array-of-structs BP arena into the v2 structure-of-arrays
/// sections.
fn bp_soa(entries: &[BpEntry]) -> (Vec<u8>, Vec<u64>, Vec<u64>) {
    let mut dist = Vec::with_capacity(entries.len());
    let mut m1 = Vec::with_capacity(entries.len());
    let mut z = Vec::with_capacity(entries.len());
    for e in entries {
        dist.push(e.dist);
        m1.push(e.set_minus1);
        z.push(e.set_zero);
    }
    (dist, m1, z)
}

/// Writes an undirected index in the v2 zero-copy format (`PLLIDX02`),
/// including its construction statistics.
pub fn save_v2_index<W: Write>(index: &PllIndex, writer: W) -> Result<()> {
    let (order, inv, labels, bp, stats) = index.parts();
    let (offsets, ranks, dists, parents) = labels.as_raw();
    let (bp_roots, bp_entries) = bp.as_raw();
    let (bp_dist, bp_m1, bp_z) = bp_soa(bp_entries);
    let mut sections = vec![
        (SEC_ORDER, SecData::U32(order)),
        (SEC_INV, SecData::U32(inv)),
        (SEC_OFFSETS, SecData::U32(offsets)),
        (SEC_RANKS, SecData::U32(ranks)),
        (SEC_DISTS8, SecData::U8(dists)),
        (SEC_BP_ROOTS, SecData::U32(bp_roots)),
        (SEC_BP_DIST, SecData::U8(&bp_dist)),
        (SEC_BP_M1, SecData::U64(&bp_m1)),
        (SEC_BP_Z, SecData::U64(&bp_z)),
    ];
    let mut flags = 0u32;
    if let Some(parents) = parents {
        flags |= FLAG_PARENTS;
        sections.push((SEC_PARENTS, SecData::U32(parents)));
    }
    write_container(
        writer,
        V2_UNDIRECTED_MAGIC,
        flags,
        order.len() as u64,
        bp.num_roots() as u64,
        stats,
        &sections,
    )
}

/// Writes a directed index in the v2 zero-copy format (`PLLDIDX2`).
pub fn save_v2_directed_index<W: Write>(index: &DirectedPllIndex, writer: W) -> Result<()> {
    let (order, inv, labels_in, labels_out) = index.as_raw();
    let (in_offsets, in_ranks, in_dists, _) = labels_in.as_raw();
    let (out_offsets, out_ranks, out_dists, _) = labels_out.as_raw();
    let sections = [
        (SEC_ORDER, SecData::U32(order)),
        (SEC_INV, SecData::U32(inv)),
        (SEC_OFFSETS_IN, SecData::U32(in_offsets)),
        (SEC_RANKS_IN, SecData::U32(in_ranks)),
        (SEC_DISTS8_IN, SecData::U8(in_dists)),
        (SEC_OFFSETS, SecData::U32(out_offsets)),
        (SEC_RANKS, SecData::U32(out_ranks)),
        (SEC_DISTS8, SecData::U8(out_dists)),
    ];
    write_container(
        writer,
        V2_DIRECTED_MAGIC,
        0,
        order.len() as u64,
        0,
        index.stats(),
        &sections,
    )
}

/// Writes a weighted index in the v2 zero-copy format (`PLLWIDX2`).
///
/// The distance arena is narrowed to the Dist8 representation (`u8`
/// arena + escape sidecar, `FLAG_DIST8`) whenever
/// [`crate::weighted_dist8::encode_dist8`] judges it profitable; arenas
/// dominated by ≥ 255 distances keep the plain `u32` section. Either
/// way the file reopens to bit-identical answers.
pub fn save_v2_weighted_index<W: Write>(index: &WeightedPllIndex, writer: W) -> Result<()> {
    save_v2_weighted_index_with(index, writer, true)
}

/// [`save_v2_weighted_index`] with the Dist8 narrowing switchable:
/// `narrow = false` always writes the plain `u32` distance section,
/// which trades file size for skipping the escape-sidecar lookup at
/// query time (and is what the query microbench uses to measure both
/// arena widths on the same index).
pub fn save_v2_weighted_index_with<W: Write>(
    index: &WeightedPllIndex,
    writer: W,
    narrow: bool,
) -> Result<()> {
    let (order, inv, offsets, ranks, dists) = index.as_raw();
    if let Some(enc) = narrow
        .then(|| crate::weighted_dist8::encode_dist8(offsets, dists))
        .flatten()
    {
        let sections = [
            (SEC_ORDER, SecData::U32(order)),
            (SEC_INV, SecData::U32(inv)),
            (SEC_OFFSETS, SecData::U32(offsets)),
            (SEC_RANKS, SecData::U32(ranks)),
            (SEC_DISTS8, SecData::U8(&enc.dists8)),
            (SEC_ESC_POS, SecData::U32(&enc.esc_pos)),
            (SEC_ESC_VAL, SecData::U32(&enc.esc_val)),
        ];
        // The `t` header field (bit-parallel root count elsewhere) holds
        // the sidecar length — section table entries carry no counts.
        return write_container(
            writer,
            V2_WEIGHTED_MAGIC,
            FLAG_DIST8,
            order.len() as u64,
            enc.esc_pos.len() as u64,
            index.stats(),
            &sections,
        );
    }
    let sections = [
        (SEC_ORDER, SecData::U32(order)),
        (SEC_INV, SecData::U32(inv)),
        (SEC_OFFSETS, SecData::U32(offsets)),
        (SEC_RANKS, SecData::U32(ranks)),
        (SEC_DISTS32, SecData::U32(dists)),
    ];
    write_container(
        writer,
        V2_WEIGHTED_MAGIC,
        0,
        order.len() as u64,
        0,
        index.stats(),
        &sections,
    )
}

/// Writes a weighted directed index in the v2 zero-copy format
/// (`PLLWDID2`).
pub fn save_v2_weighted_directed_index<W: Write>(
    index: &WeightedDirectedPllIndex,
    writer: W,
) -> Result<()> {
    let (order, inv, side_in, side_out) = index.as_raw();
    let (in_offsets, in_ranks, in_dists) = side_in;
    let (out_offsets, out_ranks, out_dists) = side_out;
    let sections = [
        (SEC_ORDER, SecData::U32(order)),
        (SEC_INV, SecData::U32(inv)),
        (SEC_OFFSETS_IN, SecData::U32(in_offsets)),
        (SEC_RANKS_IN, SecData::U32(in_ranks)),
        (SEC_DISTS32_IN, SecData::U32(in_dists)),
        (SEC_OFFSETS, SecData::U32(out_offsets)),
        (SEC_RANKS, SecData::U32(out_ranks)),
        (SEC_DISTS32, SecData::U32(out_dists)),
    ];
    write_container(
        writer,
        V2_WEIGHTED_DIRECTED_MAGIC,
        0,
        order.len() as u64,
        0,
        index.stats(),
        &sections,
    )
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
struct RawSection {
    elem_size: u32,
    offset: u64,
}

/// Parsed v2 container: header fields plus the section table, all
/// validated against the buffer bounds. Every typed section handed out is
/// a zero-copy [`SectionSlice`].
struct Container {
    buf: Arc<AlignedBytes>,
    flags: u32,
    n: usize,
    t: usize,
    stats: ConstructionStats,
    sections: [Option<RawSection>; MAX_SECTION_ID],
}

impl Container {
    fn parse(buf: Arc<AlignedBytes>) -> Result<(IndexFormat, Container)> {
        let bytes = buf.as_bytes();
        if bytes.len() < TABLE_OFFSET {
            return Err(format_err(format!(
                "v2 index truncated: {} bytes, need at least {TABLE_OFFSET}",
                bytes.len()
            )));
        }
        let magic: &[u8; 8] = bytes[0..8].try_into().expect("8 bytes");
        let (format, version) = detect_format_versioned(magic)?;
        if version != FormatVersion::V2 {
            return Err(format_err("not a v2 index (v1 magic)"));
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        if u32_at(8) != VERSION {
            return Err(format_err(format!(
                "unsupported v2 header version {}",
                u32_at(8)
            )));
        }
        let flags = u32_at(12);
        let n = usize::try_from(u64_at(16)).map_err(|_| format_err("vertex count overflows"))?;
        let t = usize::try_from(u64_at(24)).map_err(|_| format_err("root count overflows"))?;
        let file_len = u64_at(32);
        if file_len != bytes.len() as u64 {
            return Err(format_err(format!(
                "file length mismatch: header says {file_len}, file has {} bytes (truncated?)",
                bytes.len()
            )));
        }
        let section_count =
            usize::try_from(u64_at(40)).map_err(|_| format_err("section count overflows"))?;
        let checksum = u64_at(56);
        if fnv1a_parts(&[&bytes[..56], &bytes[HEADER_LEN..]]) != checksum {
            return Err(format_err("checksum mismatch"));
        }
        let table_end = section_count
            .checked_mul(TABLE_ENTRY_LEN)
            .and_then(|len| len.checked_add(TABLE_OFFSET))
            .ok_or_else(|| format_err("section table overflows"))?;
        if table_end > bytes.len() {
            return Err(format_err("section table exceeds file size"));
        }
        let mut sections = [None; MAX_SECTION_ID];
        for i in 0..section_count {
            let base = TABLE_OFFSET + i * TABLE_ENTRY_LEN;
            let id = u32_at(base) as usize;
            let raw = RawSection {
                elem_size: u32_at(base + 4),
                offset: u64_at(base + 8),
            };
            if id >= MAX_SECTION_ID {
                continue; // unknown section: ignore for forward compat
            }
            if sections[id].is_some() {
                return Err(format_err(format!("duplicate section id {id}")));
            }
            sections[id] = Some(raw);
        }
        let stats = parse_stats_block(&bytes[HEADER_LEN..TABLE_OFFSET]);
        Ok((
            format,
            Container {
                buf,
                flags,
                n,
                t,
                stats,
                sections,
            },
        ))
    }

    /// Resolves section `id` as `count` elements of `T`, enforcing the
    /// element size, the 64-byte section alignment and the buffer bounds.
    fn section<T: Pod>(&self, id: u32, count: usize) -> Result<SectionSlice<T>> {
        let raw = self.sections[id as usize]
            .ok_or_else(|| format_err(format!("missing section id {id}")))?;
        if raw.elem_size as usize != T::SIZE {
            return Err(format_err(format!(
                "section id {id} has element size {}, expected {}",
                raw.elem_size,
                T::SIZE
            )));
        }
        let offset =
            usize::try_from(raw.offset).map_err(|_| format_err("section offset overflows"))?;
        if offset % SECTION_ALIGN != 0 {
            return Err(format_err(format!(
                "section id {id} at byte {offset} is not {SECTION_ALIGN}-byte aligned"
            )));
        }
        SectionSlice::new(Arc::clone(&self.buf), offset, count)
    }

    /// The validated `(order, inv)` permutation sections.
    fn permutations(&self) -> Result<(SectionSlice<u32>, SectionSlice<u32>)> {
        let order = self.section::<u32>(SEC_ORDER, self.n)?;
        let inv = self.section::<u32>(SEC_INV, self.n)?;
        {
            let (o, i) = (order.as_slice(), inv.as_slice());
            let n = self.n as u32;
            // inv[order[r]] == r for all r proves `order` injective (hence
            // a permutation) and `inv` its inverse — no allocation needed.
            for (rank, &v) in o.iter().enumerate() {
                if v >= n || i[v as usize] != rank as u32 {
                    return Err(format_err(
                        "order/inv sections are not mutually inverse permutations",
                    ));
                }
            }
        }
        Ok((order, inv))
    }

    /// Resolves one label side (`offsets` + `ranks` + `dists` + optional
    /// `parents`) and validates its sentinel/sort structure.
    fn label_side<D: Pod>(
        &self,
        ids: (u32, u32, u32),
        parents_id: Option<u32>,
    ) -> Result<ViewLabels<D>> {
        let (offsets_id, ranks_id, dists_id) = ids;
        let offsets = self.section::<u32>(offsets_id, self.n + 1)?;
        let off = offsets.as_slice();
        if off.first() != Some(&0) || off.windows(2).any(|w| w[0] > w[1]) {
            return Err(format_err("non-monotone label offsets"));
        }
        let total = usize::try_from(*off.last().expect("n + 1 >= 1 entries"))
            .map_err(|_| format_err("label arena length overflows"))?;
        let ranks = self.section::<Rank>(ranks_id, total)?;
        let dists = self.section::<D>(dists_id, total)?;
        {
            let r = ranks.as_slice();
            for v in 0..self.n {
                let s = off[v] as usize;
                let e = off[v + 1] as usize;
                if s == e || r[e - 1] != RANK_SENTINEL {
                    return Err(format_err(format!(
                        "label of rank {v} not sentinel-terminated"
                    )));
                }
                if r[s..e].windows(2).any(|w| w[0] >= w[1]) {
                    return Err(format_err(format!("label of rank {v} not strictly sorted")));
                }
                // Hub ranks index the permutation arrays (e.g. in
                // `distance_with_hub`), so out-of-range ranks must be a
                // typed error here, not a panic later. The body is
                // strictly ascending, so its last entry is its maximum.
                if e - s >= 2 && r[e - 2] as usize >= self.n {
                    return Err(format_err(format!(
                        "label of rank {v} holds hub rank {} >= n = {}",
                        r[e - 2],
                        self.n
                    )));
                }
            }
        }
        let parents = match parents_id {
            Some(id) if self.flags & FLAG_PARENTS != 0 => Some(self.section::<Rank>(id, total)?),
            _ => None,
        };
        if let Some(parents) = &parents {
            for &x in parents.as_slice() {
                if x != RANK_SENTINEL && x as usize >= self.n {
                    return Err(format_err(format!("parent rank {x} >= n = {}", self.n)));
                }
            }
        }
        Ok(ViewLabels {
            offsets,
            ranks,
            dists,
            parents,
        })
    }

    /// Resolves and validates the Dist8 escape sidecar against its `u8`
    /// label arena. The sidecar length comes from the header's `t`
    /// field; structurally every escape position must be strictly
    /// ascending, in bounds, hold the escape byte, not be a sentinel
    /// slot, and carry a value that genuinely needs escaping — so a
    /// crafted file cannot make the query kernel mis-resolve.
    fn dist8_sidecar(
        &self,
        labels: &ViewLabels<u8>,
    ) -> Result<(SectionSlice<u32>, SectionSlice<u32>)> {
        let esc_pos = self.section::<u32>(SEC_ESC_POS, self.t)?;
        let esc_val = self.section::<u32>(SEC_ESC_VAL, self.t)?;
        let off = labels.offsets.as_slice();
        let d = labels.dists.as_slice();
        for v in 0..self.n {
            if d[off[v + 1] as usize - 1] != DIST8_ESCAPE {
                return Err(format_err(format!(
                    "Dist8 label of rank {v} lacks the sentinel escape byte"
                )));
            }
        }
        let (pos, val) = (esc_pos.as_slice(), esc_val.as_slice());
        for (k, &p) in pos.iter().enumerate() {
            if k > 0 && pos[k - 1] >= p {
                return Err(format_err("Dist8 escape positions not strictly ascending"));
            }
            if p as usize >= d.len() {
                return Err(format_err(format!(
                    "Dist8 escape position {p} beyond the {}-entry arena",
                    d.len()
                )));
            }
            if d[p as usize] != DIST8_ESCAPE {
                return Err(format_err(format!(
                    "Dist8 escape position {p} does not hold the escape byte"
                )));
            }
            // Offsets are strictly increasing, so `p` is a sentinel slot
            // iff `p + 1` is a label end offset.
            if off[1..].binary_search(&(p + 1)).is_ok() {
                return Err(format_err(format!(
                    "Dist8 escape position {p} is a sentinel slot"
                )));
            }
            if val[k] < DIST8_ESCAPE as u32 {
                return Err(format_err(format!(
                    "Dist8 escape value {} fits the arena byte",
                    val[k]
                )));
            }
        }
        Ok((esc_pos, esc_val))
    }

    /// Resolves the bit-parallel structure-of-arrays sections.
    fn bp(&self) -> Result<ViewBp> {
        let entries = self
            .n
            .checked_mul(self.t)
            .ok_or_else(|| format_err("bit-parallel entry count overflows"))?;
        let view = ViewBp {
            roots: self.section::<Rank>(SEC_BP_ROOTS, self.t)?,
            dist: self.section::<u8>(SEC_BP_DIST, entries)?,
            set_minus1: self.section::<u64>(SEC_BP_M1, entries)?,
            set_zero: self.section::<u64>(SEC_BP_Z, entries)?,
        };
        for &root in view.roots.as_slice() {
            if root != u32::MAX && root as usize >= self.n {
                return Err(format_err("bit-parallel root out of range"));
            }
        }
        Ok(view)
    }
}

/// Opens a v2 index zero-copy from an in-memory buffer: pointer casts and
/// validation scans only — no per-label parsing or allocation.
pub fn open_v2_bytes(buf: Arc<AlignedBytes>) -> Result<AnyIndex> {
    let (format, c) = Container::parse(buf)?;
    match format {
        IndexFormat::Undirected => {
            let (order, inv) = c.permutations()?;
            let labels: ViewLabels<Dist> =
                c.label_side((SEC_OFFSETS, SEC_RANKS, SEC_DISTS8), Some(SEC_PARENTS))?;
            // The unweighted sentinel distance is INF8 (v1 parity check).
            {
                let off = labels.offsets.as_slice();
                let d = labels.dists.as_slice();
                for v in 0..c.n {
                    if d[off[v + 1] as usize - 1] != INF8 {
                        return Err(format_err(format!(
                            "label of rank {v} not sentinel-terminated"
                        )));
                    }
                }
            }
            let bp = c.bp()?;
            Ok(AnyIndex::UndirectedView(PllIndex::assemble(
                order,
                inv,
                LabelSet::from_store(labels),
                BitParallelLabels::from_store(c.n, c.t, bp),
                c.stats.clone(),
            )))
        }
        IndexFormat::Directed => {
            let (order, inv) = c.permutations()?;
            let side_in: ViewLabels<Dist> =
                c.label_side((SEC_OFFSETS_IN, SEC_RANKS_IN, SEC_DISTS8_IN), None)?;
            let side_out: ViewLabels<Dist> =
                c.label_side((SEC_OFFSETS, SEC_RANKS, SEC_DISTS8), None)?;
            Ok(AnyIndex::DirectedView(DirectedPllIndex::assemble(
                order,
                inv,
                LabelSet::from_store(side_in),
                LabelSet::from_store(side_out),
                c.stats.clone(),
            )))
        }
        IndexFormat::Weighted => {
            let (order, inv) = c.permutations()?;
            if c.flags & FLAG_DIST8 != 0 {
                let labels: ViewLabels<u8> =
                    c.label_side((SEC_OFFSETS, SEC_RANKS, SEC_DISTS8), None)?;
                let (esc_pos, esc_val) = c.dist8_sidecar(&labels)?;
                return Ok(AnyIndex::WeightedDist8View(WeightedDist8Index::assemble(
                    order,
                    inv,
                    labels,
                    esc_pos,
                    esc_val,
                    c.stats.clone(),
                )));
            }
            let labels: ViewLabels<WDist> =
                c.label_side((SEC_OFFSETS, SEC_RANKS, SEC_DISTS32), None)?;
            Ok(AnyIndex::WeightedView(WeightedPllIndex::assemble(
                order,
                inv,
                labels,
                c.stats.clone(),
            )))
        }
        IndexFormat::WeightedDirected => {
            let (order, inv) = c.permutations()?;
            let side_in: ViewLabels<WDist> =
                c.label_side((SEC_OFFSETS_IN, SEC_RANKS_IN, SEC_DISTS32_IN), None)?;
            let side_out: ViewLabels<WDist> =
                c.label_side((SEC_OFFSETS, SEC_RANKS, SEC_DISTS32), None)?;
            Ok(AnyIndex::WeightedDirectedView(
                WeightedDirectedPllIndex::assemble(order, inv, side_in, side_out, c.stats.clone()),
            ))
        }
    }
}

/// Opens a v2 index file zero-copy: one buffer load (a single `read`, or
/// an `mmap` with the `mmap` feature on Linux), then [`open_v2_bytes`].
pub fn open_v2_path(path: &Path) -> Result<AnyIndex> {
    open_v2_bytes(Arc::new(AlignedBytes::from_file(path)?))
}

// ---------------------------------------------------------------------------
// AnyIndex
// ---------------------------------------------------------------------------

/// Any loaded index: one of the four variants, in either the owned (v1
/// files, parsed) or the zero-copy view (v2 files) representation. The
/// `pll` CLI and `pll-server` work exclusively through this type, so every
/// subcommand and the query service accept every format.
#[derive(Debug)]
pub enum AnyIndex {
    /// Owned undirected index (v1 file).
    Undirected(PllIndex),
    /// Zero-copy undirected index (v2 file).
    UndirectedView(PllIndexView),
    /// Owned directed index (v1 file).
    Directed(DirectedPllIndex),
    /// Zero-copy directed index (v2 file).
    DirectedView(DirectedPllIndexView),
    /// Owned weighted index (v1 file).
    Weighted(WeightedPllIndex),
    /// Zero-copy weighted index (v2 file).
    WeightedView(WeightedPllIndexView),
    /// Zero-copy weighted index with the Dist8 narrowed distance arena
    /// (v2 file written with `FLAG_DIST8`).
    WeightedDist8View(WeightedDist8IndexView),
    /// Owned weighted directed index (v1 file).
    WeightedDirected(WeightedDirectedPllIndex),
    /// Zero-copy weighted directed index (v2 file).
    WeightedDirectedView(WeightedDirectedPllIndexView),
}

/// Applies an expression to the concrete index inside an [`AnyIndex`].
macro_rules! with_index {
    ($self:expr, $idx:ident => $body:expr) => {
        match $self {
            AnyIndex::Undirected($idx) => $body,
            AnyIndex::UndirectedView($idx) => $body,
            AnyIndex::Directed($idx) => $body,
            AnyIndex::DirectedView($idx) => $body,
            AnyIndex::Weighted($idx) => $body,
            AnyIndex::WeightedView($idx) => $body,
            AnyIndex::WeightedDist8View($idx) => $body,
            AnyIndex::WeightedDirected($idx) => $body,
            AnyIndex::WeightedDirectedView($idx) => $body,
        }
    };
}

impl AnyIndex {
    /// Opens an index file of any format generation and variant, sniffing
    /// the magic bytes: v1 files parse into owned indices exactly as
    /// before, v2 files open zero-copy.
    pub fn open(path: &Path) -> Result<AnyIndex> {
        use std::io::Read;
        let mut file = std::fs::File::open(path)?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)
            .map_err(|_| format_err("file too short to hold an index magic (8 bytes)"))?;
        let (format, version) = detect_format_versioned(&magic)?;
        match version {
            FormatVersion::V2 => {
                drop(file);
                open_v2_path(path)
            }
            FormatVersion::V1 => {
                let reader = std::io::BufReader::new(std::fs::File::open(path)?);
                Ok(match format {
                    IndexFormat::Undirected => {
                        AnyIndex::Undirected(crate::serialize::load_index(reader)?)
                    }
                    IndexFormat::Directed => {
                        AnyIndex::Directed(crate::serialize::load_directed_index(reader)?)
                    }
                    IndexFormat::Weighted => {
                        AnyIndex::Weighted(crate::serialize::load_weighted_index(reader)?)
                    }
                    IndexFormat::WeightedDirected => AnyIndex::WeightedDirected(
                        crate::serialize::load_weighted_directed_index(reader)?,
                    ),
                })
            }
        }
    }

    /// Which index family this is.
    pub fn format(&self) -> IndexFormat {
        match self {
            AnyIndex::Undirected(_) | AnyIndex::UndirectedView(_) => IndexFormat::Undirected,
            AnyIndex::Directed(_) | AnyIndex::DirectedView(_) => IndexFormat::Directed,
            AnyIndex::Weighted(_) | AnyIndex::WeightedView(_) | AnyIndex::WeightedDist8View(_) => {
                IndexFormat::Weighted
            }
            AnyIndex::WeightedDirected(_) | AnyIndex::WeightedDirectedView(_) => {
                IndexFormat::WeightedDirected
            }
        }
    }

    /// Format generation the index was loaded from (1 or 2).
    pub fn format_version(&self) -> u8 {
        if self.is_zero_copy() {
            2
        } else {
            1
        }
    }

    /// Whether this index queries the file buffer in place (v2).
    pub fn is_zero_copy(&self) -> bool {
        matches!(
            self,
            AnyIndex::UndirectedView(_)
                | AnyIndex::DirectedView(_)
                | AnyIndex::WeightedView(_)
                | AnyIndex::WeightedDist8View(_)
                | AnyIndex::WeightedDirectedView(_)
        )
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        with_index!(self, idx => idx.num_vertices())
    }

    /// Hints the CPU to pull both endpoints' label slices toward cache
    /// ahead of an [`AnyIndex::distance`] call for the same pair —
    /// useful to overlap the next pair's memory latency with the
    /// current pair's merge in a batch. Advisory: out-of-range vertices
    /// are ignored, nothing is computed.
    pub fn prefetch_query(&self, s: u32, t: u32) {
        with_index!(self, idx => idx.prefetch_query(s, t))
    }

    /// Distance from `s` to `t` widened to `u64`; `None` when
    /// unreachable.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range (use
    /// [`AnyIndex::try_distance`] for the checked variant).
    pub fn distance(&self, s: u32, t: u32) -> Option<u64> {
        match self {
            AnyIndex::Undirected(idx) => idx.distance(s, t).map(u64::from),
            AnyIndex::UndirectedView(idx) => idx.distance(s, t).map(u64::from),
            AnyIndex::Directed(idx) => idx.distance(s, t).map(u64::from),
            AnyIndex::DirectedView(idx) => idx.distance(s, t).map(u64::from),
            AnyIndex::Weighted(idx) => idx.distance(s, t),
            AnyIndex::WeightedView(idx) => idx.distance(s, t),
            AnyIndex::WeightedDist8View(idx) => idx.distance(s, t),
            AnyIndex::WeightedDirected(idx) => idx.distance(s, t),
            AnyIndex::WeightedDirectedView(idx) => idx.distance(s, t),
        }
    }

    /// Checked variant of [`AnyIndex::distance`].
    pub fn try_distance(&self, s: u32, t: u32) -> Result<Option<u64>> {
        match self {
            AnyIndex::Undirected(idx) => Ok(idx.try_distance(s, t)?.map(u64::from)),
            AnyIndex::UndirectedView(idx) => Ok(idx.try_distance(s, t)?.map(u64::from)),
            AnyIndex::Directed(idx) => Ok(idx.try_distance(s, t)?.map(u64::from)),
            AnyIndex::DirectedView(idx) => Ok(idx.try_distance(s, t)?.map(u64::from)),
            AnyIndex::Weighted(idx) => idx.try_distance(s, t),
            AnyIndex::WeightedView(idx) => idx.try_distance(s, t),
            AnyIndex::WeightedDist8View(idx) => idx.try_distance(s, t),
            AnyIndex::WeightedDirected(idx) => idx.try_distance(s, t),
            AnyIndex::WeightedDirectedView(idx) => idx.try_distance(s, t),
        }
    }

    /// Whether `t` is reachable from `s`: a same-component check for
    /// the undirected families (early-exit label intersection /
    /// bit-parallel co-reachability, no distance math), reachability
    /// for the directed ones.
    pub fn try_connected(&self, s: u32, t: u32) -> Result<bool> {
        let n = self.num_vertices();
        for x in [s, t] {
            if x as usize >= n {
                return Err(PllError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: n,
                });
            }
        }
        match self {
            AnyIndex::Undirected(idx) => Ok(idx.connected(s, t)),
            AnyIndex::UndirectedView(idx) => Ok(idx.connected(s, t)),
            other => Ok(other.distance(s, t).is_some()),
        }
    }

    /// Whether this index can answer [`AnyIndex::shortest_path`]
    /// requests (undirected family with parent pointers stored).
    pub fn supports_paths(&self) -> bool {
        match self {
            AnyIndex::Undirected(idx) => idx.has_parents(),
            AnyIndex::UndirectedView(idx) => idx.has_parents(),
            _ => false,
        }
    }

    /// Reconstructs one shortest path from `s` to `t` (inclusive), or
    /// `None` when disconnected; works on both the owned and zero-copy
    /// undirected representations.
    ///
    /// # Errors
    ///
    /// [`PllError::Unsupported`] for the directed/weighted families
    /// (their builders do not store parent pointers),
    /// [`PllError::ParentsNotStored`] when the undirected index was
    /// built without them, [`PllError::VertexOutOfRange`] for bad
    /// endpoints.
    pub fn shortest_path(&self, s: u32, t: u32) -> Result<Option<Vec<u32>>> {
        match self {
            AnyIndex::Undirected(idx) => crate::paths::shortest_path(idx, s, t),
            AnyIndex::UndirectedView(idx) => crate::paths::shortest_path(idx, s, t),
            other => Err(PllError::Unsupported {
                message: format!(
                    "path reconstruction is implemented for the undirected index only \
                     (this is a {} index)",
                    other.format().name()
                ),
            }),
        }
    }

    /// Construction statistics (persisted by v2 files; default for v1).
    pub fn stats(&self) -> &ConstructionStats {
        with_index!(self, idx => idx.stats())
    }

    /// Average label entries per vertex.
    pub fn avg_label_size(&self) -> f64 {
        with_index!(self, idx => idx.avg_label_size())
    }

    /// Total index bytes (owned heap bytes or mapped section bytes).
    pub fn memory_bytes(&self) -> usize {
        with_index!(self, idx => idx.memory_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuilder;
    use crate::directed::DirectedIndexBuilder;
    use crate::weighted::WeightedIndexBuilder;
    use crate::weighted_directed::WeightedDirectedIndexBuilder;
    use pll_graph::gen;

    fn ba_graph(n: usize) -> pll_graph::CsrGraph {
        gen::barabasi_albert(n, 3, 7).unwrap()
    }

    fn open_bytes(bytes: &[u8]) -> Result<AnyIndex> {
        open_v2_bytes(Arc::new(AlignedBytes::from_bytes(bytes)))
    }

    #[test]
    fn undirected_v2_roundtrip_queries_match() {
        let g = ba_graph(150);
        let idx = IndexBuilder::new().bit_parallel_roots(3).build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_index(&idx, &mut buf).unwrap();
        let any = open_bytes(&buf).unwrap();
        assert!(any.is_zero_copy());
        assert_eq!(any.format(), IndexFormat::Undirected);
        assert_eq!(any.format_version(), 2);
        assert_eq!(any.num_vertices(), 150);
        for s in (0..150u32).step_by(7) {
            for t in (0..150u32).step_by(11) {
                assert_eq!(
                    any.distance(s, t),
                    idx.distance(s, t).map(u64::from),
                    "pair ({s}, {t})"
                );
            }
        }
        // Stats survive the round trip.
        assert_eq!(any.stats().threads, idx.stats().threads);
        assert!(any.stats().total_seconds() > 0.0);
        assert_eq!(any.stats().total_labeled, idx.stats().total_labeled);
    }

    #[test]
    fn undirected_v2_roundtrip_with_parents() {
        let g = gen::grid(6, 6).unwrap();
        let idx = IndexBuilder::new()
            .bit_parallel_roots(0)
            .store_parents(true)
            .build(&g)
            .unwrap();
        let mut buf = Vec::new();
        save_v2_index(&idx, &mut buf).unwrap();
        match open_bytes(&buf).unwrap() {
            AnyIndex::UndirectedView(view) => {
                assert!(view.has_parents());
                for v in 0..36u32 {
                    assert_eq!(
                        view.labels().parents(view.rank_of(v)),
                        idx.labels().parents(idx.rank_of(v))
                    );
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn directed_v2_roundtrip_queries_match() {
        let mut arcs: Vec<(u32, u32)> = (0..80u32)
            .flat_map(|v| [(v, (v + 1) % 80), (v, (v * 13 + 5) % 80)])
            .filter(|&(a, b)| a != b)
            .collect();
        arcs.sort_unstable();
        arcs.dedup();
        let g = pll_graph::CsrDigraph::from_edges(80, &arcs).unwrap();
        let idx = DirectedIndexBuilder::new().build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_directed_index(&idx, &mut buf).unwrap();
        let any = open_bytes(&buf).unwrap();
        assert_eq!(any.format(), IndexFormat::Directed);
        for s in 0..80u32 {
            for t in (0..80u32).step_by(9) {
                assert_eq!(any.distance(s, t), idx.distance(s, t).map(u64::from));
            }
        }
    }

    #[test]
    fn weighted_v2_roundtrip_queries_match() {
        use pll_graph::wgraph::WeightedGraph;
        let base = gen::erdos_renyi_gnm(70, 180, 3).unwrap();
        let mut rng = pll_graph::Xoshiro256pp::seed_from_u64(5);
        let edges: Vec<(u32, u32, u32)> = base
            .edges()
            .map(|(u, v)| (u, v, rng.next_below(9) as u32 + 1))
            .collect();
        let g = WeightedGraph::from_edges(70, &edges).unwrap();
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_weighted_index(&idx, &mut buf).unwrap();
        let any = open_bytes(&buf).unwrap();
        assert_eq!(any.format(), IndexFormat::Weighted);
        for s in 0..70u32 {
            for t in (0..70u32).step_by(7) {
                assert_eq!(any.distance(s, t), idx.distance(s, t));
            }
        }
    }

    #[test]
    fn weighted_v2_dist8_roundtrip_with_escapes() {
        use pll_graph::wgraph::WeightedGraph;
        // Weight-9 ring: eccentricities ~540, so the label arena holds
        // entries on both sides of the 255 escape threshold.
        let n = 120usize;
        let mut edges: Vec<(u32, u32, u32)> =
            (0..n as u32).map(|v| (v, (v + 1) % n as u32, 9)).collect();
        edges.push((0, (n / 2) as u32, 400));
        let g = WeightedGraph::from_edges(n, &edges).unwrap();
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_weighted_index(&idx, &mut buf).unwrap();
        let any = open_bytes(&buf).unwrap();
        let AnyIndex::WeightedDist8View(view) = &any else {
            panic!("small-weight arena must take the Dist8 path");
        };
        assert!(view.escape_count() > 0, "expected escaped entries");
        for s in (0..n as u32).step_by(7) {
            for t in (0..n as u32).step_by(11) {
                assert_eq!(any.distance(s, t), idx.distance(s, t), "pair ({s}, {t})");
            }
        }
    }

    #[test]
    fn weighted_v2_unprofitable_arena_falls_back_to_u32() {
        use pll_graph::wgraph::WeightedGraph;
        // Every edge weight ≥ 255 → every finite label distance escapes,
        // so the writer must keep the plain u32 sections.
        let edges: Vec<(u32, u32, u32)> = (0..19u32).map(|v| (v, v + 1, 1_000)).collect();
        let g = WeightedGraph::from_edges(20, &edges).unwrap();
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_weighted_index(&idx, &mut buf).unwrap();
        let any = open_bytes(&buf).unwrap();
        assert!(
            matches!(any, AnyIndex::WeightedView(_)),
            "all-escaping arena must fall back to the u32 sections"
        );
        for s in 0..20u32 {
            for t in 0..20u32 {
                assert_eq!(any.distance(s, t), idx.distance(s, t));
            }
        }
    }

    #[test]
    fn weighted_directed_v2_roundtrip_queries_match() {
        use pll_graph::wdigraph::WeightedDigraph;
        let mut rng = pll_graph::Xoshiro256pp::seed_from_u64(11);
        let mut arcs = std::collections::HashMap::new();
        while arcs.len() < 160 {
            let u = rng.next_below(45) as u32;
            let v = rng.next_below(45) as u32;
            if u != v {
                arcs.entry((u, v))
                    .or_insert_with(|| rng.next_below(9) as u32 + 1);
            }
        }
        let mut list: Vec<(u32, u32, u32)> =
            arcs.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        list.sort_unstable();
        let g = WeightedDigraph::from_edges(45, &list).unwrap();
        let idx = WeightedDirectedIndexBuilder::new().build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_weighted_directed_index(&idx, &mut buf).unwrap();
        let any = open_bytes(&buf).unwrap();
        assert_eq!(any.format(), IndexFormat::WeightedDirected);
        for s in 0..45u32 {
            for t in (0..45u32).step_by(4) {
                assert_eq!(any.distance(s, t), idx.distance(s, t));
            }
        }
    }

    #[test]
    fn connected_and_paths_over_anyindex() {
        // Two components with parents stored: PATH and CONNECTED must
        // work identically on the owned index and the zero-copy view.
        let g =
            pll_graph::CsrGraph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6)]).unwrap();
        let idx = IndexBuilder::new()
            .bit_parallel_roots(0)
            .store_parents(true)
            .build(&g)
            .unwrap();
        let mut buf = Vec::new();
        save_v2_index(&idx, &mut buf).unwrap();
        let view = open_bytes(&buf).unwrap();
        let owned = AnyIndex::Undirected(idx);
        for any in [&owned, &view] {
            assert!(any.supports_paths());
            assert!(any.try_connected(0, 3).unwrap());
            assert!(!any.try_connected(0, 6).unwrap());
            assert!(any.try_connected(2, 2).unwrap());
            assert!(matches!(
                any.try_connected(0, 99),
                Err(PllError::VertexOutOfRange { .. })
            ));
            assert_eq!(
                any.shortest_path(0, 3).unwrap(),
                Some(vec![0, 1, 2, 3]),
                "path 0..3"
            );
            assert_eq!(any.shortest_path(0, 6).unwrap(), None);
            assert_eq!(any.shortest_path(5, 5).unwrap(), Some(vec![5]));
            assert!(matches!(
                any.shortest_path(0, 99),
                Err(PllError::VertexOutOfRange { .. })
            ));
        }
        // Without parents: PATH errors, CONNECTED still answers.
        let bare =
            AnyIndex::Undirected(IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap());
        assert!(!bare.supports_paths());
        assert!(matches!(
            bare.shortest_path(0, 3),
            Err(PllError::ParentsNotStored)
        ));
        assert!(bare.try_connected(1, 3).unwrap());
        // Non-undirected families refuse PATH with a typed error.
        use pll_graph::wgraph::WeightedGraph;
        let wg = WeightedGraph::from_edges(3, &[(0, 1, 2), (1, 2, 3)]).unwrap();
        let weighted = AnyIndex::Weighted(
            crate::weighted::WeightedIndexBuilder::new()
                .build(&wg)
                .unwrap(),
        );
        assert!(!weighted.supports_paths());
        assert!(matches!(
            weighted.shortest_path(0, 2),
            Err(PllError::Unsupported { .. })
        ));
        assert!(weighted.try_connected(0, 2).unwrap());
    }

    #[test]
    fn empty_index_roundtrips() {
        let idx = IndexBuilder::new()
            .build(&pll_graph::CsrGraph::empty(0))
            .unwrap();
        let mut buf = Vec::new();
        save_v2_index(&idx, &mut buf).unwrap();
        let any = open_bytes(&buf).unwrap();
        assert_eq!(any.num_vertices(), 0);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let g = ba_graph(40);
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_index(&idx, &mut buf).unwrap();
        // Truncating at any byte boundary must yield Err, never a panic.
        for cut in 0..buf.len() {
            let err = open_bytes(&buf[..cut]);
            assert!(err.is_err(), "truncation at {cut}/{} accepted", buf.len());
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let g = gen::path(12).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(1).build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_index(&idx, &mut buf).unwrap();
        assert!(open_bytes(&buf).is_ok());
        for pos in 0..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0x5A;
            assert!(
                open_bytes(&corrupt).is_err(),
                "flip at byte {pos}/{} accepted",
                buf.len()
            );
        }
    }

    #[test]
    fn corrupt_section_table_is_rejected_structurally() {
        // Rewrite a section offset to point out of bounds *and* fix up the
        // checksum, so the structural bounds checks (not the checksum)
        // must catch it.
        let g = gen::path(10).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_index(&idx, &mut buf).unwrap();
        // First table entry's byte_offset field lives at TABLE_OFFSET + 8.
        let pos = TABLE_OFFSET + 8;
        buf[pos..pos + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let checksum = fnv1a_parts(&[&buf[..56], &buf[HEADER_LEN..]]);
        buf[56..64].copy_from_slice(&checksum.to_le_bytes());
        let err = open_bytes(&buf).unwrap_err();
        assert!(matches!(err, PllError::Format { .. }), "got {err}");
    }

    #[test]
    fn out_of_range_hub_rank_is_rejected_structurally() {
        // Craft a label body holding a hub rank >= n with the checksum
        // fixed up: the structural validation must reject it (otherwise
        // `distance_with_hub` would index the permutation arrays out of
        // bounds later).
        let g = gen::path(4).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_index(&idx, &mut buf).unwrap();
        assert!(open_bytes(&buf).is_ok());
        // Locate the ranks section (id SEC_RANKS) via the table and
        // overwrite its first body entry with a huge rank, keeping the
        // strictly-ascending/sentinel structure intact (n = 4, so any
        // body value in [4, SENTINEL) is out of range).
        let count = u64::from_le_bytes(buf[40..48].try_into().unwrap()) as usize;
        let mut ranks_off = None;
        for i in 0..count {
            let base = TABLE_OFFSET + i * TABLE_ENTRY_LEN;
            if u32::from_le_bytes(buf[base..base + 4].try_into().unwrap()) == SEC_RANKS {
                ranks_off =
                    Some(u64::from_le_bytes(buf[base + 8..base + 16].try_into().unwrap()) as usize);
            }
        }
        let ranks_off = ranks_off.expect("ranks section present");
        buf[ranks_off..ranks_off + 4].copy_from_slice(&(RANK_SENTINEL - 1).to_le_bytes());
        let checksum = fnv1a_parts(&[&buf[..56], &buf[HEADER_LEN..]]);
        buf[56..64].copy_from_slice(&checksum.to_le_bytes());
        let err = open_bytes(&buf).unwrap_err();
        match err {
            PllError::Format { message } => {
                assert!(message.contains("hub rank"), "got: {message}")
            }
            other => panic!("expected Format error, got {other}"),
        }
    }

    #[test]
    fn wrong_variant_magic_is_rejected() {
        let g = gen::path(6).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        let mut buf = Vec::new();
        save_v2_index(&idx, &mut buf).unwrap();
        // Rewriting the magic to the weighted family (and fixing the
        // checksum) must fail on missing sections, not panic.
        buf[0..8].copy_from_slice(V2_WEIGHTED_MAGIC);
        let checksum = fnv1a_parts(&[&buf[..56], &buf[HEADER_LEN..]]);
        buf[56..64].copy_from_slice(&checksum.to_le_bytes());
        assert!(open_bytes(&buf).is_err());
        assert!(open_bytes(b"NOTANIDXatall").is_err());
        assert!(open_bytes(b"").is_err());
    }

    #[test]
    fn anyindex_open_handles_v1_and_v2_files() {
        let g = ba_graph(60);
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let dir = std::env::temp_dir();
        let v1_path = dir.join(format!("pll_v2test_v1_{}.idx", std::process::id()));
        let v2_path = dir.join(format!("pll_v2test_v2_{}.idx", std::process::id()));
        crate::serialize::save_index(&idx, std::fs::File::create(&v1_path).unwrap()).unwrap();
        save_v2_index(&idx, std::fs::File::create(&v2_path).unwrap()).unwrap();
        let v1 = AnyIndex::open(&v1_path).unwrap();
        let v2 = AnyIndex::open(&v2_path).unwrap();
        assert_eq!(v1.format_version(), 1);
        assert_eq!(v2.format_version(), 2);
        assert!(!v1.is_zero_copy());
        assert!(v2.is_zero_copy());
        // v1 files carry no stats; v2 files do.
        assert_eq!(v1.stats().total_seconds(), 0.0);
        assert!(v2.stats().total_seconds() > 0.0);
        for s in (0..60u32).step_by(5) {
            for t in (0..60u32).step_by(3) {
                assert_eq!(v1.distance(s, t), v2.distance(s, t));
                assert_eq!(v2.distance(s, t), idx.distance(s, t).map(u64::from));
            }
        }
        assert!(matches!(
            v2.try_distance(0, 60),
            Err(PllError::VertexOutOfRange { .. })
        ));
        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
        assert!(AnyIndex::open(&v2_path).is_err());
    }
}
