//! Runtime-selectable query kernels: the branch-heavy scalar reference
//! merge-join and branchless variants of it, shared by every index family
//! (§3.3 of the paper; the ROADMAP's "as fast as the hardware allows"
//! item).
//!
//! Every distance query bottoms out in a two-pointer merge over two
//! sorted, sentinel-terminated `(hub rank, distance)` arrays. The scalar
//! kernel ([`merge_query_scalar`]) compares and branches three ways per
//! step; on the power-law labels PLL produces the branch history is
//! near-random, so the mispredict penalty dominates. The branchless
//! kernels ([`merge_query_branchless`], [`merge_query_unrolled`]) replace
//! the three-way branch with arithmetic on the comparison results:
//!
//! * pointer advance: `i += (ru <= rv)`, `j += (rv <= ru)` — both sides
//!   advance on a tie, one side otherwise, no branch;
//! * candidate select: `best = min(best, if ru == rv { du + dv } else
//!   { INF })` — two conditional moves;
//! * termination: `ru & rv == RANK_SENTINEL`, true iff *both* cursors sit
//!   on their sentinel (the sentinel is all-ones), one well-predicted
//!   exit branch per step instead of three.
//!
//! The selected kernel is a process-wide [`KernelKind`], initialised from
//! the `PLL_KERNEL` environment variable (`scalar` | `branchless` |
//! `unrolled`, default `branchless`) and overridable with [`set_kernel`]
//! — the equivalence tests and the `query_kernel` bench pin each kernel
//! explicitly. Every variant returns bit-identical answers to the scalar
//! reference on every input; `tests` and the proptest suite in
//! `tests/kernel_equivalence.rs` enforce that.
//!
//! # Safety
//!
//! Like `storage`, this module locally re-allows `unsafe` (the crate
//! root denies it) for exactly one pattern: `get_unchecked` label reads
//! inside the branchless loops, eliminating the per-iteration bounds
//! checks the issue of three-way branching was traded away for. The
//! loops are sound because of the sentinel invariant, checked up front
//! by `well_formed`: each rank array is non-empty, as long as its
//! distance array, and ends with [`RANK_SENTINEL`] (the maximum rank).
//! A cursor only advances while its rank is `<=` the other side's; once
//! it reaches the sentinel, `ru <= rv` can only hold when the other side
//! is *also* at its sentinel, and then the loop has already terminated —
//! so neither index ever passes its sentinel slot. Inputs failing the
//! `well_formed` guard fall back to the safe scalar kernel.

#![allow(unsafe_code)]

use crate::types::{Dist, Rank, INF_QUERY, RANK_SENTINEL};
use std::sync::atomic::{AtomicU8, Ordering};

/// Which merge-join implementation answers queries process-wide.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelKind {
    /// The branch-heavy three-way-compare reference kernel.
    Scalar = 0,
    /// Branchless advance + conditional-move select, unchecked reads.
    Branchless = 1,
    /// [`KernelKind::Branchless`] with the inner step unrolled 4-wide.
    Unrolled = 2,
}

impl KernelKind {
    /// Parses a kernel name as accepted by `PLL_KERNEL` and
    /// `--kernel`: `scalar`, `branchless` or `unrolled`.
    pub fn from_name(name: &str) -> Option<KernelKind> {
        match name {
            "scalar" => Some(KernelKind::Scalar),
            "branchless" => Some(KernelKind::Branchless),
            "unrolled" => Some(KernelKind::Unrolled),
            _ => None,
        }
    }

    /// The name [`KernelKind::from_name`] parses back.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Branchless => "branchless",
            KernelKind::Unrolled => "unrolled",
        }
    }
}

/// Sentinel for "not yet initialised from the environment".
const KERNEL_UNSET: u8 = u8::MAX;

static ACTIVE_KERNEL: AtomicU8 = AtomicU8::new(KERNEL_UNSET);

fn decode(raw: u8) -> KernelKind {
    match raw {
        0 => KernelKind::Scalar,
        2 => KernelKind::Unrolled,
        _ => KernelKind::Branchless,
    }
}

/// The kernel answering queries right now. First use reads `PLL_KERNEL`
/// (default: branchless; unknown names fall back to branchless so a typo
/// degrades to the default rather than a crash).
#[inline]
pub fn active_kernel() -> KernelKind {
    // ORDERING: Relaxed — a one-byte kernel selector with no data
    // published through it; racing first-readers may both consult the
    // env var but store the same value, and any interleaving is a
    // valid kernel choice.
    let raw = ACTIVE_KERNEL.load(Ordering::Relaxed);
    if raw != KERNEL_UNSET {
        return decode(raw);
    }
    let kind = std::env::var("PLL_KERNEL")
        .ok()
        .and_then(|name| KernelKind::from_name(&name))
        .unwrap_or(KernelKind::Branchless);
    // ORDERING: Relaxed — see the load above; idempotent publication
    // of a plain byte.
    ACTIVE_KERNEL.store(kind as u8, Ordering::Relaxed);
    kind
}

/// Selects the process-wide query kernel (tests and benches; servers use
/// `PLL_KERNEL`).
pub fn set_kernel(kind: KernelKind) {
    // ORDERING: Relaxed — same selector-byte discipline as
    // `active_kernel`.
    ACTIVE_KERNEL.store(kind as u8, Ordering::Relaxed);
}

/// The O(1) entry guard the branchless kernels' unchecked reads rely on;
/// see the module-level safety argument.
#[inline]
fn well_formed(ranks: &[Rank], dists_len: usize) -> bool {
    ranks.len() == dists_len && ranks.last() == Some(&RANK_SENTINEL)
}

/// Merge-join over two sentinel-terminated unweighted labels (`u8`
/// distances, summed in `u32`): [`INF_QUERY`] when no common hub.
/// Dispatches to the [`active_kernel`].
#[inline]
pub fn merge_query(ur: &[Rank], ud: &[Dist], vr: &[Rank], vd: &[Dist]) -> u32 {
    match active_kernel() {
        KernelKind::Scalar => merge_query_scalar(ur, ud, vr, vd),
        KernelKind::Branchless => merge_query_branchless(ur, ud, vr, vd),
        KernelKind::Unrolled => merge_query_unrolled(ur, ud, vr, vd),
    }
}

/// Merge-join over two sentinel-terminated *weighted* labels (`u32`
/// distances, summed in `u64`): `u64::MAX` when no common hub. Shared by
/// the weighted and weighted-directed indices on both storage backends.
/// Dispatches to the [`active_kernel`].
#[inline]
pub fn merge_query_weighted(ar: &[Rank], ad: &[u32], br: &[Rank], bd: &[u32]) -> u64 {
    match active_kernel() {
        KernelKind::Scalar => merge_query_weighted_scalar(ar, ad, br, bd),
        KernelKind::Branchless => merge_query_weighted_branchless(ar, ad, br, bd),
        KernelKind::Unrolled => merge_query_weighted_unrolled(ar, ad, br, bd),
    }
}

/// Scalar reference kernel (unweighted). Every other unweighted kernel
/// must return exactly this function's answers.
#[inline]
pub fn merge_query_scalar(ur: &[Rank], ud: &[Dist], vr: &[Rank], vd: &[Dist]) -> u32 {
    debug_assert_eq!(*ur.last().unwrap(), RANK_SENTINEL);
    debug_assert_eq!(*vr.last().unwrap(), RANK_SENTINEL);
    let mut i = 0usize;
    let mut j = 0usize;
    let mut best = INF_QUERY;
    loop {
        let (ru, rv) = (ur[i], vr[j]);
        if ru == rv {
            if ru == RANK_SENTINEL {
                break;
            }
            let d = ud[i] as u32 + vd[j] as u32;
            if d < best {
                best = d;
            }
            i += 1;
            j += 1;
        } else if ru < rv {
            i += 1;
        } else {
            j += 1;
        }
    }
    best
}

/// Scalar reference kernel (weighted).
#[inline]
pub fn merge_query_weighted_scalar(ar: &[Rank], ad: &[u32], br: &[Rank], bd: &[u32]) -> u64 {
    let mut i = 0usize;
    let mut j = 0usize;
    let mut best = u64::MAX;
    loop {
        let (ru, rv) = (ar[i], br[j]);
        if ru == rv {
            if ru == RANK_SENTINEL {
                break;
            }
            let d = ad[i] as u64 + bd[j] as u64;
            if d < best {
                best = d;
            }
            i += 1;
            j += 1;
        } else if ru < rv {
            i += 1;
        } else {
            j += 1;
        }
    }
    best
}

/// Branchless kernel (unweighted): see the module docs for the advance /
/// select / termination arithmetic. Falls back to
/// [`merge_query_scalar`] when either label fails the `well_formed` guard.
#[inline]
pub fn merge_query_branchless(ur: &[Rank], ud: &[Dist], vr: &[Rank], vd: &[Dist]) -> u32 {
    if !well_formed(ur, ud.len()) || !well_formed(vr, vd.len()) {
        return merge_query_scalar(ur, ud, vr, vd);
    }
    let mut i = 0usize;
    let mut j = 0usize;
    let mut best = INF_QUERY;
    // SAFETY: `well_formed` holds for both labels, so neither cursor can
    // pass its sentinel slot (module-level argument) and the distance
    // arrays are exactly as long as the rank arrays.
    unsafe {
        loop {
            let ru = *ur.get_unchecked(i);
            let rv = *vr.get_unchecked(j);
            if ru & rv == RANK_SENTINEL {
                break;
            }
            let d = *ud.get_unchecked(i) as u32 + *vd.get_unchecked(j) as u32;
            let cand = if ru == rv { d } else { INF_QUERY };
            best = if cand < best { cand } else { best };
            i += (ru <= rv) as usize;
            j += (rv <= ru) as usize;
        }
    }
    best
}

/// Branchless kernel (weighted); distance sums saturate nowhere because
/// two `u32`s always fit a `u64` (the sentinel distance `u32::MAX` is
/// read but its `u64` sum loses to any real candidate or to `u64::MAX`).
#[inline]
pub fn merge_query_weighted_branchless(ar: &[Rank], ad: &[u32], br: &[Rank], bd: &[u32]) -> u64 {
    if !well_formed(ar, ad.len()) || !well_formed(br, bd.len()) {
        return merge_query_weighted_scalar(ar, ad, br, bd);
    }
    let mut i = 0usize;
    let mut j = 0usize;
    let mut best = u64::MAX;
    // SAFETY: as in `merge_query_branchless`.
    unsafe {
        loop {
            let ru = *ar.get_unchecked(i);
            let rv = *br.get_unchecked(j);
            if ru & rv == RANK_SENTINEL {
                break;
            }
            let d = *ad.get_unchecked(i) as u64 + *bd.get_unchecked(j) as u64;
            let cand = if ru == rv { d } else { u64::MAX };
            best = if cand < best { cand } else { best };
            i += (ru <= rv) as usize;
            j += (rv <= ru) as usize;
        }
    }
    best
}

/// Four-wide unrolled body shared by the unrolled kernels: one step of
/// the branchless merge, repeated by the caller.
macro_rules! unrolled_step {
    ($ur:ident, $ud:ident, $vr:ident, $vd:ident, $i:ident, $j:ident, $best:ident,
     $acc:ty, $inf:expr) => {
        let ru = *$ur.get_unchecked($i);
        let rv = *$vr.get_unchecked($j);
        if ru & rv == RANK_SENTINEL {
            break;
        }
        let d = *$ud.get_unchecked($i) as $acc + *$vd.get_unchecked($j) as $acc;
        let cand = if ru == rv { d } else { $inf };
        $best = if cand < $best { cand } else { $best };
        $i += (ru <= rv) as usize;
        $j += (rv <= ru) as usize;
    };
}

/// [`merge_query_branchless`] with the inner step unrolled 4-wide, so
/// short labels resolve without looping and long ones amortise the loop
/// back-edge over four advances.
#[inline]
pub fn merge_query_unrolled(ur: &[Rank], ud: &[Dist], vr: &[Rank], vd: &[Dist]) -> u32 {
    if !well_formed(ur, ud.len()) || !well_formed(vr, vd.len()) {
        return merge_query_scalar(ur, ud, vr, vd);
    }
    let mut i = 0usize;
    let mut j = 0usize;
    let mut best = INF_QUERY;
    // SAFETY: as in `merge_query_branchless`; each unrolled step
    // re-checks the sentinel before reading, so the unrolling changes
    // no bound.
    unsafe {
        loop {
            unrolled_step!(ur, ud, vr, vd, i, j, best, u32, INF_QUERY);
            unrolled_step!(ur, ud, vr, vd, i, j, best, u32, INF_QUERY);
            unrolled_step!(ur, ud, vr, vd, i, j, best, u32, INF_QUERY);
            unrolled_step!(ur, ud, vr, vd, i, j, best, u32, INF_QUERY);
        }
    }
    best
}

/// [`merge_query_weighted_branchless`] with the inner step unrolled
/// 4-wide.
#[inline]
pub fn merge_query_weighted_unrolled(ar: &[Rank], ad: &[u32], br: &[Rank], bd: &[u32]) -> u64 {
    if !well_formed(ar, ad.len()) || !well_formed(br, bd.len()) {
        return merge_query_weighted_scalar(ar, ad, br, bd);
    }
    let mut i = 0usize;
    let mut j = 0usize;
    let mut best = u64::MAX;
    // SAFETY: as in `merge_query_weighted_branchless`.
    unsafe {
        loop {
            unrolled_step!(ar, ad, br, bd, i, j, best, u64, u64::MAX);
            unrolled_step!(ar, ad, br, bd, i, j, best, u64, u64::MAX);
            unrolled_step!(ar, ad, br, bd, i, j, best, u64, u64::MAX);
            unrolled_step!(ar, ad, br, bd, i, j, best, u64, u64::MAX);
        }
    }
    best
}

// ---------------------------------------------------------------------
// Dist8: weighted labels with narrowed u8 distances + escape sidecar.
// ---------------------------------------------------------------------

/// Arena byte marking a Dist8 entry whose true distance does not fit in
/// a `u8`: either an *escaped* real entry (true value in the sidecar,
/// keyed by arena position) or a label's sentinel slot (never read as a
/// distance — the merge terminates on the rank sentinel first).
pub const DIST8_ESCAPE: u8 = u8::MAX;

/// True `u64` distance of the Dist8 arena byte `d` at global arena
/// position `pos`: the byte itself below [`DIST8_ESCAPE`], the sidecar
/// value for escaped entries. An escape byte *without* a sidecar entry
/// (rejected by the v2 validator; defensive here) reads as the saturated
/// 255.
#[inline]
fn dist8_resolve(d: u8, pos: u32, esc_pos: &[u32], esc_val: &[u32]) -> u64 {
    if d != DIST8_ESCAPE {
        return d as u64;
    }
    match esc_pos.binary_search(&pos) {
        Ok(k) => esc_val[k] as u64,
        Err(_) => DIST8_ESCAPE as u64,
    }
}

/// Scalar reference kernel over two Dist8 labels. `a_base` / `b_base`
/// are the labels' start offsets in the global distance arena (sidecar
/// positions are arena-global); `esc_pos` / `esc_val` are the sorted
/// escape sidecar shared by both labels.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn merge_query_weighted_dist8_scalar(
    ar: &[Rank],
    ad: &[u8],
    a_base: u32,
    br: &[Rank],
    bd: &[u8],
    b_base: u32,
    esc_pos: &[u32],
    esc_val: &[u32],
) -> u64 {
    let mut i = 0usize;
    let mut j = 0usize;
    let mut best = u64::MAX;
    loop {
        let (ru, rv) = (ar[i], br[j]);
        if ru == rv {
            if ru == RANK_SENTINEL {
                break;
            }
            let d = dist8_resolve(ad[i], a_base + i as u32, esc_pos, esc_val)
                + dist8_resolve(bd[j], b_base + j as u32, esc_pos, esc_val);
            if d < best {
                best = d;
            }
            i += 1;
            j += 1;
        } else if ru < rv {
            i += 1;
        } else {
            j += 1;
        }
    }
    best
}

/// Branchless kernel over two Dist8 labels: the common no-escape case
/// runs the same advance/select arithmetic as
/// [`merge_query_weighted_branchless`] on `u8` sums; a matching hub with
/// an escape byte on either side takes a rare, well-predicted cold
/// branch through the sidecar.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn merge_query_weighted_dist8_branchless(
    ar: &[Rank],
    ad: &[u8],
    a_base: u32,
    br: &[Rank],
    bd: &[u8],
    b_base: u32,
    esc_pos: &[u32],
    esc_val: &[u32],
) -> u64 {
    if !well_formed(ar, ad.len()) || !well_formed(br, bd.len()) {
        return merge_query_weighted_dist8_scalar(ar, ad, a_base, br, bd, b_base, esc_pos, esc_val);
    }
    let mut i = 0usize;
    let mut j = 0usize;
    let mut best = u64::MAX;
    // SAFETY: as in `merge_query_branchless`.
    unsafe {
        loop {
            let ru = *ar.get_unchecked(i);
            let rv = *br.get_unchecked(j);
            if ru & rv == RANK_SENTINEL {
                break;
            }
            let du = *ad.get_unchecked(i);
            let dv = *bd.get_unchecked(j);
            let eq = ru == rv;
            if eq & (du.max(dv) == DIST8_ESCAPE) {
                // Cold path: a real matching hub with an escaped byte.
                let d = dist8_resolve(du, a_base + i as u32, esc_pos, esc_val)
                    + dist8_resolve(dv, b_base + j as u32, esc_pos, esc_val);
                if d < best {
                    best = d;
                }
            } else {
                let cand = if eq { du as u64 + dv as u64 } else { u64::MAX };
                best = if cand < best { cand } else { best };
            }
            i += (ru <= rv) as usize;
            j += (rv <= ru) as usize;
        }
    }
    best
}

/// Dist8 merge-join dispatching to the [`active_kernel`] (the unrolled
/// kernel shares the branchless Dist8 implementation — the escape cold
/// path defeats straight-line 4-wide unrolling).
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn merge_query_weighted_dist8(
    ar: &[Rank],
    ad: &[u8],
    a_base: u32,
    br: &[Rank],
    bd: &[u8],
    b_base: u32,
    esc_pos: &[u32],
    esc_val: &[u32],
) -> u64 {
    match active_kernel() {
        KernelKind::Scalar => {
            merge_query_weighted_dist8_scalar(ar, ad, a_base, br, bd, b_base, esc_pos, esc_val)
        }
        KernelKind::Branchless | KernelKind::Unrolled => {
            merge_query_weighted_dist8_branchless(ar, ad, a_base, br, bd, b_base, esc_pos, esc_val)
        }
    }
}

// ---------------------------------------------------------------------
// Software prefetch.
// ---------------------------------------------------------------------

/// Cache-line stride for [`prefetch_read`].
const CACHE_LINE: usize = 64;
/// Upper bound on bytes prefetched per call: enough for the label head
/// that decides most merges, without flooding the L1 on huge labels.
const PREFETCH_MAX_BYTES: usize = 512;

/// Best-effort prefetch of the leading bytes of `data` into L1 (up to
/// 512 B, one request per cache line). A no-op off x86_64. Used by the
/// server's BATCH loop to pull the *next* pair's label sections in
/// while the current pair is merging.
#[inline]
pub fn prefetch_read<T>(data: &[T]) {
    #[cfg(target_arch = "x86_64")]
    {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let bytes = std::mem::size_of_val(data).min(PREFETCH_MAX_BYTES);
        let base = data.as_ptr().cast::<i8>();
        let mut off = 0usize;
        while off < bytes {
            // SAFETY: `off < bytes <= size_of_val(data)`, so the address
            // stays inside `data` (and prefetch is non-faulting anyway).
            unsafe { _mm_prefetch(base.add(off), _MM_HINT_T0) };
            off += CACHE_LINE;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = data;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pair of fixture labels, as (rank, dist) entry lists.
    type Cases<D> = Vec<(Vec<(Rank, D)>, Vec<(Rank, D)>)>;

    fn label(entries: &[(Rank, Dist)]) -> (Vec<Rank>, Vec<Dist>) {
        let mut ranks: Vec<Rank> = entries.iter().map(|&(r, _)| r).collect();
        let mut dists: Vec<Dist> = entries.iter().map(|&(_, d)| d).collect();
        ranks.push(RANK_SENTINEL);
        dists.push(crate::types::INF8);
        (ranks, dists)
    }

    fn wlabel(entries: &[(Rank, u32)]) -> (Vec<Rank>, Vec<u32>) {
        let mut ranks: Vec<Rank> = entries.iter().map(|&(r, _)| r).collect();
        let mut dists: Vec<u32> = entries.iter().map(|&(_, d)| d).collect();
        ranks.push(RANK_SENTINEL);
        dists.push(u32::MAX);
        (ranks, dists)
    }

    #[test]
    fn all_unweighted_kernels_agree_on_fixtures() {
        let cases: Cases<Dist> = vec![
            (vec![], vec![]),
            (vec![(0, 0), (2, 3)], vec![(0, 1)]),
            (vec![(1, 2)], vec![(0, 1), (2, 9)]),
            (vec![(0, 4), (1, 1), (5, 2)], vec![(1, 3), (5, 1), (9, 0)]),
            (vec![(3, 7)], vec![(3, 7)]),
        ];
        for (a, b) in cases {
            let (ur, ud) = label(&a);
            let (vr, vd) = label(&b);
            let want = merge_query_scalar(&ur, &ud, &vr, &vd);
            assert_eq!(merge_query_branchless(&ur, &ud, &vr, &vd), want);
            assert_eq!(merge_query_unrolled(&ur, &ud, &vr, &vd), want);
            // And symmetrically.
            assert_eq!(merge_query_branchless(&vr, &vd, &ur, &ud), want);
            assert_eq!(merge_query_unrolled(&vr, &vd, &ur, &ud), want);
        }
    }

    #[test]
    fn all_weighted_kernels_agree_on_fixtures() {
        let cases: Cases<u32> = vec![
            (vec![], vec![]),
            (vec![(0, 10), (4, 300)], vec![(0, 5), (4, 1)]),
            (vec![(2, u32::MAX - 1)], vec![(2, u32::MAX - 1)]),
            (vec![(0, 1), (1, 2), (7, 3)], vec![(1, 9), (7, 0)]),
        ];
        for (a, b) in cases {
            let (ar, ad) = wlabel(&a);
            let (br, bd) = wlabel(&b);
            let want = merge_query_weighted_scalar(&ar, &ad, &br, &bd);
            assert_eq!(merge_query_weighted_branchless(&ar, &ad, &br, &bd), want);
            assert_eq!(merge_query_weighted_unrolled(&ar, &ad, &br, &bd), want);
        }
    }

    #[test]
    fn malformed_labels_fall_back_to_scalar_without_panicking() {
        // Missing sentinel / length mismatch must not reach the unsafe
        // loop; the scalar fallback then panics or answers exactly as the
        // scalar kernel always did. Use a well-formed pair against an
        // empty-bodied one to stay panic-free.
        let (ur, ud) = label(&[(1, 1)]);
        // Length mismatch: dists shorter than ranks.
        let short = &ud[..1];
        assert_eq!(
            merge_query_branchless(&ur, short, &ur, &ud),
            merge_query_scalar(&ur, &ud, &ur, &ud)
        );
    }

    #[test]
    fn dist8_kernels_agree_and_resolve_escapes() {
        // Arena layout: label A at base 0 = [(1, 200), (3, ESC->500)],
        // label B at base 3 = [(3, ESC->300), (9, 4)].
        let ar = vec![1, 3, RANK_SENTINEL];
        let ad = vec![200u8, DIST8_ESCAPE, DIST8_ESCAPE];
        let br = vec![3, 9, RANK_SENTINEL];
        let bd = vec![DIST8_ESCAPE, 4u8, DIST8_ESCAPE];
        // Global positions: A = 0..3, B = 3..6; sentinels (2 and 5) have
        // no sidecar entry.
        let esc_pos = vec![1u32, 3u32];
        let esc_val = vec![500u32, 300u32];
        let want = 500 + 300;
        assert_eq!(
            merge_query_weighted_dist8_scalar(&ar, &ad, 0, &br, &bd, 3, &esc_pos, &esc_val),
            want
        );
        assert_eq!(
            merge_query_weighted_dist8_branchless(&ar, &ad, 0, &br, &bd, 3, &esc_pos, &esc_val),
            want
        );
    }

    #[test]
    fn dist8_small_values_need_no_sidecar() {
        let ar = vec![0, 5, RANK_SENTINEL];
        let ad = vec![7u8, 1u8, DIST8_ESCAPE];
        let br = vec![5, RANK_SENTINEL];
        let bd = vec![2u8, DIST8_ESCAPE];
        for f in [
            merge_query_weighted_dist8_scalar,
            merge_query_weighted_dist8_branchless,
        ] {
            assert_eq!(f(&ar, &ad, 0, &br, &bd, 3, &[], &[]), 3);
        }
    }

    #[test]
    fn kernel_selection_roundtrips() {
        assert_eq!(KernelKind::from_name("scalar"), Some(KernelKind::Scalar));
        assert_eq!(
            KernelKind::from_name("branchless"),
            Some(KernelKind::Branchless)
        );
        assert_eq!(
            KernelKind::from_name("unrolled"),
            Some(KernelKind::Unrolled)
        );
        assert_eq!(KernelKind::from_name("avx512"), None);
        for kind in [
            KernelKind::Scalar,
            KernelKind::Branchless,
            KernelKind::Unrolled,
        ] {
            assert_eq!(KernelKind::from_name(kind.name()), Some(kind));
            set_kernel(kind);
            assert_eq!(active_kernel(), kind);
        }
        set_kernel(KernelKind::Branchless);
    }

    #[test]
    fn prefetch_is_safe_on_any_slice() {
        prefetch_read::<u32>(&[]);
        prefetch_read(&[1u8; 3]);
        let big = vec![0u64; 4096];
        prefetch_read(&big);
    }
}
