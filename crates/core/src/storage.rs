//! Storage backends for label arenas: owned `Vec`s or borrowed views over
//! one contiguous, section-aligned byte buffer.
//!
//! The paper's point (§4.3, §6 "Disk-based Query Answering") is that a
//! built 2-hop label answers queries from a handful of contiguous regions.
//! This module makes that literal: [`LabelStorage`] and [`BpStorage`]
//! abstract *where* those regions live, with two implementations each —
//!
//! * [`OwnedLabels`] / [`OwnedBp`] — the classic heap-allocated arenas the
//!   builders produce;
//! * [`ViewLabels`] / [`ViewBp`] — zero-copy [`SectionSlice`] views into a
//!   single [`AlignedBytes`] buffer holding a v2 index file
//!   ([`crate::v2`]), where every section starts on a 64-byte boundary so
//!   opening an index is one read plus pointer casts.
//!
//! The query kernels in [`crate::label`], [`crate::bp`] and the index
//! types are generic over these traits, so the exact same merge-join runs
//! on either backend.
//!
//! This is the one module in the crate that uses `unsafe`: the pointer
//! casts from the byte buffer to typed slices. Every cast is guarded by
//! the bounds and alignment checks in [`SectionSlice::new`], and the
//! element types are restricted to the sealed [`Pod`] trait (`u8`, `u32`,
//! `u64`: no padding, no invalid bit patterns, alignment ≤ 8).
#![allow(unsafe_code)]

use crate::bp::BpEntry;
use crate::error::{PllError, Result};
use crate::types::Rank;
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// Alignment (bytes) of every section inside an [`AlignedBytes`] buffer —
/// one cache line, and a multiple of every [`Pod`] element's alignment.
pub const SECTION_ALIGN: usize = 64;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Plain-old-data element types a [`SectionSlice`] may view: fixed-size
/// little-endian integers with no padding and no invalid bit patterns.
/// Sealed — the unsafe casts in this module are only sound for these.
pub trait Pod: Copy + Send + Sync + sealed::Sealed + 'static {
    /// Element size in bytes (`align_of` equals `size_of` for all three).
    const SIZE: usize;
}

impl Pod for u8 {
    const SIZE: usize = 1;
}
impl Pod for u32 {
    const SIZE: usize = 4;
}
impl Pod for u64 {
    const SIZE: usize = 8;
}

/// An immutable byte buffer whose base address is 8-byte aligned, so any
/// section at a [`SECTION_ALIGN`]-multiple offset can be viewed as `&[u8]`,
/// `&[u32]` or `&[u64]` without copying.
///
/// The default backing store is a heap `Vec<u64>` filled by one
/// `read_exact` (a single allocation for the whole file). With the `mmap`
/// feature on Linux the file is memory-mapped instead: no copy, and the
/// pages are shared read-only between every process serving the same
/// index. (The v2 opener still touches each page once for checksum and
/// structural validation, so mapping buys sharing and copy-avoidance,
/// not lazy page-in; a validation-skipping trusted-open is a possible
/// future knob.)
pub struct AlignedBytes {
    inner: Inner,
}

enum Inner {
    Heap {
        /// Backing words: the `Vec<u64>` guarantees 8-byte base alignment.
        words: Vec<u64>,
        /// Logical byte length (≤ `words.len() * 8`).
        len: usize,
    },
    #[cfg(all(target_os = "linux", feature = "mmap"))]
    Mmap(mmap_linux::Mapping),
}

impl AlignedBytes {
    /// Copies `bytes` into a fresh aligned buffer (one allocation).
    pub fn from_bytes(bytes: &[u8]) -> AlignedBytes {
        let mut words = vec![0u64; bytes.len().div_ceil(8)];
        // SAFETY: u64 -> u8 view of the same allocation; the byte length
        // never exceeds the word capacity.
        let dst =
            unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), bytes.len()) };
        dst.copy_from_slice(bytes);
        AlignedBytes {
            inner: Inner::Heap {
                words,
                len: bytes.len(),
            },
        }
    }

    /// Loads a whole file: a single `mmap` when built with the `mmap`
    /// feature on Linux, otherwise one sized allocation + one `read_exact`.
    pub fn from_file(path: &Path) -> Result<AlignedBytes> {
        let mut file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| PllError::TooLarge {
            what: "index file length",
        })?;
        #[cfg(all(target_os = "linux", feature = "mmap"))]
        {
            if len > 0 {
                return Ok(AlignedBytes {
                    inner: Inner::Mmap(mmap_linux::Mapping::map(&file, len)?),
                });
            }
        }
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: as in `from_bytes`.
        let dst = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
        std::io::Read::read_exact(&mut file, dst)?;
        Ok(AlignedBytes {
            inner: Inner::Heap { words, len },
        })
    }

    /// Byte length of the buffer.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap { len, .. } => *len,
            #[cfg(all(target_os = "linux", feature = "mmap"))]
            Inner::Mmap(m) => m.len(),
        }
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole buffer as bytes.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.inner {
            Inner::Heap { words, len } => {
                // SAFETY: u64 -> u8 view of the same allocation, len is
                // within the allocation by construction.
                unsafe { std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len) }
            }
            #[cfg(all(target_os = "linux", feature = "mmap"))]
            Inner::Mmap(m) => m.as_bytes(),
        }
    }
}

impl fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AlignedBytes")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(all(target_os = "linux", feature = "mmap"))]
mod mmap_linux {
    //! Minimal read-only `mmap` shim. The real `memmap2` crate is the
    //! right dependency once a cargo registry is reachable; this container
    //! has none, so the two syscalls are declared directly against the
    //! libc that std already links.
    use crate::error::{PllError, Result};
    use std::os::unix::io::AsRawFd;

    // Linux ABI constants for the two calls we make.
    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }

    pub struct Mapping {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is immutable (PROT_READ, MAP_PRIVATE) for its
    // whole lifetime, so shared references from any thread are sound.
    unsafe impl Send for Mapping {}
    unsafe impl Sync for Mapping {}

    impl Mapping {
        pub fn map(file: &std::fs::File, len: usize) -> Result<Mapping> {
            debug_assert!(len > 0, "mmap of an empty file is invalid");
            // SAFETY: fd is valid for the duration of the call; a failed
            // map returns MAP_FAILED which we check before use.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(PllError::Io(std::io::Error::last_os_error()));
            }
            Ok(Mapping {
                ptr: ptr.cast_const().cast::<u8>(),
                len,
            })
        }

        pub fn len(&self) -> usize {
            self.len
        }

        pub fn as_bytes(&self) -> &[u8] {
            // SAFETY: ptr/len describe a live PROT_READ mapping.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            // SAFETY: unmapping the exact region returned by mmap.
            unsafe {
                munmap(self.ptr.cast_mut().cast(), self.len);
            }
        }
    }
}

/// A typed view of one section of an [`AlignedBytes`] buffer: `len`
/// elements of `T` starting at `byte_offset`. Holding the buffer behind an
/// `Arc` makes the slice self-sufficient — cloning a view is two pointer
/// copies, and [`SectionSlice::as_slice`] is a pointer cast, not a parse.
pub struct SectionSlice<T: Pod> {
    buf: Arc<AlignedBytes>,
    byte_offset: usize,
    len: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Pod> SectionSlice<T> {
    /// Creates a view after checking bounds and alignment.
    ///
    /// # Errors
    ///
    /// [`PllError::Format`] when the section overflows the buffer or its
    /// start is not aligned to `T`.
    pub fn new(buf: Arc<AlignedBytes>, byte_offset: usize, len: usize) -> Result<SectionSlice<T>> {
        let byte_len = len.checked_mul(T::SIZE).ok_or_else(|| PllError::Format {
            message: "section length overflows".into(),
        })?;
        let end = byte_offset
            .checked_add(byte_len)
            .ok_or_else(|| PllError::Format {
                message: "section end overflows".into(),
            })?;
        if end > buf.len() {
            return Err(PllError::Format {
                message: format!(
                    "section [{byte_offset}, {end}) exceeds buffer of {} bytes",
                    buf.len()
                ),
            });
        }
        if !byte_offset.is_multiple_of(T::SIZE)
            || !(buf.as_bytes().as_ptr() as usize).is_multiple_of(T::SIZE)
        {
            return Err(PllError::Format {
                message: format!("section at byte {byte_offset} is not {}-aligned", T::SIZE),
            });
        }
        Ok(SectionSlice {
            buf,
            byte_offset,
            len,
            _marker: std::marker::PhantomData,
        })
    }

    /// An empty view over `buf` (for absent optional sections).
    pub fn empty(buf: Arc<AlignedBytes>) -> SectionSlice<T> {
        SectionSlice {
            buf,
            byte_offset: 0,
            len: 0,
            _marker: std::marker::PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The section as a typed slice — a pointer cast, zero work.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `new` checked that [byte_offset, byte_offset + len * SIZE)
        // is in bounds and `T`-aligned; `T: Pod` guarantees every bit
        // pattern is a valid `T`; the Arc keeps the buffer alive for the
        // returned borrow's lifetime (tied to &self).
        unsafe {
            std::slice::from_raw_parts(
                self.buf
                    .as_bytes()
                    .as_ptr()
                    .add(self.byte_offset)
                    .cast::<T>(),
                self.len,
            )
        }
    }

    /// Bytes occupied by the section.
    pub fn byte_len(&self) -> usize {
        self.len * T::SIZE
    }
}

impl<T: Pod> Clone for SectionSlice<T> {
    fn clone(&self) -> Self {
        SectionSlice {
            buf: Arc::clone(&self.buf),
            byte_offset: self.byte_offset,
            len: self.len,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Pod> fmt::Debug for SectionSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SectionSlice")
            .field("byte_offset", &self.byte_offset)
            .field("len", &self.len)
            .finish()
    }
}

impl<T: Pod> AsRef<[T]> for SectionSlice<T> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

/// Storage backend of a sentinel-terminated label arena (offsets + ranks +
/// distances + optional parents). `Dist` is `u8` for unweighted labels and
/// `u32` for the weighted arenas.
pub trait LabelStorage {
    /// Element type of the distance array.
    type Dist: Pod;
    /// Arena offsets (`n + 1` entries, offset `v` is vertex `v`'s start).
    fn offsets(&self) -> &[u32];
    /// Hub-rank arena (sentinel-terminated per label).
    fn ranks(&self) -> &[Rank];
    /// Distance arena, parallel to `ranks`.
    fn dists(&self) -> &[Self::Dist];
    /// Parent-pointer arena, if stored.
    fn parents(&self) -> Option<&[Rank]>;
    /// Bytes occupied by the arenas.
    fn memory_bytes(&self) -> usize {
        self.offsets().len() * 4
            + self.ranks().len() * 4
            + std::mem::size_of_val(self.dists())
            + self.parents().map_or(0, |p| p.len() * 4)
    }
}

/// Heap-owned label arenas — what the builders produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedLabels<D: Pod> {
    pub(crate) offsets: Vec<u32>,
    pub(crate) ranks: Vec<Rank>,
    pub(crate) dists: Vec<D>,
    pub(crate) parents: Option<Vec<Rank>>,
}

impl<D: Pod> LabelStorage for OwnedLabels<D> {
    type Dist = D;
    fn offsets(&self) -> &[u32] {
        &self.offsets
    }
    fn ranks(&self) -> &[Rank] {
        &self.ranks
    }
    fn dists(&self) -> &[D] {
        &self.dists
    }
    fn parents(&self) -> Option<&[Rank]> {
        self.parents.as_deref()
    }
}

/// Zero-copy label arenas: four [`SectionSlice`] views into one buffer.
#[derive(Clone, Debug)]
pub struct ViewLabels<D: Pod> {
    pub(crate) offsets: SectionSlice<u32>,
    pub(crate) ranks: SectionSlice<Rank>,
    pub(crate) dists: SectionSlice<D>,
    pub(crate) parents: Option<SectionSlice<Rank>>,
}

impl<D: Pod> LabelStorage for ViewLabels<D> {
    type Dist = D;
    fn offsets(&self) -> &[u32] {
        self.offsets.as_slice()
    }
    fn ranks(&self) -> &[Rank] {
        self.ranks.as_slice()
    }
    fn dists(&self) -> &[D] {
        self.dists.as_slice()
    }
    fn parents(&self) -> Option<&[Rank]> {
        self.parents.as_ref().map(SectionSlice::as_slice)
    }
}

/// Storage backend of the bit-parallel label arena.
///
/// The owned backend keeps the array-of-structs `Vec<BpEntry>` the
/// builders fill in place; the view backend reads the v2 format's
/// structure-of-arrays sections (`dist` / `set_minus1` / `set_zero`),
/// which — unlike `BpEntry` with its 7 padding bytes — have a defined
/// byte-level layout to cast from. [`BpStorage::entry`] assembles the
/// 17 live bytes either way; the query kernel is identical.
pub trait BpStorage {
    /// Ranks used as BP roots (`u32::MAX` marks an exhausted slot).
    fn roots(&self) -> &[Rank];
    /// Entry at flat index `idx` (= `v * num_roots + i`).
    fn entry(&self, idx: usize) -> BpEntry;
    /// Number of entries in the arena.
    fn entry_count(&self) -> usize;
    /// Bytes occupied by the arena.
    fn memory_bytes(&self) -> usize;
}

/// Heap-owned bit-parallel arena.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedBp {
    pub(crate) roots: Vec<Rank>,
    pub(crate) entries: Vec<BpEntry>,
}

impl BpStorage for OwnedBp {
    fn roots(&self) -> &[Rank] {
        &self.roots
    }
    #[inline]
    fn entry(&self, idx: usize) -> BpEntry {
        self.entries[idx]
    }
    fn entry_count(&self) -> usize {
        self.entries.len()
    }
    fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<BpEntry>() + self.roots.len() * 4
    }
}

/// Zero-copy bit-parallel arena over the v2 structure-of-arrays sections.
#[derive(Clone, Debug)]
pub struct ViewBp {
    pub(crate) roots: SectionSlice<Rank>,
    pub(crate) dist: SectionSlice<u8>,
    pub(crate) set_minus1: SectionSlice<u64>,
    pub(crate) set_zero: SectionSlice<u64>,
}

impl BpStorage for ViewBp {
    fn roots(&self) -> &[Rank] {
        self.roots.as_slice()
    }
    #[inline]
    fn entry(&self, idx: usize) -> BpEntry {
        BpEntry {
            dist: self.dist.as_slice()[idx],
            set_minus1: self.set_minus1.as_slice()[idx],
            set_zero: self.set_zero.as_slice()[idx],
        }
    }
    fn entry_count(&self) -> usize {
        self.dist.len()
    }
    fn memory_bytes(&self) -> usize {
        self.dist.byte_len()
            + self.set_minus1.byte_len()
            + self.set_zero.byte_len()
            + self.roots.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_bytes_roundtrip_and_alignment() {
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let src: Vec<u8> = (0..n).map(|i| (i * 37) as u8).collect();
            let buf = AlignedBytes::from_bytes(&src);
            assert_eq!(buf.len(), n);
            assert_eq!(buf.as_bytes(), &src[..]);
            assert_eq!(buf.as_bytes().as_ptr() as usize % 8, 0, "base alignment");
            assert_eq!(buf.is_empty(), n == 0);
        }
    }

    #[test]
    fn section_slice_casts_u32_and_u64() {
        // 64 zero bytes, then 4 u32s, then (aligned) 2 u64s.
        let mut bytes = vec![0u8; 64];
        for v in [1u32, 2, 3, 4] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes.resize(128, 0);
        for v in [0xDEAD_BEEFu64, 42] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let buf = Arc::new(AlignedBytes::from_bytes(&bytes));
        let s32 = SectionSlice::<u32>::new(Arc::clone(&buf), 64, 4).unwrap();
        assert_eq!(s32.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(s32.byte_len(), 16);
        let s64 = SectionSlice::<u64>::new(Arc::clone(&buf), 128, 2).unwrap();
        assert_eq!(s64.as_slice(), &[0xDEAD_BEEF, 42]);
        let s8 = SectionSlice::<u8>::new(Arc::clone(&buf), 64, 4).unwrap();
        assert_eq!(s8.as_slice(), &[1, 0, 0, 0]);
        assert!(!s8.is_empty());
        assert!(SectionSlice::<u32>::empty(buf).is_empty());
    }

    #[test]
    fn section_slice_rejects_bad_bounds_and_alignment() {
        let buf = Arc::new(AlignedBytes::from_bytes(&[0u8; 64]));
        // Out of bounds.
        assert!(matches!(
            SectionSlice::<u32>::new(Arc::clone(&buf), 60, 2),
            Err(PllError::Format { .. })
        ));
        // Misaligned start.
        assert!(matches!(
            SectionSlice::<u32>::new(Arc::clone(&buf), 2, 1),
            Err(PllError::Format { .. })
        ));
        assert!(matches!(
            SectionSlice::<u64>::new(Arc::clone(&buf), 4, 1),
            Err(PllError::Format { .. })
        ));
        // Length overflow must not wrap.
        assert!(matches!(
            SectionSlice::<u64>::new(Arc::clone(&buf), 0, usize::MAX / 2),
            Err(PllError::Format { .. })
        ));
        // In-bounds aligned view is fine.
        assert!(SectionSlice::<u64>::new(buf, 8, 7).is_ok());
    }

    #[test]
    fn from_file_matches_from_bytes() {
        let mut path = std::env::temp_dir();
        path.push(format!("pll_storage_test_{}", std::process::id()));
        let payload: Vec<u8> = (0..300u32).flat_map(|v| v.to_le_bytes()).collect();
        std::fs::write(&path, &payload).unwrap();
        let buf = AlignedBytes::from_file(&path).unwrap();
        assert_eq!(buf.as_bytes(), &payload[..]);
        std::fs::remove_file(&path).ok();
        assert!(AlignedBytes::from_file(&path).is_err());
    }

    #[test]
    fn owned_and_view_labels_agree() {
        let owned = OwnedLabels::<u8> {
            offsets: vec![0, 2, 3],
            ranks: vec![0, u32::MAX, u32::MAX],
            dists: vec![0, 255, 255],
            parents: None,
        };
        // Lay the same arenas out in one buffer at 64-byte sections.
        let mut bytes = vec![0u8; 64];
        for &o in &owned.offsets {
            bytes.extend_from_slice(&o.to_le_bytes());
        }
        bytes.resize(128, 0);
        for &r in &owned.ranks {
            bytes.extend_from_slice(&r.to_le_bytes());
        }
        bytes.resize(192, 0);
        bytes.extend_from_slice(&owned.dists);
        let buf = Arc::new(AlignedBytes::from_bytes(&bytes));
        let view = ViewLabels::<u8> {
            offsets: SectionSlice::new(Arc::clone(&buf), 64, 3).unwrap(),
            ranks: SectionSlice::new(Arc::clone(&buf), 128, 3).unwrap(),
            dists: SectionSlice::new(Arc::clone(&buf), 192, 3).unwrap(),
            parents: None,
        };
        assert_eq!(owned.offsets(), view.offsets());
        assert_eq!(owned.ranks(), view.ranks());
        assert_eq!(owned.dists(), view.dists());
        assert_eq!(owned.parents(), view.parents());
        assert_eq!(view.memory_bytes(), 3 * 4 + 3 * 4 + 3);
    }
}
