//! Weighted pruned landmark labeling via pruned Dijkstra (§6, "Weighted
//! Graphs").
//!
//! "The only necessary change is to perform pruned Dijkstra's algorithm
//! instead of pruned BFSs. Bit-parallel labeling cannot be used for weighted
//! graphs." Distances are 32-bit in labels (accumulated in 64-bit during
//! search); the pruning test runs at *settle* time, when a vertex's distance
//! from the root is final.
//!
//! [`WeightedIndexBuilder::threads`] selects the batch-parallel path:
//! each worker runs a relaxed pruned Dijkstra with a thread-local binary
//! heap and lazily-reset 64-bit `dist` scratch, and the batch barrier
//! commits entries in rank order with the same-batch re-prune. The `u32`
//! label-overflow check moves to commit time, where it fires on exactly
//! the entries the sequential build labels — so the parallel path is
//! byte-identical *including* its error behaviour; see [`crate::par`].

use crate::error::{PllError, Result};
use crate::order::OrderingStrategy;
use crate::par::{
    commit_entries, resolve_threads, run_batched, DijkstraScratch, PrunedSearch, RootCommit,
};
use crate::stats::{ConstructionStats, RootStats};
use crate::storage::{LabelStorage, OwnedLabels, SectionSlice, ViewLabels};
use crate::types::{Rank, Vertex, WDist, RANK_SENTINEL};
use pll_graph::reorder::inverse_permutation;
use pll_graph::wgraph::WeightedGraph;
use pll_graph::{Xoshiro256pp, INF_U64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Configures construction of a [`WeightedPllIndex`].
#[derive(Clone, Debug)]
pub struct WeightedIndexBuilder {
    ordering: OrderingStrategy,
    seed: u64,
    threads: usize,
}

impl Default for WeightedIndexBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl WeightedIndexBuilder {
    /// Default configuration: Degree ordering.
    pub fn new() -> Self {
        WeightedIndexBuilder {
            ordering: OrderingStrategy::Degree,
            seed: 0x5EED_1A5E,
            threads: 1,
        }
    }

    /// Sets the number of worker threads for batch-parallel construction
    /// (see [`crate::par`]): `1` (default) is the sequential pruned
    /// Dijkstra path, `k > 1` runs batch-parallel pruned Dijkstras on `k`
    /// threads with a byte-identical index (including
    /// [`PllError::WeightedDistanceOverflow`] behaviour, checked at
    /// commit time on exactly the sequential build's entries), and `0`
    /// auto-detects one thread per CPU. The Degree ordering and the
    /// label flatten ride the same knob, output-identically at any
    /// thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the ordering strategy (`Degree`, `Random` or `Custom`;
    /// `Closeness` is unsupported for weighted graphs).
    pub fn ordering(mut self, strategy: OrderingStrategy) -> Self {
        self.ordering = strategy;
        self
    }

    /// Seed for the Random ordering.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn compute_order(&self, g: &WeightedGraph, threads: usize) -> Result<Vec<Vertex>> {
        let n = g.num_vertices();
        match &self.ordering {
            OrderingStrategy::Degree => Ok(crate::order::order_by_key_desc(n, threads, |v| {
                g.degree(v) as u64
            })),
            OrderingStrategy::Random => {
                let mut order: Vec<Vertex> = (0..n as Vertex).collect();
                Xoshiro256pp::seed_from_u64(self.seed).shuffle(&mut order);
                Ok(order)
            }
            OrderingStrategy::Custom(order) => {
                if order.len() != n {
                    return Err(PllError::InvalidOrder {
                        message: format!("order has {} entries for {} vertices", order.len(), n),
                    });
                }
                let mut seen = vec![false; n];
                for &v in order {
                    if (v as usize) >= n || seen[v as usize] {
                        return Err(PllError::InvalidOrder {
                            message: format!("order entry {v} repeated or out of range"),
                        });
                    }
                    seen[v as usize] = true;
                }
                Ok(order.clone())
            }
            OrderingStrategy::Closeness { .. } | OrderingStrategy::Degeneracy => {
                Err(PllError::IncompatibleOptions {
                    message: format!(
                        "{} ordering is not supported for weighted indices",
                        self.ordering.name()
                    ),
                })
            }
        }
    }

    /// Builds the weighted index with pruned Dijkstra searches.
    pub fn build(&self, g: &WeightedGraph) -> Result<WeightedPllIndex> {
        let n = g.num_vertices();
        let threads = resolve_threads(self.threads);
        let t0 = Instant::now();
        let order = self.compute_order(g, threads)?;
        let order_seconds = t0.elapsed().as_secs_f64();
        let tr = Instant::now();
        let inv = inverse_permutation(&order);
        // Relabel into rank space (sequential: the edge translation
        // streams through `from_edges`, which owns the CSR scatter).
        let rank_edges: Vec<(Vertex, Vertex, u32)> = g
            .edges()
            .map(|(u, v, w)| (inv[u as usize], inv[v as usize], w))
            .collect();
        let h = WeightedGraph::from_edges(n, &rank_edges)?;
        let relabel_seconds = tr.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let mut stats = ConstructionStats {
            order_seconds,
            relabel_seconds,
            threads,
            ..Default::default()
        };
        if threads > 1 {
            let mut state = WeightedState {
                label_ranks: vec![Vec::new(); n],
                label_dists: vec![Vec::new(); n],
            };
            let roots: Vec<Rank> = (0..n as Rank).collect();
            let search = WeightedSearch { h: &h };
            run_batched(
                &search,
                &mut state,
                &roots,
                threads,
                &mut stats,
                None,
                |_, _, _| Ok(()),
            )?;
            stats.pruned_seconds = t1.elapsed().as_secs_f64();
            let tf = Instant::now();
            let (offsets, ranks, dists) =
                flatten_weighted(&state.label_ranks, &state.label_dists, threads)?;
            stats.flatten_seconds = tf.elapsed().as_secs_f64();
            return Ok(WeightedPllIndex {
                order,
                inv,
                labels: OwnedLabels {
                    offsets,
                    ranks,
                    dists,
                    parents: None,
                },
                stats,
            });
        }

        let mut label_ranks: Vec<Vec<Rank>> = vec![Vec::new(); n];
        let mut label_dists: Vec<Vec<WDist>> = vec![Vec::new(); n];

        let mut tentative: Vec<u64> = vec![INF_U64; n];
        let mut temp: Vec<u64> = vec![INF_U64; n];
        let mut touched: Vec<Rank> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(u64, Rank)>> = BinaryHeap::new();

        for r in 0..n as Rank {
            for (idx, &w) in label_ranks[r as usize].iter().enumerate() {
                temp[w as usize] = label_dists[r as usize][idx] as u64;
            }
            heap.clear();
            touched.clear();
            tentative[r as usize] = 0;
            touched.push(r);
            heap.push(Reverse((0, r)));

            while let Some(Reverse((d, u))) = heap.pop() {
                if d > tentative[u as usize] {
                    continue; // stale heap entry
                }
                stats.total_visited += 1;

                // Pruning test at settle time (distance d is final).
                let mut prune = false;
                let lr = &label_ranks[u as usize];
                let ld = &label_dists[u as usize];
                for (idx, &w) in lr.iter().enumerate() {
                    let tw = temp[w as usize];
                    if tw != INF_U64 && tw + ld[idx] as u64 <= d {
                        prune = true;
                        break;
                    }
                }
                if prune {
                    stats.total_pruned += 1;
                    continue;
                }
                if d > WDist::MAX as u64 - 1 {
                    return Err(PllError::WeightedDistanceOverflow);
                }
                label_ranks[u as usize].push(r);
                label_dists[u as usize].push(d as WDist);
                stats.total_labeled += 1;

                for (w, wt) in h.neighbors(u) {
                    let nd = d + wt as u64;
                    if nd < tentative[w as usize] {
                        if tentative[w as usize] == INF_U64 {
                            touched.push(w);
                        }
                        tentative[w as usize] = nd;
                        heap.push(Reverse((nd, w)));
                    }
                }
            }
            for &v in &touched {
                tentative[v as usize] = INF_U64;
            }
            for &w in label_ranks[r as usize].iter() {
                temp[w as usize] = INF_U64;
            }
            stats.pruned_roots += 1;
        }
        stats.pruned_seconds = t1.elapsed().as_secs_f64();

        let tf = Instant::now();
        let (offsets, ranks, dists) = flatten_weighted(&label_ranks, &label_dists, 1)?;
        stats.flatten_seconds = tf.elapsed().as_secs_f64();

        Ok(WeightedPllIndex {
            order,
            inv,
            labels: OwnedLabels {
                offsets,
                ranks,
                dists,
                parents: None,
            },
            stats,
        })
    }
}

/// Flattens per-vertex weighted labels into the sentinel-terminated arena
/// layout (§4.5 "Sentinel"), shared by the sequential and batch-parallel
/// paths so their serialised forms agree byte for byte. Offsets are a
/// checked `u64` prefix sum and the label chunks are copied from `threads`
/// scoped workers over disjoint arena slices, so the result is identical
/// at any thread count.
///
/// # Errors
///
/// Returns [`PllError::TooLarge`] when the arena (sentinels included)
/// would exceed `u32::MAX` entries.
pub(crate) fn flatten_weighted(
    label_ranks: &[Vec<Rank>],
    label_dists: &[Vec<WDist>],
    threads: usize,
) -> Result<(Vec<u32>, Vec<Rank>, Vec<WDist>)> {
    let offsets = crate::label::checked_offsets(label_ranks.iter().map(Vec::len))?;
    let total = *offsets.last().unwrap() as usize;
    let mut ranks = vec![0 as Rank; total];
    let mut dists = vec![0 as WDist; total];
    crate::label::scatter_with_sentinel(label_ranks, RANK_SENTINEL, &offsets, &mut ranks, threads);
    crate::label::scatter_with_sentinel(label_dists, WDist::MAX, &offsets, &mut dists, threads);
    Ok((offsets, ranks, dists))
}

/// The commit-time `u32` label check of the weighted variants: the
/// sequential build checks this at settle time; surviving entries at
/// commit are exactly its labeled entries, so
/// [`PllError::WeightedDistanceOverflow`] fires on the same root either
/// way.
pub(crate) fn check_label_overflow(d: u64) -> Result<WDist> {
    if d > WDist::MAX as u64 - 1 {
        return Err(PllError::WeightedDistanceOverflow);
    }
    Ok(d as WDist)
}

/// Committed label state of the batch-parallel weighted build.
struct WeightedState {
    label_ranks: Vec<Vec<Rank>>,
    label_dists: Vec<Vec<WDist>>,
}

/// Buffered output of one relaxed pruned Dijkstra: `(vertex, distance)`
/// candidates in settle order (distances still in 64-bit scratch space;
/// the `u32` check happens at commit, on entries that survive the
/// re-prune).
struct WeightedRun {
    entries: Vec<(Rank, u64)>,
    visited: u32,
    pruned: u32,
}

/// The weighted [`PrunedSearch`]: one relaxed pruned Dijkstra per root
/// with a thread-local binary heap, pruning at settle time against the
/// committed labels.
struct WeightedSearch<'g> {
    h: &'g WeightedGraph,
}

impl PrunedSearch for WeightedSearch<'_> {
    type State = WeightedState;
    type Scratch = DijkstraScratch;
    type Run = WeightedRun;

    fn new_scratch(&self) -> DijkstraScratch {
        DijkstraScratch::new(self.h.num_vertices())
    }

    fn search(
        &self,
        state: &WeightedState,
        r: Rank,
        ws: &mut DijkstraScratch,
    ) -> Result<WeightedRun> {
        let mut run = WeightedRun {
            entries: Vec::new(),
            visited: 0,
            pruned: 0,
        };
        relaxed_pruned_dijkstra(
            self.h,
            r,
            &state.label_ranks,
            &state.label_dists,
            ws,
            &mut run,
        );
        Ok(run)
    }

    fn commit(
        &self,
        state: &mut WeightedState,
        batch_first: Rank,
        r: Rank,
        run: WeightedRun,
    ) -> Result<RootCommit> {
        let mut labeled = 0u32;
        let mut repruned = 0u32;
        commit_entries(
            &run.entries,
            &mut state.label_ranks,
            &mut state.label_dists,
            None,
            batch_first,
            r,
            check_label_overflow,
            &mut labeled,
            &mut repruned,
        )?;
        Ok(RootCommit {
            stats: RootStats {
                rank: r,
                visited: run.visited,
                labeled,
                pruned: run.pruned + repruned,
            },
            repruned,
        })
    }
}

/// One relaxed pruned Dijkstra from `r` against the committed labels,
/// buffering label candidates in settle order. Mirrors the sequential
/// loop (same temp preparation, settle-time prune test and lazy resets),
/// except that the `u32` overflow check is deferred to commit.
fn relaxed_pruned_dijkstra(
    h: &WeightedGraph,
    r: Rank,
    label_ranks: &[Vec<Rank>],
    label_dists: &[Vec<WDist>],
    ws: &mut DijkstraScratch,
    run: &mut WeightedRun,
) {
    for (idx, &w) in label_ranks[r as usize].iter().enumerate() {
        ws.temp[w as usize] = label_dists[r as usize][idx] as u64;
    }
    ws.heap.clear();
    ws.touched.clear();
    ws.tentative[r as usize] = 0;
    ws.touched.push(r);
    ws.heap.push(Reverse((0, r)));

    while let Some(Reverse((d, u))) = ws.heap.pop() {
        if d > ws.tentative[u as usize] {
            continue; // stale heap entry
        }
        run.visited += 1;

        let mut prune = false;
        let lr = &label_ranks[u as usize];
        let ld = &label_dists[u as usize];
        for (idx, &w) in lr.iter().enumerate() {
            let tw = ws.temp[w as usize];
            if tw != INF_U64 && tw + ld[idx] as u64 <= d {
                prune = true;
                break;
            }
        }
        if prune {
            run.pruned += 1;
            continue;
        }
        run.entries.push((u, d));

        for (w, wt) in h.neighbors(u) {
            let nd = d + wt as u64;
            if nd < ws.tentative[w as usize] {
                if ws.tentative[w as usize] == INF_U64 {
                    ws.touched.push(w);
                }
                ws.tentative[w as usize] = nd;
                ws.heap.push(Reverse((nd, w)));
            }
        }
    }
    for &v in &ws.touched {
        ws.tentative[v as usize] = INF_U64;
    }
    for &w in label_ranks[r as usize].iter() {
        ws.temp[w as usize] = INF_U64;
    }
}

/// An exact distance index over a positively-weighted undirected graph.
///
/// Generic over its [`LabelStorage`] backend (`u32` distances), like
/// [`crate::PllIndex`]: the default owns its arenas,
/// [`WeightedPllIndexView`] runs the same merge-join zero-copy over a v2
/// index buffer.
#[derive(Clone, Debug)]
pub struct WeightedPllIndex<O = Vec<Vertex>, S = OwnedLabels<WDist>> {
    order: O,
    inv: O,
    labels: S,
    stats: ConstructionStats,
}

/// Zero-copy [`WeightedPllIndex`] over a v2 index buffer.
pub type WeightedPllIndexView = WeightedPllIndex<SectionSlice<u32>, ViewLabels<WDist>>;

impl<O, S> WeightedPllIndex<O, S>
where
    O: AsRef<[u32]>,
    S: LabelStorage<Dist = WDist>,
{
    /// Assembles an index from any backend (inputs pre-validated).
    pub(crate) fn assemble(order: O, inv: O, labels: S, stats: ConstructionStats) -> Self {
        WeightedPllIndex {
            order,
            inv,
            labels,
            stats,
        }
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.order.as_ref().len()
    }

    #[inline]
    fn label(&self, v: Rank) -> (&[Rank], &[WDist]) {
        let offsets = self.labels.offsets();
        let s = offsets[v as usize] as usize;
        let e = offsets[v as usize + 1] as usize;
        (&self.labels.ranks()[s..e], &self.labels.dists()[s..e])
    }

    /// Exact weighted distance between `u` and `v`; `None` when
    /// disconnected.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn distance(&self, u: Vertex, v: Vertex) -> Option<u64> {
        assert!(
            (u as usize) < self.num_vertices(),
            "vertex {u} out of range"
        );
        assert!(
            (v as usize) < self.num_vertices(),
            "vertex {v} out of range"
        );
        if u == v {
            return Some(0);
        }
        let (ar, ad) = self.label(self.inv.as_ref()[u as usize]);
        let (br, bd) = self.label(self.inv.as_ref()[v as usize]);
        let best = crate::label::merge_query_weighted(ar, ad, br, bd);
        (best != u64::MAX).then_some(best)
    }

    /// Hints the CPU to pull both endpoints' label slices toward cache
    /// ahead of a [`WeightedPllIndex::distance`] call for the same
    /// pair. Advisory: out-of-range vertices are ignored.
    pub fn prefetch_query(&self, u: Vertex, v: Vertex) {
        let n = self.num_vertices();
        for x in [u, v] {
            if (x as usize) < n {
                let (r, d) = self.label(self.inv.as_ref()[x as usize]);
                crate::kernel::prefetch_read(r);
                crate::kernel::prefetch_read(d);
            }
        }
    }

    /// Checked variant of [`WeightedPllIndex::distance`].
    pub fn try_distance(&self, u: Vertex, v: Vertex) -> Result<Option<u64>> {
        let n = self.num_vertices();
        for x in [u, v] {
            if x as usize >= n {
                return Err(PllError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: n,
                });
            }
        }
        Ok(self.distance(u, v))
    }

    /// Average label entries per vertex.
    pub fn avg_label_size(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            (self.labels.ranks().len() - self.num_vertices()) as f64 / self.num_vertices() as f64
        }
    }

    /// Construction statistics.
    pub fn stats(&self) -> &ConstructionStats {
        &self.stats
    }

    /// Total index bytes.
    pub fn memory_bytes(&self) -> usize {
        self.labels.memory_bytes() + self.order.as_ref().len() * 8
    }
}

impl WeightedPllIndex {
    /// Raw parts for serialisation:
    /// `(order, inv, offsets, ranks, dists)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn as_raw(&self) -> (&[Vertex], &[Rank], &[u32], &[Rank], &[WDist]) {
        (
            &self.order,
            &self.inv,
            self.labels.offsets(),
            self.labels.ranks(),
            self.labels.dists(),
        )
    }

    /// Reassembles from raw parts (deserialisation; inputs pre-validated).
    pub(crate) fn from_raw(
        order: Vec<Vertex>,
        inv: Vec<Rank>,
        offsets: Vec<u32>,
        ranks: Vec<Rank>,
        dists: Vec<WDist>,
    ) -> Self {
        WeightedPllIndex {
            order,
            inv,
            labels: OwnedLabels {
                offsets,
                ranks,
                dists,
                parents: None,
            },
            stats: ConstructionStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::traversal::dijkstra;
    use pll_graph::{gen, CsrGraph};

    fn random_weighted(n: usize, m: usize, max_w: u32, seed: u64) -> WeightedGraph {
        let g = gen::erdos_renyi_gnm(n, m, seed).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xABCD);
        let edges: Vec<(Vertex, Vertex, u32)> = g
            .edges()
            .map(|(u, v)| (u, v, rng.next_below(max_w as u64) as u32 + 1))
            .collect();
        WeightedGraph::from_edges(n, &edges).unwrap()
    }

    fn check_exact(g: &WeightedGraph, builder: &WeightedIndexBuilder) {
        let idx = builder.build(g).unwrap();
        let n = g.num_vertices() as Vertex;
        for s in 0..n {
            let d = dijkstra::distances(g, s);
            for t in 0..n {
                let expect = (d[t as usize] != INF_U64).then_some(d[t as usize]);
                assert_eq!(idx.distance(s, t), expect, "pair ({s}, {t})");
            }
        }
    }

    #[test]
    fn exact_on_weighted_triangle() {
        let g = WeightedGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 5)]).unwrap();
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        assert_eq!(idx.distance(0, 2), Some(2)); // via vertex 1, not the direct edge
        check_exact(&g, &WeightedIndexBuilder::new());
    }

    #[test]
    fn exact_on_random_weighted_graphs() {
        for seed in [1, 5, 9] {
            let g = random_weighted(50, 150, 20, seed);
            check_exact(&g, &WeightedIndexBuilder::new());
            check_exact(
                &g,
                &WeightedIndexBuilder::new()
                    .ordering(OrderingStrategy::Random)
                    .seed(seed),
            );
        }
    }

    #[test]
    fn parallel_equals_sequential_weighted() {
        for seed in [2u64, 6, 13] {
            let g = random_weighted(120, 360, 16, seed);
            for builder in [
                WeightedIndexBuilder::new(),
                WeightedIndexBuilder::new()
                    .ordering(OrderingStrategy::Random)
                    .seed(seed),
            ] {
                let seq = builder.clone().threads(1).build(&g).unwrap();
                for k in [2usize, 3, 4, 8] {
                    let par = builder.clone().threads(k).build(&g).unwrap();
                    assert_eq!(
                        seq.as_raw(),
                        par.as_raw(),
                        "weighted label arena diverged at threads={k}, seed={seed}"
                    );
                    assert_eq!(par.stats().threads, k);
                    assert!(par.stats().parallel_batches > 0);
                    assert_eq!(par.stats().total_labeled, seq.stats().total_labeled);
                }
            }
        }
    }

    #[test]
    fn parallel_weighted_is_exact() {
        let g = random_weighted(60, 180, 12, 3);
        check_exact(&g, &WeightedIndexBuilder::new().threads(4));
    }

    #[test]
    fn parallel_overflow_detected_like_sequential() {
        let g =
            WeightedGraph::from_edges(3, &[(0, 1, u32::MAX - 1), (1, 2, u32::MAX - 1)]).unwrap();
        let err = WeightedIndexBuilder::new()
            .ordering(OrderingStrategy::Custom(vec![0, 1, 2]))
            .threads(4)
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PllError::WeightedDistanceOverflow));
    }

    #[test]
    fn unit_weights_match_unweighted_semantics() {
        let base = gen::barabasi_albert(80, 2, 4).unwrap();
        let g = WeightedGraph::from_unweighted(&base);
        check_exact(&g, &WeightedIndexBuilder::new());
    }

    #[test]
    fn disconnected_weighted() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 3), (2, 3, 4)]).unwrap();
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        assert_eq!(idx.distance(0, 3), None);
        assert_eq!(idx.distance(2, 3), Some(4));
    }

    #[test]
    fn large_weights_handled_via_u64_accumulation() {
        let g =
            WeightedGraph::from_edges(3, &[(0, 1, u32::MAX - 1), (1, 2, u32::MAX - 1)]).unwrap();
        // Degree order roots the middle vertex first, so every label stays
        // within u32 and the (u64) query sums correctly.
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        assert_eq!(idx.distance(0, 2), Some(2 * (u32::MAX as u64 - 1)));

        // A custom order rooted at an endpoint must *label* vertex 2 at a
        // distance exceeding the u32 representation: that is an error, not a
        // silent wrap.
        let err = WeightedIndexBuilder::new()
            .ordering(OrderingStrategy::Custom(vec![0, 1, 2]))
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PllError::WeightedDistanceOverflow));
    }

    #[test]
    fn closeness_rejected_and_custom_validated() {
        let g = random_weighted(10, 20, 5, 2);
        assert!(matches!(
            WeightedIndexBuilder::new()
                .ordering(OrderingStrategy::Closeness { samples: 2 })
                .build(&g),
            Err(PllError::IncompatibleOptions { .. })
        ));
        assert!(matches!(
            WeightedIndexBuilder::new()
                .ordering(OrderingStrategy::Custom(vec![0, 0, 1]))
                .build(&g),
            Err(PllError::InvalidOrder { .. })
        ));
    }

    #[test]
    fn try_distance_and_stats() {
        let g = random_weighted(30, 60, 10, 7);
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        assert!(idx.try_distance(0, 29).is_ok());
        assert!(matches!(
            idx.try_distance(0, 31),
            Err(PllError::VertexOutOfRange { .. })
        ));
        assert!(idx.avg_label_size() > 0.0);
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.stats().pruned_roots, 30);
    }

    #[test]
    fn high_diameter_graph_is_fine_weighted() {
        // The u8 limit of the unweighted index does not apply here.
        let base = gen::path(1000).unwrap();
        let g = WeightedGraph::from_unweighted(&base);
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        assert_eq!(idx.distance(0, 999), Some(999));
    }

    #[test]
    fn empty_weighted_graph() {
        let g = WeightedGraph::from_unweighted(&CsrGraph::empty(0));
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        assert_eq!(idx.num_vertices(), 0);
    }
}
