//! Hand-rolled fault injection ("failpoints") for crash testing.
//!
//! The crash-recovery harness (`scripts/crash_smoke.sh`) needs to kill the
//! server at precise points in the durability pipeline — after a WAL append,
//! just before an epoch publishes, between a WAL reset and the snapshot
//! rename. No external failpoint crate is available (the registry is
//! unreachable from this build environment), so this is a small cfg-gated
//! registry of named sites.
//!
//! Without the `failpoints` cargo feature, [`point`] compiles to an empty
//! inline function — zero cost in production builds. With the feature, each
//! site consults a process-wide registry populated from the
//! `PLL_FAILPOINTS` environment variable (on first use) or programmatically
//! via `cfg` in tests.
//!
//! # Specification grammar
//!
//! `PLL_FAILPOINTS="site=action[;site2=action2]"` (`,` also separates).
//! An action is `[K*]kind` where the optional `K*` arms the site on its
//! K-th hit (so earlier hits pass through), and `kind` is one of:
//!
//! * `off` — count hits, do nothing (lets tests assert a site was crossed);
//! * `panic` — panic with a recognisable message;
//! * `abort` — `std::process::abort()`: SIGABRT with no destructors or
//!   atexit handlers, the closest in-process stand-in for `kill -9` at
//!   exactly the injection site;
//! * `exit(code)` — `std::process::exit(code)`.
//!
//! Example: `PLL_FAILPOINTS="wal.after_append=5*abort"` crashes the process
//! the fifth time an UPDATE batch is journaled.

/// Triggers the failpoint `name` if it is armed. Without the `failpoints`
/// feature this is an empty inline no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn point(_name: &str) {}

/// Triggers the failpoint `name` if it is armed. Without the `failpoints`
/// feature this is an empty inline no-op.
#[cfg(feature = "failpoints")]
pub fn point(name: &str) {
    imp::point(name);
}

#[cfg(feature = "failpoints")]
pub use imp::{armed, cfg, clear, hits, remove};

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Action {
        Off,
        Panic,
        Abort,
        Exit(i32),
    }

    struct Site {
        action: Action,
        /// Hits to pass through before the action fires (the `K*` prefix
        /// arms the site on hit number K, i.e. after K-1 pass-throughs).
        pass_through: u64,
        hits: u64,
    }

    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();

    fn registry() -> MutexGuard<'static, HashMap<String, Site>> {
        REGISTRY
            .get_or_init(|| {
                let mut map = HashMap::new();
                if let Ok(spec) = std::env::var("PLL_FAILPOINTS") {
                    for part in spec.split([';', ',']) {
                        let part = part.trim();
                        if part.is_empty() {
                            continue;
                        }
                        match part.split_once('=') {
                            Some((name, action)) => match parse_action(action.trim()) {
                                Ok(site) => {
                                    map.insert(name.trim().to_string(), site);
                                }
                                Err(why) => {
                                    eprintln!("PLL_FAILPOINTS: ignoring {part:?}: {why}");
                                }
                            },
                            None => eprintln!("PLL_FAILPOINTS: ignoring {part:?}: missing '='"),
                        }
                    }
                }
                Mutex::new(map)
            })
            .lock()
            // The lock is never held across a panic (actions fire after the
            // guard drops), but recover anyway: the map stays consistent.
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn parse_action(spec: &str) -> Result<Site, String> {
        let (pass_through, kind) = match spec.split_once('*') {
            Some((k, rest)) => {
                let k: u64 = k
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad hit count {k:?}"))?;
                if k == 0 {
                    return Err("hit count must be >= 1".into());
                }
                (k - 1, rest.trim())
            }
            None => (0, spec),
        };
        let action = if kind == "off" {
            Action::Off
        } else if kind == "panic" {
            Action::Panic
        } else if kind == "abort" {
            Action::Abort
        } else if kind == "exit" {
            Action::Exit(1)
        } else if let Some(code) = kind
            .strip_prefix("exit(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            Action::Exit(
                code.trim()
                    .parse()
                    .map_err(|_| format!("bad exit code {code:?}"))?,
            )
        } else {
            return Err(format!("unknown action {kind:?}"));
        };
        Ok(Site {
            action,
            pass_through,
            hits: 0,
        })
    }

    pub(super) fn point(name: &str) {
        let action = {
            let mut map = registry();
            let Some(site) = map.get_mut(name) else {
                return;
            };
            site.hits += 1;
            if site.hits <= site.pass_through {
                return;
            }
            site.action.clone()
            // Guard drops here so the action never fires while holding the
            // registry lock.
        };
        match action {
            Action::Off => {}
            Action::Panic => panic!("failpoint {name} triggered"),
            Action::Abort => std::process::abort(),
            Action::Exit(code) => std::process::exit(code),
        }
    }

    /// Programmatically arms `name` with `action` (same grammar as the
    /// `PLL_FAILPOINTS` environment variable), resetting its hit counter.
    pub fn cfg(name: &str, action: &str) -> Result<(), String> {
        let site = parse_action(action)?;
        registry().insert(name.to_string(), site);
        Ok(())
    }

    /// Disarms `name`.
    pub fn remove(name: &str) {
        registry().remove(name);
    }

    /// Disarms every site.
    pub fn clear() {
        registry().clear();
    }

    /// How many times `name` has been hit since it was armed (0 if it was
    /// never armed; unarmed sites are not counted).
    pub fn hits(name: &str) -> u64 {
        registry().get(name).map_or(0, |site| site.hits)
    }

    /// Whether `name` is currently armed (configured in the registry).
    /// The server's flight recorder uses this to log an armed site's
    /// crossing *before* triggering it — an `abort` action leaves no
    /// other trace of which site fired.
    pub fn armed(name: &str) -> bool {
        registry().contains_key(name)
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_sites_are_noops() {
        point("tests.never_armed");
        assert_eq!(hits("tests.never_armed"), 0);
    }

    #[test]
    fn off_counts_hits() {
        cfg("tests.off_site", "off").unwrap();
        point("tests.off_site");
        point("tests.off_site");
        assert_eq!(hits("tests.off_site"), 2);
        remove("tests.off_site");
        point("tests.off_site");
        assert_eq!(hits("tests.off_site"), 0);
    }

    #[test]
    fn nth_hit_panics() {
        cfg("tests.third_hit", "3*panic").unwrap();
        point("tests.third_hit");
        point("tests.third_hit");
        let caught = std::panic::catch_unwind(|| point("tests.third_hit"));
        let message = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(message.contains("failpoint tests.third_hit"));
        // Once armed past its threshold, every later hit fires too.
        assert!(std::panic::catch_unwind(|| point("tests.third_hit")).is_err());
        remove("tests.third_hit");
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(cfg("tests.bad", "explode").is_err());
        assert!(cfg("tests.bad", "0*panic").is_err());
        assert!(cfg("tests.bad", "x*panic").is_err());
        assert!(cfg("tests.bad", "exit(notanumber)").is_err());
        assert!(cfg("tests.bad", "exit(7)").is_ok());
        remove("tests.bad");
    }
}
