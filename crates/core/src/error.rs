//! Error type for index construction, queries and (de)serialisation.

use std::fmt;

/// Errors produced by the pruned landmark labeling crate.
#[derive(Debug)]
#[non_exhaustive]
pub enum PllError {
    /// A finite shortest-path distance exceeded the 8-bit representation
    /// (254). The paper stores unweighted distances in 8 bits because
    /// complex networks are small-world (§4.5); high-diameter graphs should
    /// use the weighted (`u32`) index instead.
    DiameterTooLarge {
        /// The rank-space root whose BFS overflowed.
        root_rank: u32,
    },
    /// A weighted distance exceeded `u32::MAX - 1`.
    WeightedDistanceOverflow,
    /// An index structure outgrew its 32-bit arena representation (e.g.
    /// more than `u32::MAX` label-arena entries, sentinels included).
    /// Previously these accumulations wrapped silently and corrupted the
    /// offsets; now they surface as a typed error.
    TooLarge {
        /// Human-readable description of the exceeded quantity.
        what: &'static str,
    },
    /// A query endpoint was out of range.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: u32,
        /// Vertex count of the indexed graph.
        num_vertices: usize,
    },
    /// A user-supplied custom order was not a permutation of `0..n`.
    InvalidOrder {
        /// Description of the problem.
        message: String,
    },
    /// Incompatible builder options (e.g. parent pointers together with
    /// bit-parallel roots; see `IndexBuilder::store_parents`).
    IncompatibleOptions {
        /// Description of the conflict.
        message: String,
    },
    /// Path reconstruction requested on an index built without parents.
    ParentsNotStored,
    /// The operation is not supported for this index family or input
    /// (e.g. dynamic updates on a directed index, or a graph that does
    /// not match the index it is paired with).
    Unsupported {
        /// Description of what is unsupported and why.
        message: String,
    },
    /// Construction aborted because the label budget configured with
    /// `IndexBuilder::abort_if_avg_label_exceeds` was exceeded (used by the
    /// Table 5 harness to report DNF for the Random ordering on graphs where
    /// it explodes).
    LabelBudgetExceeded {
        /// The configured average-label-size budget.
        budget: f64,
    },
    /// Construction aborted because it exceeded the wall-clock budget
    /// configured with `IndexBuilder::abort_after_seconds` (the harness's
    /// "did not finish" outcome, mirroring the paper's DNF entries).
    TimeBudgetExceeded {
        /// The configured budget in seconds.
        seconds: f64,
    },
    /// Underlying graph error.
    Graph(pll_graph::GraphError),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A serialised index failed validation (bad magic, version, checksum
    /// or structure).
    Format {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for PllError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PllError::DiameterTooLarge { root_rank } => write!(
                f,
                "BFS from rank {root_rank} reached distance > 254; 8-bit distances overflowed \
                 (use the weighted index for high-diameter graphs)"
            ),
            PllError::WeightedDistanceOverflow => {
                write!(f, "weighted distance exceeded the u32 label representation")
            }
            PllError::TooLarge { what } => {
                write!(f, "{what} exceeds the 32-bit arena representation")
            }
            PllError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for index over {num_vertices} vertices"
            ),
            PllError::InvalidOrder { message } => write!(f, "invalid vertex order: {message}"),
            PllError::IncompatibleOptions { message } => {
                write!(f, "incompatible builder options: {message}")
            }
            PllError::ParentsNotStored => write!(
                f,
                "path reconstruction requires an index built with store_parents(true)"
            ),
            PllError::Unsupported { message } => write!(f, "unsupported operation: {message}"),
            PllError::LabelBudgetExceeded { budget } => write!(
                f,
                "construction aborted: average label size exceeded the budget of {budget}"
            ),
            PllError::TimeBudgetExceeded { seconds } => write!(
                f,
                "construction aborted: wall-clock budget of {seconds} s exceeded (DNF)"
            ),
            PllError::Graph(e) => write!(f, "graph error: {e}"),
            PllError::Io(e) => write!(f, "I/O error: {e}"),
            PllError::Format { message } => write!(f, "index format error: {message}"),
        }
    }
}

impl std::error::Error for PllError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PllError::Graph(e) => Some(e),
            PllError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pll_graph::GraphError> for PllError {
    fn from(e: pll_graph::GraphError) -> Self {
        PllError::Graph(e)
    }
}

impl From<std::io::Error> for PllError {
    fn from(e: std::io::Error) -> Self {
        PllError::Io(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PllError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PllError::DiameterTooLarge { root_rank: 3 }
            .to_string()
            .contains("254"));
        assert!(PllError::ParentsNotStored
            .to_string()
            .contains("store_parents"));
        assert!(PllError::TooLarge {
            what: "label arena entries"
        }
        .to_string()
        .contains("label arena entries"));
        let e = PllError::VertexOutOfRange {
            vertex: 10,
            num_vertices: 5,
        };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn conversions() {
        let ge = pll_graph::GraphError::TooLarge { what: "x" };
        assert!(matches!(PllError::from(ge), PllError::Graph(_)));
        let io = std::io::Error::other("x");
        assert!(matches!(PllError::from(io), PllError::Io(_)));
    }
}
