//! Weighted *and* directed pruned landmark labeling — the combined §6
//! variant ("directed and/or weighted graphs").
//!
//! Combines the two mechanics: IN/OUT label sides like the directed
//! variant, and pruned *Dijkstra* searches with 32-bit label distances
//! like the weighted variant. Per root, a forward pruned Dijkstra over
//! out-arcs computes `d(r, u)` and fills `L_IN(u)`; a backward pruned
//! Dijkstra over in-arcs computes `d(u, r)` and fills `L_OUT(u)`.
//!
//! [`WeightedDirectedIndexBuilder::threads`] selects the batch-parallel
//! path, combining the directed scheme (each worker runs a root's
//! forward/backward relaxed Dijkstra pair; IN entries commit before OUT
//! entries) with the weighted scheme (thread-local binary heap, 64-bit
//! lazily-reset `dist` scratch, commit-time `u32` overflow check). The
//! result is byte-identical to the sequential build; see [`crate::par`].

use crate::error::{PllError, Result};
use crate::order::OrderingStrategy;
use crate::par::{
    commit_entries, resolve_threads, run_batched, DijkstraScratch, PrunedSearch, RootCommit,
};
use crate::stats::{ConstructionStats, RootStats};
use crate::storage::{LabelStorage, OwnedLabels, SectionSlice, ViewLabels};
use crate::types::{Rank, Vertex, WDist};
use crate::weighted::check_label_overflow;
use crate::weighted::flatten_weighted;
use pll_graph::reorder::inverse_permutation;
use pll_graph::wdigraph::WeightedDigraph;
use pll_graph::{Xoshiro256pp, INF_U64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;

/// Configures construction of a [`WeightedDirectedPllIndex`].
#[derive(Clone, Debug)]
pub struct WeightedDirectedIndexBuilder {
    ordering: OrderingStrategy,
    seed: u64,
    threads: usize,
}

impl Default for WeightedDirectedIndexBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl WeightedDirectedIndexBuilder {
    /// Default configuration: Degree ordering (total degree, in + out).
    pub fn new() -> Self {
        WeightedDirectedIndexBuilder {
            ordering: OrderingStrategy::Degree,
            seed: 0x5EED_1A5E,
            threads: 1,
        }
    }

    /// Sets the number of worker threads for batch-parallel construction
    /// (see [`crate::par`]): `1` (default) is the sequential path, `k > 1`
    /// runs the forward/backward pruned Dijkstra pairs batch-parallel on
    /// `k` threads with byte-identical output (including
    /// [`PllError::WeightedDistanceOverflow`] behaviour), and `0`
    /// auto-detects one thread per CPU. The Degree ordering and the
    /// label flatten ride the same knob, output-identically at any
    /// thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the ordering strategy (`Degree`, `Random` or `Custom`).
    pub fn ordering(mut self, strategy: OrderingStrategy) -> Self {
        self.ordering = strategy;
        self
    }

    /// Seed for the Random ordering.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn compute_order(&self, g: &WeightedDigraph, threads: usize) -> Result<Vec<Vertex>> {
        let n = g.num_vertices();
        match &self.ordering {
            OrderingStrategy::Degree => Ok(crate::order::order_by_key_desc(n, threads, |v| {
                (g.out_degree(v) + g.in_degree(v)) as u64
            })),
            OrderingStrategy::Random => {
                let mut order: Vec<Vertex> = (0..n as Vertex).collect();
                Xoshiro256pp::seed_from_u64(self.seed).shuffle(&mut order);
                Ok(order)
            }
            OrderingStrategy::Custom(order) => {
                if order.len() != n {
                    return Err(PllError::InvalidOrder {
                        message: format!("order has {} entries for {} vertices", order.len(), n),
                    });
                }
                let mut seen = vec![false; n];
                for &v in order {
                    if (v as usize) >= n || seen[v as usize] {
                        return Err(PllError::InvalidOrder {
                            message: format!("order entry {v} repeated or out of range"),
                        });
                    }
                    seen[v as usize] = true;
                }
                Ok(order.clone())
            }
            other => Err(PllError::IncompatibleOptions {
                message: format!(
                    "{} ordering is not supported for weighted directed indices",
                    other.name()
                ),
            }),
        }
    }

    /// Builds the index with two pruned Dijkstra searches per root.
    pub fn build(&self, g: &WeightedDigraph) -> Result<WeightedDirectedPllIndex> {
        let n = g.num_vertices();
        let threads = resolve_threads(self.threads);
        let t0 = Instant::now();
        let order = self.compute_order(g, threads)?;
        let order_seconds = t0.elapsed().as_secs_f64();
        let tr = Instant::now();
        let inv = inverse_permutation(&order);
        // Relabel arcs into rank space (sequential: the arc translation
        // streams through `from_edges`, which owns the CSR scatter).
        let rank_arcs: Vec<(Vertex, Vertex, u32)> = g
            .arcs()
            .map(|(u, v, w)| (inv[u as usize], inv[v as usize], w))
            .collect();
        let h = WeightedDigraph::from_edges(n, &rank_arcs)?;
        let relabel_seconds = tr.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let mut stats = ConstructionStats {
            order_seconds,
            relabel_seconds,
            threads,
            ..Default::default()
        };
        if threads > 1 {
            let mut state = WeightedDirectedState {
                in_ranks: vec![Vec::new(); n],
                in_dists: vec![Vec::new(); n],
                out_ranks: vec![Vec::new(); n],
                out_dists: vec![Vec::new(); n],
            };
            let roots: Vec<Rank> = (0..n as Rank).collect();
            let search = WeightedDirectedSearch { h: &h };
            run_batched(
                &search,
                &mut state,
                &roots,
                threads,
                &mut stats,
                None,
                |_, _, _| Ok(()),
            )?;
            stats.pruned_seconds = t1.elapsed().as_secs_f64();
            let tf = Instant::now();
            let (in_offsets, in_flat_ranks, in_flat_dists) =
                flatten_weighted(&state.in_ranks, &state.in_dists, threads)?;
            let (out_offsets, out_flat_ranks, out_flat_dists) =
                flatten_weighted(&state.out_ranks, &state.out_dists, threads)?;
            stats.flatten_seconds = tf.elapsed().as_secs_f64();
            return Ok(WeightedDirectedPllIndex {
                order,
                inv,
                side_in: OwnedLabels {
                    offsets: in_offsets,
                    ranks: in_flat_ranks,
                    dists: in_flat_dists,
                    parents: None,
                },
                side_out: OwnedLabels {
                    offsets: out_offsets,
                    ranks: out_flat_ranks,
                    dists: out_flat_dists,
                    parents: None,
                },
                stats,
            });
        }

        let mut in_ranks: Vec<Vec<Rank>> = vec![Vec::new(); n];
        let mut in_dists: Vec<Vec<WDist>> = vec![Vec::new(); n];
        let mut out_ranks: Vec<Vec<Rank>> = vec![Vec::new(); n];
        let mut out_dists: Vec<Vec<WDist>> = vec![Vec::new(); n];

        let mut tentative: Vec<u64> = vec![INF_U64; n];
        let mut temp: Vec<u64> = vec![INF_U64; n];
        let mut touched: Vec<Rank> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(u64, Rank)>> = BinaryHeap::new();

        // One pruned Dijkstra in a fixed direction; `forward = true` fills
        // L_IN from d(r, ·), pruning against L_OUT(r) ∩ L_IN(u).
        #[allow(clippy::too_many_arguments)]
        fn pruned_dijkstra(
            h: &WeightedDigraph,
            r: Rank,
            forward: bool,
            root_side_ranks: &[Vec<Rank>],
            root_side_dists: &[Vec<WDist>],
            fill_ranks: &mut [Vec<Rank>],
            fill_dists: &mut [Vec<WDist>],
            tentative: &mut [u64],
            temp: &mut [u64],
            touched: &mut Vec<Rank>,
            heap: &mut BinaryHeap<Reverse<(u64, Rank)>>,
            stats: &mut ConstructionStats,
        ) -> Result<()> {
            for (idx, &w) in root_side_ranks[r as usize].iter().enumerate() {
                temp[w as usize] = root_side_dists[r as usize][idx] as u64;
            }
            heap.clear();
            touched.clear();
            tentative[r as usize] = 0;
            touched.push(r);
            heap.push(Reverse((0, r)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > tentative[u as usize] {
                    continue; // stale entry
                }
                stats.total_visited += 1;
                let mut prune = false;
                let lr = &fill_ranks[u as usize];
                let ld = &fill_dists[u as usize];
                for (idx, &w) in lr.iter().enumerate() {
                    let tw = temp[w as usize];
                    if tw != INF_U64 && tw + ld[idx] as u64 <= d {
                        prune = true;
                        break;
                    }
                }
                if prune {
                    stats.total_pruned += 1;
                    continue;
                }
                if d > WDist::MAX as u64 - 1 {
                    return Err(PllError::WeightedDistanceOverflow);
                }
                fill_ranks[u as usize].push(r);
                fill_dists[u as usize].push(d as WDist);
                stats.total_labeled += 1;

                let relax = |heap: &mut BinaryHeap<Reverse<(u64, Rank)>>,
                             tentative: &mut [u64],
                             touched: &mut Vec<Rank>,
                             w: Rank,
                             wt: u32| {
                    let nd = d + wt as u64;
                    if nd < tentative[w as usize] {
                        if tentative[w as usize] == INF_U64 {
                            touched.push(w);
                        }
                        tentative[w as usize] = nd;
                        heap.push(Reverse((nd, w)));
                    }
                };
                if forward {
                    for (w, wt) in h.out_neighbors(u) {
                        relax(heap, tentative, touched, w, wt);
                    }
                } else {
                    for (w, wt) in h.in_neighbors(u) {
                        relax(heap, tentative, touched, w, wt);
                    }
                }
            }
            for &v in touched.iter() {
                tentative[v as usize] = INF_U64;
            }
            for &w in root_side_ranks[r as usize].iter() {
                temp[w as usize] = INF_U64;
            }
            Ok(())
        }

        for r in 0..n as Rank {
            pruned_dijkstra(
                &h,
                r,
                true,
                &out_ranks,
                &out_dists,
                &mut in_ranks,
                &mut in_dists,
                &mut tentative,
                &mut temp,
                &mut touched,
                &mut heap,
                &mut stats,
            )?;
            pruned_dijkstra(
                &h,
                r,
                false,
                &in_ranks,
                &in_dists,
                &mut out_ranks,
                &mut out_dists,
                &mut tentative,
                &mut temp,
                &mut touched,
                &mut heap,
                &mut stats,
            )?;
            stats.pruned_roots += 1;
        }
        stats.pruned_seconds = t1.elapsed().as_secs_f64();

        let tf = Instant::now();
        let (in_offsets, in_flat_ranks, in_flat_dists) = flatten_weighted(&in_ranks, &in_dists, 1)?;
        let (out_offsets, out_flat_ranks, out_flat_dists) =
            flatten_weighted(&out_ranks, &out_dists, 1)?;
        stats.flatten_seconds = tf.elapsed().as_secs_f64();

        Ok(WeightedDirectedPllIndex {
            order,
            inv,
            side_in: OwnedLabels {
                offsets: in_offsets,
                ranks: in_flat_ranks,
                dists: in_flat_dists,
                parents: None,
            },
            side_out: OwnedLabels {
                offsets: out_offsets,
                ranks: out_flat_ranks,
                dists: out_flat_dists,
                parents: None,
            },
            stats,
        })
    }
}

/// Committed two-sided label state of the batch-parallel weighted
/// directed build.
struct WeightedDirectedState {
    in_ranks: Vec<Vec<Rank>>,
    in_dists: Vec<Vec<WDist>>,
    out_ranks: Vec<Vec<Rank>>,
    out_dists: Vec<Vec<WDist>>,
}

/// Buffered output of one root's forward/backward relaxed Dijkstra pair
/// (distances still in 64-bit scratch space until the commit-time `u32`
/// check).
struct WeightedDirectedRun {
    /// Forward entries `(u, d(r → u))` destined for `L_IN(u)`.
    in_entries: Vec<(Rank, u64)>,
    /// Backward entries `(u, d(u → r))` destined for `L_OUT(u)`.
    out_entries: Vec<(Rank, u64)>,
    visited: u32,
    pruned: u32,
}

/// The weighted directed [`PrunedSearch`]: per root, a forward relaxed
/// pruned Dijkstra over out-arcs followed by the mirrored backward
/// Dijkstra, each with settle-time pruning against committed labels.
struct WeightedDirectedSearch<'g> {
    h: &'g WeightedDigraph,
}

impl PrunedSearch for WeightedDirectedSearch<'_> {
    type State = WeightedDirectedState;
    type Scratch = DijkstraScratch;
    type Run = WeightedDirectedRun;

    fn new_scratch(&self) -> DijkstraScratch {
        DijkstraScratch::new(self.h.num_vertices())
    }

    fn search(
        &self,
        state: &WeightedDirectedState,
        r: Rank,
        ws: &mut DijkstraScratch,
    ) -> Result<WeightedDirectedRun> {
        let mut run = WeightedDirectedRun {
            in_entries: Vec::new(),
            out_entries: Vec::new(),
            visited: 0,
            pruned: 0,
        };
        relaxed_directed_dijkstra(
            self.h,
            r,
            true,
            &state.out_ranks,
            &state.out_dists,
            &state.in_ranks,
            &state.in_dists,
            ws,
            &mut run.in_entries,
            &mut run.visited,
            &mut run.pruned,
        );
        relaxed_directed_dijkstra(
            self.h,
            r,
            false,
            &state.in_ranks,
            &state.in_dists,
            &state.out_ranks,
            &state.out_dists,
            ws,
            &mut run.out_entries,
            &mut run.visited,
            &mut run.pruned,
        );
        Ok(run)
    }

    fn commit(
        &self,
        state: &mut WeightedDirectedState,
        batch_first: Rank,
        r: Rank,
        run: WeightedDirectedRun,
    ) -> Result<RootCommit> {
        let mut labeled = 0u32;
        let mut repruned = 0u32;
        // IN entries first, then OUT, matching the sequential
        // forward-then-backward order; overflow is checked on survivors
        // only, which are exactly the sequential build's labeled entries.
        commit_entries(
            &run.in_entries,
            &mut state.in_ranks,
            &mut state.in_dists,
            Some((&state.out_ranks, &state.out_dists)),
            batch_first,
            r,
            check_label_overflow,
            &mut labeled,
            &mut repruned,
        )?;
        commit_entries(
            &run.out_entries,
            &mut state.out_ranks,
            &mut state.out_dists,
            Some((&state.in_ranks, &state.in_dists)),
            batch_first,
            r,
            check_label_overflow,
            &mut labeled,
            &mut repruned,
        )?;
        Ok(RootCommit {
            stats: RootStats {
                rank: r,
                visited: run.visited,
                labeled,
                pruned: run.pruned + repruned,
            },
            repruned,
        })
    }
}

/// One relaxed pruned Dijkstra in a fixed direction, buffering label
/// candidates instead of publishing them. Mirrors the sequential
/// `pruned_dijkstra` (same temp preparation, settle-time prune test and
/// lazy resets), with the `u32` overflow check deferred to commit;
/// `forward = true` explores out-arcs and buffers `L_IN` candidates.
#[allow(clippy::too_many_arguments)]
fn relaxed_directed_dijkstra(
    h: &WeightedDigraph,
    r: Rank,
    forward: bool,
    root_side_ranks: &[Vec<Rank>],
    root_side_dists: &[Vec<WDist>],
    fill_ranks: &[Vec<Rank>],
    fill_dists: &[Vec<WDist>],
    ws: &mut DijkstraScratch,
    entries: &mut Vec<(Rank, u64)>,
    visited: &mut u32,
    pruned: &mut u32,
) {
    for (idx, &w) in root_side_ranks[r as usize].iter().enumerate() {
        ws.temp[w as usize] = root_side_dists[r as usize][idx] as u64;
    }
    ws.heap.clear();
    ws.touched.clear();
    ws.tentative[r as usize] = 0;
    ws.touched.push(r);
    ws.heap.push(Reverse((0, r)));

    while let Some(Reverse((d, u))) = ws.heap.pop() {
        if d > ws.tentative[u as usize] {
            continue; // stale entry
        }
        *visited += 1;
        let mut prune = false;
        let lr = &fill_ranks[u as usize];
        let ld = &fill_dists[u as usize];
        for (idx, &w) in lr.iter().enumerate() {
            let tw = ws.temp[w as usize];
            if tw != INF_U64 && tw + ld[idx] as u64 <= d {
                prune = true;
                break;
            }
        }
        if prune {
            *pruned += 1;
            continue;
        }
        entries.push((u, d));

        let mut relax = |w: Rank, wt: u32| {
            let nd = d + wt as u64;
            if nd < ws.tentative[w as usize] {
                if ws.tentative[w as usize] == INF_U64 {
                    ws.touched.push(w);
                }
                ws.tentative[w as usize] = nd;
                ws.heap.push(Reverse((nd, w)));
            }
        };
        if forward {
            for (w, wt) in h.out_neighbors(u) {
                relax(w, wt);
            }
        } else {
            for (w, wt) in h.in_neighbors(u) {
                relax(w, wt);
            }
        }
    }
    for &v in ws.touched.iter() {
        ws.tentative[v as usize] = INF_U64;
    }
    for &w in root_side_ranks[r as usize].iter() {
        ws.temp[w as usize] = INF_U64;
    }
}

/// Exact distance index over a positively-weighted digraph.
///
/// Generic over the [`crate::storage::LabelStorage`] backend of its two
/// label sides (`u32` distances): the default owns its arenas,
/// [`WeightedDirectedPllIndexView`] runs the same merge-join zero-copy
/// over a v2 index buffer.
#[derive(Clone, Debug)]
pub struct WeightedDirectedPllIndex<O = Vec<Vertex>, S = OwnedLabels<WDist>> {
    order: O,
    inv: O,
    side_in: S,
    side_out: S,
    stats: ConstructionStats,
}

/// Zero-copy [`WeightedDirectedPllIndex`] over a v2 index buffer.
pub type WeightedDirectedPllIndexView =
    WeightedDirectedPllIndex<SectionSlice<u32>, ViewLabels<WDist>>;

impl<O, S> WeightedDirectedPllIndex<O, S>
where
    O: AsRef<[u32]>,
    S: LabelStorage<Dist = WDist>,
{
    /// Assembles an index from any backend (inputs pre-validated).
    pub(crate) fn assemble(
        order: O,
        inv: O,
        side_in: S,
        side_out: S,
        stats: ConstructionStats,
    ) -> Self {
        WeightedDirectedPllIndex {
            order,
            inv,
            side_in,
            side_out,
            stats,
        }
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.order.as_ref().len()
    }

    #[inline]
    fn side_label(side: &S, v: usize) -> (&[Rank], &[WDist]) {
        let offsets = side.offsets();
        let s = offsets[v] as usize;
        let e = offsets[v + 1] as usize;
        (&side.ranks()[s..e], &side.dists()[s..e])
    }

    /// Exact weighted distance from `s` to `t`; `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn distance(&self, s: Vertex, t: Vertex) -> Option<u64> {
        assert!(
            (s as usize) < self.num_vertices(),
            "vertex {s} out of range"
        );
        assert!(
            (t as usize) < self.num_vertices(),
            "vertex {t} out of range"
        );
        if s == t {
            return Some(0);
        }
        let rs = self.inv.as_ref()[s as usize] as usize;
        let rt = self.inv.as_ref()[t as usize] as usize;
        let (ar, ad) = Self::side_label(&self.side_out, rs);
        let (br, bd) = Self::side_label(&self.side_in, rt);
        let best = crate::label::merge_query_weighted(ar, ad, br, bd);
        (best != u64::MAX).then_some(best)
    }

    /// Hints the CPU to pull the OUT label of `s` and the IN label of
    /// `t` toward cache ahead of a
    /// [`WeightedDirectedPllIndex::distance`] call for the same pair.
    /// Advisory: out-of-range vertices are ignored.
    pub fn prefetch_query(&self, s: Vertex, t: Vertex) {
        let n = self.num_vertices();
        if (s as usize) < n {
            let (r, d) = Self::side_label(&self.side_out, self.inv.as_ref()[s as usize] as usize);
            crate::kernel::prefetch_read(r);
            crate::kernel::prefetch_read(d);
        }
        if (t as usize) < n {
            let (r, d) = Self::side_label(&self.side_in, self.inv.as_ref()[t as usize] as usize);
            crate::kernel::prefetch_read(r);
            crate::kernel::prefetch_read(d);
        }
    }

    /// Checked variant of [`WeightedDirectedPllIndex::distance`].
    pub fn try_distance(&self, s: Vertex, t: Vertex) -> Result<Option<u64>> {
        let n = self.num_vertices();
        for x in [s, t] {
            if x as usize >= n {
                return Err(PllError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: n,
                });
            }
        }
        Ok(self.distance(s, t))
    }

    /// Average of (|L_IN| + |L_OUT|) per vertex.
    pub fn avg_label_size(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        ((self.side_in.ranks().len() + self.side_out.ranks().len()) as f64
            - 2.0 * self.num_vertices() as f64)
            / self.num_vertices() as f64
    }

    /// Construction statistics.
    pub fn stats(&self) -> &ConstructionStats {
        &self.stats
    }

    /// Total index bytes.
    pub fn memory_bytes(&self) -> usize {
        self.side_in.memory_bytes() + self.side_out.memory_bytes() + self.order.as_ref().len() * 8
    }
}

impl WeightedDirectedPllIndex {
    /// Raw parts for serialisation: `(order, inv, IN side, OUT side)`
    /// where each side is `(offsets, ranks, dists)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn as_raw(
        &self,
    ) -> (
        &[Vertex],
        &[Rank],
        (&[u32], &[Rank], &[WDist]),
        (&[u32], &[Rank], &[WDist]),
    ) {
        (
            &self.order,
            &self.inv,
            (
                self.side_in.offsets(),
                self.side_in.ranks(),
                self.side_in.dists(),
            ),
            (
                self.side_out.offsets(),
                self.side_out.ranks(),
                self.side_out.dists(),
            ),
        )
    }

    /// Reassembles from raw parts (deserialisation; inputs pre-validated).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_raw(
        order: Vec<Vertex>,
        inv: Vec<Rank>,
        in_offsets: Vec<u32>,
        in_ranks: Vec<Rank>,
        in_dists: Vec<WDist>,
        out_offsets: Vec<u32>,
        out_ranks: Vec<Rank>,
        out_dists: Vec<WDist>,
    ) -> Self {
        WeightedDirectedPllIndex {
            order,
            inv,
            side_in: OwnedLabels {
                offsets: in_offsets,
                ranks: in_ranks,
                dists: in_dists,
                parents: None,
            },
            side_out: OwnedLabels {
                offsets: out_offsets,
                ranks: out_ranks,
                dists: out_dists,
                parents: None,
            },
            stats: ConstructionStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Directed Dijkstra over out-arcs for ground truth.
    fn dijkstra_directed(g: &WeightedDigraph, s: Vertex) -> Vec<u64> {
        let n = g.num_vertices();
        let mut dist = vec![INF_U64; n];
        let mut heap = BinaryHeap::new();
        dist[s as usize] = 0;
        heap.push(Reverse((0u64, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for (w, wt) in g.out_neighbors(u) {
                let nd = d + wt as u64;
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    heap.push(Reverse((nd, w)));
                }
            }
        }
        dist
    }

    fn check_exact(g: &WeightedDigraph, builder: &WeightedDirectedIndexBuilder) {
        let idx = builder.build(g).unwrap();
        let n = g.num_vertices() as Vertex;
        for s in 0..n {
            let d = dijkstra_directed(g, s);
            for t in 0..n {
                let expect = (d[t as usize] != INF_U64).then_some(d[t as usize]);
                assert_eq!(idx.distance(s, t), expect, "pair ({s} -> {t})");
            }
        }
    }

    fn random_weighted_digraph(n: usize, m: usize, max_w: u32, seed: u64) -> WeightedDigraph {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut arcs = std::collections::HashMap::new();
        while arcs.len() < m {
            let u = rng.next_below(n as u64) as Vertex;
            let v = rng.next_below(n as u64) as Vertex;
            if u != v {
                arcs.entry((u, v))
                    .or_insert_with(|| rng.next_below(max_w as u64) as u32 + 1);
            }
        }
        let mut list: Vec<(Vertex, Vertex, u32)> =
            arcs.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        list.sort_unstable();
        WeightedDigraph::from_edges(n, &list).unwrap()
    }

    #[test]
    fn exact_on_weighted_dag() {
        // Heavy direct arc loses to the light two-hop path, directionally.
        let g =
            WeightedDigraph::from_edges(4, &[(0, 1, 1), (1, 3, 1), (0, 3, 5), (3, 2, 2)]).unwrap();
        let idx = WeightedDirectedIndexBuilder::new().build(&g).unwrap();
        assert_eq!(idx.distance(0, 3), Some(2));
        assert_eq!(idx.distance(3, 0), None);
        assert_eq!(idx.distance(0, 2), Some(4));
        check_exact(&g, &WeightedDirectedIndexBuilder::new());
    }

    #[test]
    fn exact_on_random_weighted_digraphs() {
        for seed in [1, 2, 3] {
            let g = random_weighted_digraph(50, 200, 12, seed);
            check_exact(&g, &WeightedDirectedIndexBuilder::new());
            check_exact(
                &g,
                &WeightedDirectedIndexBuilder::new()
                    .ordering(OrderingStrategy::Random)
                    .seed(seed),
            );
        }
    }

    #[test]
    fn parallel_equals_sequential_weighted_directed() {
        for seed in [1u64, 5, 12] {
            let g = random_weighted_digraph(100, 420, 14, seed);
            for builder in [
                WeightedDirectedIndexBuilder::new(),
                WeightedDirectedIndexBuilder::new()
                    .ordering(OrderingStrategy::Random)
                    .seed(seed),
            ] {
                let seq = builder.clone().threads(1).build(&g).unwrap();
                for k in [2usize, 3, 4, 8] {
                    let par = builder.clone().threads(k).build(&g).unwrap();
                    assert_eq!(
                        seq.as_raw(),
                        par.as_raw(),
                        "label arenas diverged at threads={k}, seed={seed}"
                    );
                    assert_eq!(par.stats().threads, k);
                    assert!(par.stats().parallel_batches > 0);
                    assert_eq!(par.stats().total_labeled, seq.stats().total_labeled);
                }
            }
        }
    }

    #[test]
    fn parallel_weighted_directed_is_exact() {
        let g = random_weighted_digraph(60, 240, 9, 4);
        check_exact(&g, &WeightedDirectedIndexBuilder::new().threads(4));
    }

    #[test]
    fn parallel_overflow_detected() {
        let g =
            WeightedDigraph::from_edges(3, &[(0, 1, u32::MAX - 1), (1, 2, u32::MAX - 1)]).unwrap();
        let err = WeightedDirectedIndexBuilder::new()
            .ordering(OrderingStrategy::Custom(vec![0, 1, 2]))
            .threads(4)
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PllError::WeightedDistanceOverflow));
    }

    #[test]
    fn asymmetric_weights_respected() {
        let g = WeightedDigraph::from_edges(2, &[(0, 1, 3), (1, 0, 9)]).unwrap();
        let idx = WeightedDirectedIndexBuilder::new().build(&g).unwrap();
        assert_eq!(idx.distance(0, 1), Some(3));
        assert_eq!(idx.distance(1, 0), Some(9));
    }

    #[test]
    fn unsupported_orderings_rejected() {
        let g = WeightedDigraph::from_edges(2, &[(0, 1, 1)]).unwrap();
        for strategy in [
            OrderingStrategy::Closeness { samples: 4 },
            OrderingStrategy::Degeneracy,
        ] {
            assert!(matches!(
                WeightedDirectedIndexBuilder::new()
                    .ordering(strategy)
                    .build(&g),
                Err(PllError::IncompatibleOptions { .. })
            ));
        }
    }

    #[test]
    fn try_distance_and_stats() {
        let g = random_weighted_digraph(30, 100, 8, 9);
        let idx = WeightedDirectedIndexBuilder::new().build(&g).unwrap();
        assert!(idx.try_distance(0, 29).is_ok());
        assert!(matches!(
            idx.try_distance(0, 30),
            Err(PllError::VertexOutOfRange { .. })
        ));
        assert!(idx.avg_label_size() > 0.0);
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.stats().pruned_roots, 30);
    }

    #[test]
    fn overflow_detected() {
        let g =
            WeightedDigraph::from_edges(3, &[(0, 1, u32::MAX - 1), (1, 2, u32::MAX - 1)]).unwrap();
        let err = WeightedDirectedIndexBuilder::new()
            .ordering(OrderingStrategy::Custom(vec![0, 1, 2]))
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PllError::WeightedDistanceOverflow));
    }
}
