//! Bit-parallel labeling (§5 of the paper).
//!
//! A bit-parallel BFS runs from a root `r` *and* up to 64 of its neighbours
//! `S_r` simultaneously: alongside the ordinary BFS distance `d(r, v)`, two
//! 64-bit masks per vertex record
//!
//! * `S⁻¹_r(v) = { u ∈ S_r | d(u, v) = d(r, v) − 1 }` and
//! * `S⁰_r(v)  = { u ∈ S_r | d(u, v) = d(r, v) }`
//!
//! (Algorithm 3). Because every `u ∈ S_r` is a neighbour of `r`, the
//! distance via `u` differs from `d(s,r) + d(r,t)` by at most 2, and two
//! AND operations recover the exact correction (§5.3) — a 65-source
//! distance oracle in `O(1)` per label pair.

use crate::error::{PllError, Result};
use crate::storage::{BpStorage, OwnedBp, ViewBp};
use crate::types::{Dist, Rank, BP_WIDTH, INF8, INF_QUERY, MAX_DIST};
use pll_graph::CsrGraph;

/// One bit-parallel label entry: distance from the root plus the two masks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BpEntry {
    /// `d(r, v)`, or [`INF8`] if unreachable.
    pub dist: Dist,
    /// Bit `k` set iff the `k`-th vertex of `S_r` is in `S⁻¹_r(v)`
    /// (computed exactly by the level-synchronous DP).
    pub set_minus1: u64,
    /// Bit `k` set iff the `k`-th vertex of `S_r` is in `S⁰_r(v)` — *or*,
    /// occasionally, in `S⁻¹_r(v)`: the S⁰ recurrence of §5.2 propagates
    /// along child edges whose endpoint turns out to be one closer to the
    /// sub-root via another path. The overlap is harmless: `set_minus1` is
    /// exact and the query tests the −2 case first, so results are still
    /// exact upper bounds (see `query`).
    pub set_zero: u64,
}

impl BpEntry {
    const UNREACHED: BpEntry = BpEntry {
        dist: INF8,
        set_minus1: 0,
        set_zero: 0,
    };
}

/// Bit-parallel labels for all vertices: `t` entries per vertex, stored
/// row-major (entry `v * t + i` is vertex `v`'s entry for BP root `i`).
///
/// Generic over its [`BpStorage`] backend: the default is the heap-owned
/// array-of-structs arena the builders fill in place;
/// [`BitParallelLabelsView`] reads the v2 format's structure-of-arrays
/// sections zero-copy. The query kernel is implemented once, on the
/// generic type.
#[derive(Clone, Debug)]
pub struct BitParallelLabels<S = OwnedBp> {
    num_roots: usize,
    num_vertices: usize,
    store: S,
}

/// Zero-copy [`BitParallelLabels`] over a v2 index buffer.
pub type BitParallelLabelsView = BitParallelLabels<ViewBp>;

/// Backends compare equal iff they hold the same roots and entries.
impl<S1: BpStorage, S2: BpStorage> PartialEq<BitParallelLabels<S2>> for BitParallelLabels<S1> {
    fn eq(&self, other: &BitParallelLabels<S2>) -> bool {
        self.num_roots == other.num_roots
            && self.num_vertices == other.num_vertices
            && self.store.roots() == other.store.roots()
            && self.store.entry_count() == other.store.entry_count()
            && (0..self.store.entry_count()).all(|i| self.store.entry(i) == other.store.entry(i))
    }
}

impl<S: BpStorage> Eq for BitParallelLabels<S> {}

impl BitParallelLabels {
    /// Creates empty labels for `n` vertices and `t` roots (all entries
    /// unreached until [`run_root`](Self::run_root) fills them).
    pub(crate) fn new(n: usize, t: usize) -> Self {
        BitParallelLabels {
            num_roots: t,
            num_vertices: n,
            store: OwnedBp {
                entries: vec![BpEntry::UNREACHED; n * t],
                roots: vec![u32::MAX; t],
            },
        }
    }

    /// Reassembles from raw parts (deserialisation).
    pub(crate) fn from_raw(num_vertices: usize, roots: Vec<Rank>, entries: Vec<BpEntry>) -> Self {
        BitParallelLabels {
            num_roots: roots.len(),
            num_vertices,
            store: OwnedBp { entries, roots },
        }
    }

    /// All `t` entries of vertex `v` (owned backend only: the views store
    /// entries as structure-of-arrays and assemble them via
    /// [`BitParallelLabels::entry`]).
    #[inline]
    pub fn entries_of(&self, v: Rank) -> &[BpEntry] {
        &self.store.entries[v as usize * self.num_roots..(v as usize + 1) * self.num_roots]
    }

    /// Runs the bit-parallel BFS of Algorithm 3 from `root` with neighbour
    /// set `sub` (each `(position, vertex)` pair assigns a bit), filling
    /// slot `i` for every vertex. `g` is the rank-relabelled graph.
    ///
    /// # Errors
    ///
    /// [`PllError::DiameterTooLarge`] if a distance would exceed 254.
    pub(crate) fn run_root(
        &mut self,
        g: &CsrGraph,
        i: usize,
        root: Rank,
        sub: &[Rank],
        scratch: &mut BpScratch,
    ) -> Result<()> {
        let t = self.num_roots;
        level_sync_bfs(g, root, sub, scratch)?;
        self.store.roots[i] = root;
        for &v in scratch.visited.iter() {
            self.store.entries[v as usize * t + i] = BpEntry {
                dist: scratch.dist[v as usize],
                set_minus1: scratch.set_minus1[v as usize],
                set_zero: scratch.set_zero[v as usize],
            };
        }
        Ok(())
    }

    /// Writes one root's sparse column (produced by [`bp_bfs_column`] on a
    /// worker thread) into arena slot `i`. Untouched vertices keep their
    /// `UNREACHED` entries.
    pub(crate) fn set_root_column(&mut self, i: usize, root: Rank, column: &[(Rank, BpEntry)]) {
        let t = self.num_roots;
        self.store.roots[i] = root;
        for &(v, e) in column {
            self.store.entries[v as usize * t + i] = e;
        }
    }

    /// Raw views for serialisation.
    pub(crate) fn as_raw(&self) -> (&[Rank], &[BpEntry]) {
        (&self.store.roots, &self.store.entries)
    }
}

impl<S: BpStorage> BitParallelLabels<S> {
    /// Wraps a storage backend (used by the zero-copy v2 opener).
    pub(crate) fn from_store(num_vertices: usize, num_roots: usize, store: S) -> Self {
        BitParallelLabels {
            num_roots,
            num_vertices,
            store,
        }
    }

    /// Number of bit-parallel roots `t` (including exhausted slots).
    pub fn num_roots(&self) -> usize {
        self.num_roots
    }

    /// Ranks used as BP roots (exhausted slots are `u32::MAX`).
    pub fn roots(&self) -> &[Rank] {
        self.store.roots()
    }

    /// Entry of vertex `v` for root slot `i`.
    #[inline]
    pub fn entry(&self, v: Rank, i: usize) -> BpEntry {
        self.store.entry(v as usize * self.num_roots + i)
    }

    /// Upper bound on `d(s, t)` via every BP root: for each root `r`,
    /// `min over u ∈ {r} ∪ S_r of d(s,u) + d(u,t)`, computed with the δ̃ − 2 /
    /// δ̃ − 1 / δ̃ case analysis of §5.3. Returns [`INF_QUERY`] if no root
    /// reaches both endpoints. Exact when some shortest `s`–`t` path meets
    /// `{r} ∪ S_r`.
    #[inline]
    pub fn query(&self, s: Rank, t: Rank) -> u32 {
        let mut best = INF_QUERY;
        let t_roots = self.num_roots;
        let sb = s as usize * t_roots;
        let tb = t as usize * t_roots;
        for i in 0..t_roots {
            let a = self.store.entry(sb + i);
            let b = self.store.entry(tb + i);
            if a.dist == INF8 || b.dist == INF8 {
                continue;
            }
            let mut td = a.dist as u32 + b.dist as u32;
            if td.saturating_sub(2) < best {
                if a.set_minus1 & b.set_minus1 != 0 {
                    td -= 2;
                } else if (a.set_minus1 & b.set_zero) | (a.set_zero & b.set_minus1) != 0 {
                    td -= 1;
                }
                if td < best {
                    best = td;
                }
            }
        }
        best
    }

    /// Whether some structure reaches both `s` and `t` — a sufficient
    /// same-component certificate in `O(t)` with no distance math (any
    /// root with two finite δ̃ entries connects the pair through
    /// itself).
    #[inline]
    pub fn co_reachable(&self, s: Rank, t: Rank) -> bool {
        let t_roots = self.num_roots;
        let sb = s as usize * t_roots;
        let tb = t as usize * t_roots;
        (0..t_roots)
            .any(|i| self.store.entry(sb + i).dist != INF8 && self.store.entry(tb + i).dist != INF8)
    }

    /// Bytes used by the BP arena (heap bytes for the owned backend,
    /// section bytes for a view).
    pub fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }

    /// Average per-vertex BP label size measured in *normal-label
    /// equivalents* for the paper's "LN" column: each BP entry covers a root
    /// plus 64 neighbours but costs 24 bytes ≈ the paper reports it
    /// separately, so we report the raw count `t`.
    pub fn entries_per_vertex(&self) -> usize {
        self.num_roots
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }
}

/// The level-synchronous BFS of Algorithm 3, leaving per-vertex distances,
/// masks and the touched-vertex list in `scratch`. Shared by the in-place
/// sequential path ([`BitParallelLabels::run_root`]) and the column-wise
/// parallel path ([`bp_bfs_column`]).
fn level_sync_bfs(g: &CsrGraph, root: Rank, sub: &[Rank], scratch: &mut BpScratch) -> Result<()> {
    debug_assert!(sub.len() <= BP_WIDTH);
    scratch.reset();
    let BpScratch {
        dist,
        set_minus1,
        set_zero,
        visited,
        sibling_edges,
        child_edges,
    } = scratch;

    // Level 0: the root. Level 1 (pre-seeded): the selected neighbours,
    // each owning one bit of the masks.
    dist[root as usize] = 0;
    visited.push(root);
    let mut current: Vec<Rank> = vec![root];
    let mut next: Vec<Rank> = Vec::new();
    for (k, &v) in sub.iter().enumerate() {
        debug_assert!(g.has_edge(root, v), "S_r must be neighbours of the root");
        dist[v as usize] = 1;
        set_minus1[v as usize] = 1u64 << k;
        visited.push(v);
        next.push(v);
    }

    let mut level: u32 = 0;
    while !current.is_empty() {
        sibling_edges.clear();
        child_edges.clear();
        for &v in current.iter() {
            for &u in g.neighbors(v) {
                let du = dist[u as usize];
                if du == INF8 {
                    if level as u8 >= MAX_DIST {
                        return Err(PllError::DiameterTooLarge { root_rank: root });
                    }
                    dist[u as usize] = level as u8 + 1;
                    visited.push(u);
                    next.push(u);
                    child_edges.push((v, u));
                } else if du as u32 == level + 1 {
                    child_edges.push((v, u));
                } else if du as u32 == level {
                    sibling_edges.push((v, u));
                }
            }
        }
        // Propagate masks: siblings first (S⁰ ← S⁻¹ of same level), then
        // children (S⁻¹ ← S⁻¹, S⁰ ← S⁰ of previous level). Matches the
        // E0/E1 passes of Algorithm 3.
        for &(v, u) in sibling_edges.iter() {
            set_zero[u as usize] |= set_minus1[v as usize];
        }
        for &(v, u) in child_edges.iter() {
            set_minus1[u as usize] |= set_minus1[v as usize];
            set_zero[u as usize] |= set_zero[v as usize];
        }
        std::mem::swap(&mut current, &mut next);
        next.clear();
        level += 1;
    }
    Ok(())
}

/// Runs one bit-parallel BFS into a sparse `(vertex, entry)` column. This
/// is the thread-friendly entry point: it only touches `scratch`, so each
/// worker owns a [`BpScratch`] and the main thread commits the columns into
/// the arena with [`BitParallelLabels::set_root_column`].
pub(crate) fn bp_bfs_column(
    g: &CsrGraph,
    root: Rank,
    sub: &[Rank],
    scratch: &mut BpScratch,
) -> Result<Vec<(Rank, BpEntry)>> {
    level_sync_bfs(g, root, sub, scratch)?;
    Ok(scratch
        .visited
        .iter()
        .map(|&v| {
            (
                v,
                BpEntry {
                    dist: scratch.dist[v as usize],
                    set_minus1: scratch.set_minus1[v as usize],
                    set_zero: scratch.set_zero[v as usize],
                },
            )
        })
        .collect())
}

/// Selects the `t` bit-parallel roots and their neighbour sets exactly as
/// §5.4 prescribes — highest-priority unused vertex plus up to 64 of its
/// highest-priority unused neighbours — marking every chosen vertex in
/// `usd`. Selection only reads and writes `usd` (never the BFS results), so
/// the sequential and batch-parallel builds share it and pick identical
/// roots.
pub(crate) fn select_bp_roots(g: &CsrGraph, usd: &mut [bool], t: usize) -> Vec<(Rank, Vec<Rank>)> {
    let n = g.num_vertices();
    let mut specs = Vec::with_capacity(t);
    let mut cursor = 0usize;
    for _ in 0..t {
        while cursor < n && usd[cursor] {
            cursor += 1;
        }
        if cursor >= n {
            break; // remaining slots stay exhausted
        }
        let root = cursor as Rank;
        usd[cursor] = true;
        let mut sub: Vec<Rank> = Vec::new();
        // Neighbours are sorted by rank, i.e. highest priority first.
        for &v in g.neighbors(root) {
            if !usd[v as usize] {
                usd[v as usize] = true;
                sub.push(v);
                if sub.len() == BP_WIDTH {
                    break;
                }
            }
        }
        specs.push((root, sub));
    }
    specs
}

/// Reusable scratch buffers for bit-parallel BFSs.
#[derive(Clone, Debug)]
pub(crate) struct BpScratch {
    dist: Vec<Dist>,
    set_minus1: Vec<u64>,
    set_zero: Vec<u64>,
    visited: Vec<Rank>,
    sibling_edges: Vec<(Rank, Rank)>,
    child_edges: Vec<(Rank, Rank)>,
}

impl BpScratch {
    pub(crate) fn new(n: usize) -> Self {
        BpScratch {
            dist: vec![INF8; n],
            set_minus1: vec![0; n],
            set_zero: vec![0; n],
            visited: Vec::new(),
            sibling_edges: Vec::new(),
            child_edges: Vec::new(),
        }
    }

    fn reset(&mut self) {
        for &v in &self.visited {
            self.dist[v as usize] = INF8;
            self.set_minus1[v as usize] = 0;
            self.set_zero[v as usize] = 0;
        }
        self.visited.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::gen;
    use pll_graph::traversal::bfs;

    /// Builds BP labels with a single root (rank space == vertex space).
    fn bp_single_root(g: &CsrGraph, root: Rank, sub: &[Rank]) -> BitParallelLabels {
        let mut bp = BitParallelLabels::new(g.num_vertices(), 1);
        let mut scratch = BpScratch::new(g.num_vertices());
        bp.run_root(g, 0, root, sub, &mut scratch).unwrap();
        bp
    }

    #[test]
    fn masks_match_definition_on_small_graph() {
        // Star-of-paths: root 0 with neighbours 1, 2; 3 hangs off 1; 4 off 2;
        // extra edge 3-4 creates sibling structure.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 4)]).unwrap();
        let sub = vec![1, 2];
        let bp = bp_single_root(&g, 0, &sub);
        let dist_from = |v: Rank| bfs::distances(&g, v);
        let d_root = dist_from(0);
        let d_sub: Vec<Vec<u32>> = sub.iter().map(|&u| dist_from(u)).collect();
        for v in 0..5u32 {
            let e = bp.entry(v, 0);
            assert_eq!(e.dist as u32, d_root[v as usize], "dist of {v}");
            for (k, du) in d_sub.iter().enumerate() {
                let diff = du[v as usize] as i64 - d_root[v as usize] as i64;
                let in_minus1 = e.set_minus1 >> k & 1 == 1;
                let in_zero = e.set_zero >> k & 1 == 1;
                assert_eq!(in_minus1, diff == -1, "S^-1 bit {k} of vertex {v}");
                assert_eq!(in_zero, diff == 0, "S^0 bit {k} of vertex {v}");
            }
        }
    }

    #[test]
    fn query_is_exact_min_via_root_and_sub() {
        let g = gen::erdos_renyi_gnm(60, 150, 3).unwrap();
        // Root: highest degree vertex; sub: all its neighbours.
        let root = (0..60u32).max_by_key(|&v| g.degree(v)).unwrap();
        let sub: Vec<Rank> = g.neighbors(root).iter().copied().take(64).collect();
        let bp = bp_single_root(&g, root, &sub);

        let mut sources = vec![root];
        sources.extend_from_slice(&sub);
        let dists: Vec<Vec<u32>> = sources.iter().map(|&u| bfs::distances(&g, u)).collect();
        for s in 0..60u32 {
            for t in 0..60u32 {
                let expected = dists
                    .iter()
                    .map(|d| d[s as usize].saturating_add(d[t as usize]))
                    .min()
                    .unwrap();
                let expected = if expected == INF_QUERY {
                    INF_QUERY
                } else {
                    expected
                };
                assert_eq!(bp.query(s, t), expected, "pair ({s}, {t})");
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_inf() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let bp = bp_single_root(&g, 0, &[1]);
        assert_eq!(bp.entry(2, 0).dist, INF8);
        assert_eq!(bp.query(2, 3), INF_QUERY);
        assert_eq!(bp.query(0, 2), INF_QUERY);
        assert_eq!(bp.query(0, 1), 1);
    }

    #[test]
    fn empty_sub_is_plain_bfs_oracle() {
        let g = gen::path(6).unwrap();
        let bp = bp_single_root(&g, 0, &[]);
        // Only the root contributes: d(s,0) + d(0,t).
        assert_eq!(bp.query(2, 4), 6);
        assert_eq!(bp.query(0, 5), 5);
    }

    #[test]
    fn exhausted_slots_answer_inf() {
        let bp = BitParallelLabels::new(3, 2);
        assert_eq!(bp.query(0, 2), INF_QUERY);
        assert_eq!(bp.roots(), &[u32::MAX, u32::MAX]);
    }

    #[test]
    fn diameter_overflow_detected() {
        let g = gen::path(300).unwrap();
        let mut bp = BitParallelLabels::new(300, 1);
        let mut scratch = BpScratch::new(300);
        let err = bp.run_root(&g, 0, 0, &[], &mut scratch).unwrap_err();
        assert!(matches!(err, PllError::DiameterTooLarge { .. }));
    }

    #[test]
    fn memory_accounting() {
        let bp = BitParallelLabels::new(10, 2);
        assert_eq!(
            bp.memory_bytes(),
            10 * 2 * std::mem::size_of::<BpEntry>() + 2 * 4
        );
        assert_eq!(bp.entries_per_vertex(), 2);
        assert_eq!(bp.num_vertices(), 10);
    }
}
