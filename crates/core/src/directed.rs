//! Directed pruned landmark labeling (§6, "Directed Graphs").
//!
//! Each vertex stores two labels: `L_OUT(v)` holds pairs `(w, d(v, w))` and
//! `L_IN(v)` holds pairs `(w, d(w, v))`. A query `s → t` merges `L_OUT(s)`
//! with `L_IN(t)`. Construction runs *two* pruned BFSs per root — one over
//! out-edges (filling `L_IN` of reached vertices) and one over in-edges
//! (filling `L_OUT`) — pruning each against the labels accumulated so far.
//!
//! [`DirectedIndexBuilder::threads`] selects the batch-parallel path: each
//! worker runs a root's forward/backward relaxed BFS *pair* against the
//! committed two-sided label state, and the batch barrier commits both
//! sides in rank order (IN entries before OUT entries, matching the
//! sequential forward-then-backward order), re-pruning each entry against
//! the same-batch hubs its search could not see. The result is
//! byte-identical to the sequential build; see [`crate::par`].

use crate::error::{PllError, Result};
use crate::label::{merge_query, LabelSet};
use crate::order::OrderingStrategy;
use crate::par::{
    commit_entries, resolve_threads, run_batched, BfsScratch, PrunedSearch, RootCommit,
};
use crate::stats::{ConstructionStats, RootStats};
use crate::storage::{LabelStorage, OwnedLabels, SectionSlice, ViewLabels};
use crate::types::{Dist, Rank, Vertex, INF8, INF_QUERY, MAX_DIST};
use pll_graph::reorder::inverse_permutation;
use pll_graph::{CsrDigraph, Xoshiro256pp};
use std::time::Instant;

/// Configures construction of a [`DirectedPllIndex`].
#[derive(Clone, Debug)]
pub struct DirectedIndexBuilder {
    ordering: OrderingStrategy,
    seed: u64,
    threads: usize,
}

impl Default for DirectedIndexBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DirectedIndexBuilder {
    /// Default configuration: Degree ordering (by total degree, in + out).
    pub fn new() -> Self {
        DirectedIndexBuilder {
            ordering: OrderingStrategy::Degree,
            seed: 0x5EED_1A5E,
            threads: 1,
        }
    }

    /// Sets the number of worker threads for batch-parallel construction
    /// (see [`crate::par`]): `1` (default) is the sequential §6 path,
    /// `k > 1` runs the forward/backward pruned BFS pairs batch-parallel
    /// on `k` threads with a `LabelSet` pair byte-identical to the
    /// sequential build, and `0` auto-detects one thread per CPU. The
    /// Degree ordering and the label flatten ride the same knob,
    /// output-identically at any thread count. As with
    /// the undirected path, a multi-threaded build may surface
    /// [`PllError::DiameterTooLarge`] on a graph whose sequential build
    /// prunes every search short of the 8-bit ceiling.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the ordering strategy. `Degree` orders by `in + out` degree;
    /// `Closeness` is not supported for digraphs.
    pub fn ordering(mut self, strategy: OrderingStrategy) -> Self {
        self.ordering = strategy;
        self
    }

    /// Seed for the Random ordering.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn compute_order(&self, g: &CsrDigraph, threads: usize) -> Result<Vec<Vertex>> {
        let n = g.num_vertices();
        match &self.ordering {
            OrderingStrategy::Degree => Ok(crate::order::order_by_key_desc(n, threads, |v| {
                (g.out_degree(v) + g.in_degree(v)) as u64
            })),
            OrderingStrategy::Random => {
                let mut order: Vec<Vertex> = (0..n as Vertex).collect();
                Xoshiro256pp::seed_from_u64(self.seed).shuffle(&mut order);
                Ok(order)
            }
            OrderingStrategy::Custom(order) => {
                if order.len() != n {
                    return Err(PllError::InvalidOrder {
                        message: format!("order has {} entries for {} vertices", order.len(), n),
                    });
                }
                let mut seen = vec![false; n];
                for &v in order {
                    if (v as usize) >= n || seen[v as usize] {
                        return Err(PllError::InvalidOrder {
                            message: format!("order entry {v} repeated or out of range"),
                        });
                    }
                    seen[v as usize] = true;
                }
                Ok(order.clone())
            }
            OrderingStrategy::Closeness { .. } | OrderingStrategy::Degeneracy => {
                Err(PllError::IncompatibleOptions {
                    message: format!(
                        "{} ordering is not supported for directed indices",
                        self.ordering.name()
                    ),
                })
            }
        }
    }

    /// Builds the directed index.
    pub fn build(&self, g: &CsrDigraph) -> Result<DirectedPllIndex> {
        let n = g.num_vertices();
        let threads = resolve_threads(self.threads);
        let t0 = Instant::now();
        let order = self.compute_order(g, threads)?;
        let order_seconds = t0.elapsed().as_secs_f64();
        let tr = Instant::now();
        let inv = inverse_permutation(&order);
        // Relabel arcs into rank space (sequential: the arc translation
        // streams through `from_edges`, which owns the CSR scatter).
        let rank_edges: Vec<(Vertex, Vertex)> = g
            .arcs()
            .map(|(u, v)| (inv[u as usize], inv[v as usize]))
            .collect();
        let h = CsrDigraph::from_edges(n, &rank_edges)?;
        let relabel_seconds = tr.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let mut stats = ConstructionStats {
            order_seconds,
            relabel_seconds,
            threads,
            ..Default::default()
        };
        if threads > 1 {
            let mut state = DirectedState {
                in_ranks: vec![Vec::new(); n],
                in_dists: vec![Vec::new(); n],
                out_ranks: vec![Vec::new(); n],
                out_dists: vec![Vec::new(); n],
            };
            let roots: Vec<Rank> = (0..n as Rank).collect();
            let search = DirectedSearch { h: &h };
            run_batched(
                &search,
                &mut state,
                &roots,
                threads,
                &mut stats,
                None,
                |_, _, _| Ok(()),
            )?;
            stats.pruned_seconds = t1.elapsed().as_secs_f64();
            let tf = Instant::now();
            let labels_in = LabelSet::from_vecs(&state.in_ranks, &state.in_dists, None, threads)?;
            let labels_out =
                LabelSet::from_vecs(&state.out_ranks, &state.out_dists, None, threads)?;
            stats.flatten_seconds = tf.elapsed().as_secs_f64();
            return Ok(DirectedPllIndex {
                order,
                inv,
                labels_in,
                labels_out,
                stats,
            });
        }

        let mut in_ranks: Vec<Vec<Rank>> = vec![Vec::new(); n];
        let mut in_dists: Vec<Vec<Dist>> = vec![Vec::new(); n];
        let mut out_ranks: Vec<Vec<Rank>> = vec![Vec::new(); n];
        let mut out_dists: Vec<Vec<Dist>> = vec![Vec::new(); n];

        let mut tentative: Vec<Dist> = vec![INF8; n];
        let mut temp: Vec<Dist> = vec![INF8; n];
        let mut queue: Vec<Rank> = Vec::with_capacity(n);

        // One pruned BFS in a fixed direction. `forward = true` explores
        // out-edges from the root: it computes d(r, u) and labels L_IN(u);
        // the pruning query is min over L_OUT(r) ∩ L_IN(u). `forward =
        // false` mirrors everything.
        #[allow(clippy::too_many_arguments)]
        fn pruned_bfs(
            h: &CsrDigraph,
            r: Rank,
            forward: bool,
            root_side_ranks: &[Vec<Rank>],
            root_side_dists: &[Vec<Dist>],
            fill_ranks: &mut [Vec<Rank>],
            fill_dists: &mut [Vec<Dist>],
            tentative: &mut [Dist],
            temp: &mut [Dist],
            queue: &mut Vec<Rank>,
            stats: &mut ConstructionStats,
        ) -> Result<()> {
            // temp[w] = distance between w and r on the root's side.
            for (idx, &w) in root_side_ranks[r as usize].iter().enumerate() {
                temp[w as usize] = root_side_dists[r as usize][idx];
            }
            queue.clear();
            queue.push(r);
            tentative[r as usize] = 0;
            let mut head = 0usize;
            while head < queue.len() {
                let u = queue[head];
                head += 1;
                let d = tentative[u as usize];
                stats.total_visited += 1;

                let mut prune = false;
                let lr = &fill_ranks[u as usize];
                let ld = &fill_dists[u as usize];
                for (idx, &w) in lr.iter().enumerate() {
                    let tw = temp[w as usize];
                    if tw != INF8 && tw as u32 + ld[idx] as u32 <= d as u32 {
                        prune = true;
                        break;
                    }
                }
                if prune {
                    stats.total_pruned += 1;
                    continue;
                }
                fill_ranks[u as usize].push(r);
                fill_dists[u as usize].push(d);
                stats.total_labeled += 1;

                let neighbors = if forward {
                    h.out_neighbors(u)
                } else {
                    h.in_neighbors(u)
                };
                for &w in neighbors {
                    if tentative[w as usize] == INF8 {
                        if d >= MAX_DIST {
                            return Err(PllError::DiameterTooLarge { root_rank: r });
                        }
                        tentative[w as usize] = d + 1;
                        queue.push(w);
                    }
                }
            }
            for &v in queue.iter() {
                tentative[v as usize] = INF8;
            }
            for &w in root_side_ranks[r as usize].iter() {
                temp[w as usize] = INF8;
            }
            Ok(())
        }

        for r in 0..n as Rank {
            // Forward: fills L_IN, prunes against L_OUT(r) ∩ L_IN(u).
            pruned_bfs(
                &h,
                r,
                true,
                &out_ranks,
                &out_dists,
                &mut in_ranks,
                &mut in_dists,
                &mut tentative,
                &mut temp,
                &mut queue,
                &mut stats,
            )?;
            // Backward: fills L_OUT, prunes against L_IN(r) ∩ L_OUT(u).
            pruned_bfs(
                &h,
                r,
                false,
                &in_ranks,
                &in_dists,
                &mut out_ranks,
                &mut out_dists,
                &mut tentative,
                &mut temp,
                &mut queue,
                &mut stats,
            )?;
            stats.pruned_roots += 1;
        }
        stats.pruned_seconds = t1.elapsed().as_secs_f64();

        let tf = Instant::now();
        let labels_in = LabelSet::from_vecs(&in_ranks, &in_dists, None, 1)?;
        let labels_out = LabelSet::from_vecs(&out_ranks, &out_dists, None, 1)?;
        stats.flatten_seconds = tf.elapsed().as_secs_f64();
        Ok(DirectedPllIndex {
            order,
            inv,
            labels_in,
            labels_out,
            stats,
        })
    }
}

/// Committed two-sided label state of the batch-parallel directed build.
struct DirectedState {
    in_ranks: Vec<Vec<Rank>>,
    in_dists: Vec<Vec<Dist>>,
    out_ranks: Vec<Vec<Rank>>,
    out_dists: Vec<Vec<Dist>>,
}

/// Buffered output of one root's forward/backward relaxed BFS pair.
struct DirectedRun {
    /// Forward entries `(u, d(r → u))` destined for `L_IN(u)`.
    in_entries: Vec<(Rank, Dist)>,
    /// Backward entries `(u, d(u → r))` destined for `L_OUT(u)`.
    out_entries: Vec<(Rank, Dist)>,
    visited: u32,
    pruned: u32,
}

/// The directed [`PrunedSearch`]: per root, a forward relaxed pruned BFS
/// over out-arcs (buffering `L_IN` candidates, pruning against
/// `L_OUT(r) ∩ L_IN(u)`) followed by the mirrored backward BFS.
struct DirectedSearch<'g> {
    h: &'g CsrDigraph,
}

impl PrunedSearch for DirectedSearch<'_> {
    type State = DirectedState;
    type Scratch = BfsScratch;
    type Run = DirectedRun;

    fn new_scratch(&self) -> BfsScratch {
        BfsScratch::new(self.h.num_vertices())
    }

    fn search(&self, state: &DirectedState, r: Rank, ws: &mut BfsScratch) -> Result<DirectedRun> {
        let mut run = DirectedRun {
            in_entries: Vec::new(),
            out_entries: Vec::new(),
            visited: 0,
            pruned: 0,
        };
        relaxed_directed_bfs(
            self.h,
            r,
            true,
            &state.out_ranks,
            &state.out_dists,
            &state.in_ranks,
            &state.in_dists,
            ws,
            &mut run.in_entries,
            &mut run.visited,
            &mut run.pruned,
        )?;
        relaxed_directed_bfs(
            self.h,
            r,
            false,
            &state.in_ranks,
            &state.in_dists,
            &state.out_ranks,
            &state.out_dists,
            ws,
            &mut run.out_entries,
            &mut run.visited,
            &mut run.pruned,
        )?;
        Ok(run)
    }

    fn commit(
        &self,
        state: &mut DirectedState,
        batch_first: Rank,
        r: Rank,
        run: DirectedRun,
    ) -> Result<RootCommit> {
        let mut labeled = 0u32;
        let mut repruned = 0u32;
        // IN entries first, then OUT — the sequential forward BFS fully
        // commits before the backward BFS starts. A forward entry
        // `(r, u, d(r→u))` is certified by a same-batch hub
        // `x ∈ L_OUT(r) ∩ L_IN(u)` with `d(r→x) + d(x→u) ≤ d`; the
        // backward side mirrors it.
        commit_entries(
            &run.in_entries,
            &mut state.in_ranks,
            &mut state.in_dists,
            Some((&state.out_ranks, &state.out_dists)),
            batch_first,
            r,
            |d| Ok(d as Dist),
            &mut labeled,
            &mut repruned,
        )?;
        commit_entries(
            &run.out_entries,
            &mut state.out_ranks,
            &mut state.out_dists,
            Some((&state.in_ranks, &state.in_dists)),
            batch_first,
            r,
            |d| Ok(d as Dist),
            &mut labeled,
            &mut repruned,
        )?;
        Ok(RootCommit {
            stats: RootStats {
                rank: r,
                visited: run.visited,
                labeled,
                pruned: run.pruned + repruned,
            },
            repruned,
        })
    }
}

/// One relaxed pruned BFS in a fixed direction, buffering label
/// candidates instead of publishing them. Mirrors the sequential
/// `pruned_bfs` exactly (same temp preparation, prune test and lazy
/// resets); `forward = true` explores out-arcs and buffers `L_IN`
/// candidates.
#[allow(clippy::too_many_arguments)]
fn relaxed_directed_bfs(
    h: &CsrDigraph,
    r: Rank,
    forward: bool,
    root_side_ranks: &[Vec<Rank>],
    root_side_dists: &[Vec<Dist>],
    fill_ranks: &[Vec<Rank>],
    fill_dists: &[Vec<Dist>],
    ws: &mut BfsScratch,
    entries: &mut Vec<(Rank, Dist)>,
    visited: &mut u32,
    pruned: &mut u32,
) -> Result<()> {
    for (idx, &w) in root_side_ranks[r as usize].iter().enumerate() {
        ws.temp[w as usize] = root_side_dists[r as usize][idx];
    }
    ws.queue.clear();
    ws.queue.push(r);
    ws.tentative[r as usize] = 0;
    let mut head = 0usize;
    let mut error = None;

    'bfs: while head < ws.queue.len() {
        let u = ws.queue[head];
        head += 1;
        let d = ws.tentative[u as usize];
        *visited += 1;

        let mut prune = false;
        let lr = &fill_ranks[u as usize];
        let ld = &fill_dists[u as usize];
        for (idx, &w) in lr.iter().enumerate() {
            let tw = ws.temp[w as usize];
            if tw != INF8 && tw as u32 + ld[idx] as u32 <= d as u32 {
                prune = true;
                break;
            }
        }
        if prune {
            *pruned += 1;
            continue;
        }
        entries.push((u, d));

        let neighbors = if forward {
            h.out_neighbors(u)
        } else {
            h.in_neighbors(u)
        };
        for &w in neighbors {
            if ws.tentative[w as usize] == INF8 {
                if d >= MAX_DIST {
                    error = Some(PllError::DiameterTooLarge { root_rank: r });
                    break 'bfs;
                }
                ws.tentative[w as usize] = d + 1;
                ws.queue.push(w);
            }
        }
    }

    for &v in ws.queue.iter() {
        ws.tentative[v as usize] = INF8;
    }
    for &w in root_side_ranks[r as usize].iter() {
        ws.temp[w as usize] = INF8;
    }
    match error {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// An exact distance index over a directed, unweighted graph.
///
/// Generic over the [`crate::storage::LabelStorage`] backend of its two
/// label sides, like [`crate::PllIndex`]: the default owns its arenas,
/// [`DirectedPllIndexView`] runs the same merge-join zero-copy over a v2
/// index buffer.
#[derive(Clone, Debug)]
pub struct DirectedPllIndex<O = Vec<Vertex>, S = OwnedLabels<Dist>> {
    order: O,
    inv: O,
    labels_in: LabelSet<S>,
    labels_out: LabelSet<S>,
    stats: ConstructionStats,
}

/// Zero-copy [`DirectedPllIndex`] over a v2 index buffer.
pub type DirectedPllIndexView = DirectedPllIndex<SectionSlice<u32>, ViewLabels<Dist>>;

impl<O, S> DirectedPllIndex<O, S>
where
    O: AsRef<[u32]>,
    S: LabelStorage<Dist = Dist>,
{
    /// Assembles an index from any backend (inputs pre-validated).
    pub(crate) fn assemble(
        order: O,
        inv: O,
        labels_in: LabelSet<S>,
        labels_out: LabelSet<S>,
        stats: ConstructionStats,
    ) -> Self {
        DirectedPllIndex {
            order,
            inv,
            labels_in,
            labels_out,
            stats,
        }
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.order.as_ref().len()
    }

    /// Exact directed distance from `s` to `t`; `None` if `t` is not
    /// reachable from `s`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn distance(&self, s: Vertex, t: Vertex) -> Option<u32> {
        assert!(
            (s as usize) < self.num_vertices(),
            "vertex {s} out of range"
        );
        assert!(
            (t as usize) < self.num_vertices(),
            "vertex {t} out of range"
        );
        if s == t {
            return Some(0);
        }
        let rs = self.inv.as_ref()[s as usize];
        let rt = self.inv.as_ref()[t as usize];
        let (sr, sd) = self.labels_out.label(rs);
        let (tr, td) = self.labels_in.label(rt);
        let best = merge_query(sr, sd, tr, td);
        (best != INF_QUERY).then_some(best)
    }

    /// Hints the CPU to pull the OUT label of `s` and the IN label of
    /// `t` toward cache ahead of a [`DirectedPllIndex::distance`] call
    /// for the same pair. Advisory: out-of-range vertices are ignored.
    pub fn prefetch_query(&self, s: Vertex, t: Vertex) {
        let n = self.num_vertices();
        if (s as usize) < n {
            let (r, d) = self.labels_out.label(self.inv.as_ref()[s as usize]);
            crate::kernel::prefetch_read(r);
            crate::kernel::prefetch_read(d);
        }
        if (t as usize) < n {
            let (r, d) = self.labels_in.label(self.inv.as_ref()[t as usize]);
            crate::kernel::prefetch_read(r);
            crate::kernel::prefetch_read(d);
        }
    }

    /// Checked variant of [`DirectedPllIndex::distance`].
    pub fn try_distance(&self, s: Vertex, t: Vertex) -> Result<Option<u32>> {
        let n = self.num_vertices();
        for x in [s, t] {
            if x as usize >= n {
                return Err(PllError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: n,
                });
            }
        }
        Ok(self.distance(s, t))
    }

    /// OUT-label store (hubs reachable *from* each vertex).
    pub fn labels_out(&self) -> &LabelSet<S> {
        &self.labels_out
    }

    /// IN-label store (hubs that reach each vertex).
    pub fn labels_in(&self) -> &LabelSet<S> {
        &self.labels_in
    }

    /// Construction statistics.
    pub fn stats(&self) -> &ConstructionStats {
        &self.stats
    }

    /// Average of (|L_IN| + |L_OUT|) per vertex.
    pub fn avg_label_size(&self) -> f64 {
        self.labels_in.avg_label_size() + self.labels_out.avg_label_size()
    }

    /// Total index bytes.
    pub fn memory_bytes(&self) -> usize {
        self.labels_in.memory_bytes()
            + self.labels_out.memory_bytes()
            + self.order.as_ref().len() * 8
    }
}

impl DirectedPllIndex {
    /// Raw parts for serialisation: `(order, inv, labels_in,
    /// labels_out)`.
    pub(crate) fn as_raw(&self) -> (&[Vertex], &[Rank], &LabelSet, &LabelSet) {
        (&self.order, &self.inv, &self.labels_in, &self.labels_out)
    }

    /// Reassembles from raw parts (deserialisation; inputs pre-validated).
    pub(crate) fn from_raw(
        order: Vec<Vertex>,
        inv: Vec<Rank>,
        labels_in: LabelSet,
        labels_out: LabelSet,
    ) -> Self {
        DirectedPllIndex {
            order,
            inv,
            labels_in,
            labels_out,
            stats: ConstructionStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::{CsrDigraph, Xoshiro256pp, INF_U32};

    /// Plain directed BFS for ground truth.
    fn bfs_directed(g: &CsrDigraph, s: Vertex) -> Vec<u32> {
        let n = g.num_vertices();
        let mut dist = vec![INF_U32; n];
        let mut queue = vec![s];
        dist[s as usize] = 0;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for &w in g.out_neighbors(u) {
                if dist[w as usize] == INF_U32 {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push(w);
                }
            }
        }
        dist
    }

    fn check_exact(g: &CsrDigraph, builder: &DirectedIndexBuilder) {
        let idx = builder.build(g).unwrap();
        let n = g.num_vertices() as Vertex;
        for s in 0..n {
            let d = bfs_directed(g, s);
            for t in 0..n {
                let expect = (d[t as usize] != INF_U32).then_some(d[t as usize]);
                assert_eq!(idx.distance(s, t), expect, "pair ({s} -> {t})");
            }
        }
    }

    fn random_digraph(n: usize, m: usize, seed: u64) -> CsrDigraph {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut arcs = std::collections::HashSet::new();
        while arcs.len() < m {
            let u = rng.next_below(n as u64) as Vertex;
            let v = rng.next_below(n as u64) as Vertex;
            if u != v {
                arcs.insert((u, v));
            }
        }
        let mut list: Vec<_> = arcs.into_iter().collect();
        list.sort_unstable();
        CsrDigraph::from_edges(n, &list).unwrap()
    }

    #[test]
    fn exact_on_dag() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 3 -> 4; nothing returns.
        let g = CsrDigraph::from_edges(5, &[(0, 1), (1, 3), (0, 2), (2, 3), (3, 4)]).unwrap();
        check_exact(&g, &DirectedIndexBuilder::new());
        let idx = DirectedIndexBuilder::new().build(&g).unwrap();
        assert_eq!(idx.distance(0, 4), Some(3));
        assert_eq!(idx.distance(4, 0), None); // asymmetry
    }

    #[test]
    fn exact_on_directed_cycle() {
        let g = CsrDigraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let idx = DirectedIndexBuilder::new().build(&g).unwrap();
        assert_eq!(idx.distance(0, 4), Some(4));
        assert_eq!(idx.distance(4, 0), Some(1));
        check_exact(&g, &DirectedIndexBuilder::new());
    }

    #[test]
    fn exact_on_random_digraphs() {
        for seed in [1, 2, 3] {
            let g = random_digraph(60, 240, seed);
            check_exact(&g, &DirectedIndexBuilder::new());
            check_exact(
                &g,
                &DirectedIndexBuilder::new()
                    .ordering(OrderingStrategy::Random)
                    .seed(seed),
            );
        }
    }

    #[test]
    fn antiparallel_pair() {
        let g = CsrDigraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]).unwrap();
        let idx = DirectedIndexBuilder::new().build(&g).unwrap();
        assert_eq!(idx.distance(0, 2), Some(2));
        assert_eq!(idx.distance(2, 0), None);
        assert_eq!(idx.distance(1, 0), Some(1));
    }

    #[test]
    fn parallel_equals_sequential_directed() {
        for seed in [1u64, 4, 11] {
            let g = random_digraph(120, 480, seed);
            for builder in [
                DirectedIndexBuilder::new(),
                DirectedIndexBuilder::new()
                    .ordering(OrderingStrategy::Random)
                    .seed(seed),
            ] {
                let seq = builder.clone().threads(1).build(&g).unwrap();
                for k in [2usize, 3, 4, 8] {
                    let par = builder.clone().threads(k).build(&g).unwrap();
                    assert_eq!(
                        seq.labels_in(),
                        par.labels_in(),
                        "L_IN diverged at threads={k}, seed={seed}"
                    );
                    assert_eq!(
                        seq.labels_out(),
                        par.labels_out(),
                        "L_OUT diverged at threads={k}, seed={seed}"
                    );
                    assert_eq!(par.stats().threads, k);
                    assert!(par.stats().parallel_batches > 0);
                    assert_eq!(
                        par.stats().total_labeled,
                        seq.stats().total_labeled,
                        "label volume diverged at threads={k}, seed={seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_directed_is_exact() {
        let g = random_digraph(80, 320, 7);
        let idx = DirectedIndexBuilder::new().threads(4).build(&g).unwrap();
        let n = g.num_vertices() as Vertex;
        for s in 0..n {
            let d = bfs_directed(&g, s);
            for t in 0..n {
                let expect = (d[t as usize] != INF_U32).then_some(d[t as usize]);
                assert_eq!(idx.distance(s, t), expect, "pair ({s} -> {t})");
            }
        }
    }

    #[test]
    fn closeness_rejected() {
        let g = CsrDigraph::from_edges(2, &[(0, 1)]).unwrap();
        let err = DirectedIndexBuilder::new()
            .ordering(OrderingStrategy::Closeness { samples: 4 })
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PllError::IncompatibleOptions { .. }));
    }

    #[test]
    fn try_distance_checks_range() {
        let g = CsrDigraph::from_edges(2, &[(0, 1)]).unwrap();
        let idx = DirectedIndexBuilder::new().build(&g).unwrap();
        assert!(idx.try_distance(0, 1).unwrap().is_some());
        assert!(matches!(
            idx.try_distance(0, 7),
            Err(PllError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn label_stats_accessible() {
        let g = random_digraph(50, 150, 9);
        let idx = DirectedIndexBuilder::new().build(&g).unwrap();
        assert!(idx.avg_label_size() > 0.0);
        assert!(idx.memory_bytes() > 0);
        assert_eq!(idx.stats().pruned_roots, 50);
        assert!(idx.labels_in().num_vertices() == 50);
        assert!(idx.labels_out().num_vertices() == 50);
    }
}
