//! Narrow-distance (`Dist8`) representation of the weighted index: the
//! paper's 8-bit trick applied to the `u32` distance arena.
//!
//! Weighted labels store one `u32` distance per entry, but on graphs
//! with small edge weights almost every label distance fits a byte. The
//! Dist8 representation stores the distance arena as `u8` with a sorted
//! *escape sidecar* for the rare entries ≥ 255: an escaped entry holds
//! [`DIST8_ESCAPE`] in the arena and its true `u32` value in the
//! sidecar, keyed by its global arena position. Sentinel slots also hold
//! [`DIST8_ESCAPE`] but have no sidecar entry — the merge terminates on
//! the rank sentinel before ever reading them as distances. This cuts
//! bytes-per-probe from 8 (`rank + u32 dist`) to 5, which is what
//! decides query throughput once labels outgrow the cache.
//!
//! [`encode_dist8`] converts a `u32` arena, refusing (returning `None`)
//! when escapes are so common the sidecar would cost more than the
//! narrowing saves; the v2 writer then falls back to the plain `u32`
//! sections, losslessly. Queries answer through
//! [`kernel::merge_query_weighted_dist8`], whose answers are proven
//! identical to the `u32` scalar kernel by the equivalence suite.

use crate::error::{PllError, Result};
use crate::kernel::{self, DIST8_ESCAPE};
use crate::stats::ConstructionStats;
use crate::storage::{LabelStorage, OwnedLabels, SectionSlice, ViewLabels};
use crate::types::{Vertex, WDist};
use crate::weighted::WeightedPllIndex;

/// A `u32` distance arena narrowed to `u8` + escape sidecar.
#[derive(Debug)]
pub struct Dist8Encoding {
    /// The narrowed arena, parallel to the rank arena (sentinels and
    /// escaped entries hold [`DIST8_ESCAPE`]).
    pub dists8: Vec<u8>,
    /// Global arena positions of escaped entries, strictly ascending.
    pub esc_pos: Vec<u32>,
    /// True `u32` distances of the escaped entries, parallel to
    /// `esc_pos` (every value ≥ 255).
    pub esc_val: Vec<u32>,
}

/// Narrows a weighted label arena to the Dist8 representation, or `None`
/// when it would not pay: a `u8` arena saves 3 bytes per entry over
/// `u32`, each escape costs 8 sidecar bytes, so the encoding is kept
/// only while `escapes * 8 <= entries * 3`.
pub fn encode_dist8(offsets: &[u32], dists: &[WDist]) -> Option<Dist8Encoding> {
    let n = offsets.len().checked_sub(1)?;
    let mut enc = Dist8Encoding {
        dists8: vec![0u8; dists.len()],
        esc_pos: Vec::new(),
        esc_val: Vec::new(),
    };
    for v in 0..n {
        let (s, e) = (offsets[v] as usize, offsets[v + 1] as usize);
        for (p, &d) in (s..e - 1).zip(&dists[s..e - 1]) {
            if d < DIST8_ESCAPE as u32 {
                enc.dists8[p] = d as u8;
            } else {
                enc.dists8[p] = DIST8_ESCAPE;
                enc.esc_pos.push(p as u32);
                enc.esc_val.push(d);
            }
        }
        enc.dists8[e - 1] = DIST8_ESCAPE; // sentinel slot, no sidecar entry
    }
    (enc.esc_pos.len() * 8 <= dists.len() * 3).then_some(enc)
}

/// Weighted PLL index with the Dist8 distance arena, generic over the
/// storage backend like its `u32` counterpart [`WeightedPllIndex`]:
/// owned vectors for in-memory conversion and tests, [`SectionSlice`]
/// views for zero-copy v2 files ([`WeightedDist8IndexView`]).
#[derive(Debug)]
pub struct WeightedDist8Index<O = Vec<Vertex>, S = OwnedLabels<u8>, E = Vec<u32>>
where
    O: AsRef<[u32]>,
    S: LabelStorage<Dist = u8>,
    E: AsRef<[u32]>,
{
    order: O,
    inv: O,
    labels: S,
    esc_pos: E,
    esc_val: E,
    stats: ConstructionStats,
}

/// Zero-copy [`WeightedDist8Index`] over a v2 index buffer.
pub type WeightedDist8IndexView =
    WeightedDist8Index<SectionSlice<u32>, ViewLabels<u8>, SectionSlice<u32>>;

impl<O, S, E> WeightedDist8Index<O, S, E>
where
    O: AsRef<[u32]>,
    S: LabelStorage<Dist = u8>,
    E: AsRef<[u32]>,
{
    /// Assembles an index from any backend (inputs pre-validated).
    pub(crate) fn assemble(
        order: O,
        inv: O,
        labels: S,
        esc_pos: E,
        esc_val: E,
        stats: ConstructionStats,
    ) -> Self {
        WeightedDist8Index {
            order,
            inv,
            labels,
            esc_pos,
            esc_val,
            stats,
        }
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.order.as_ref().len()
    }

    /// Number of escaped (≥ 255) distance entries in the sidecar.
    pub fn escape_count(&self) -> usize {
        self.esc_pos.as_ref().len()
    }

    /// Exact weighted distance between `u` and `v`; `None` if they are
    /// disconnected.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn distance(&self, u: Vertex, v: Vertex) -> Option<u64> {
        assert!(
            (u as usize) < self.num_vertices(),
            "vertex {u} out of range"
        );
        assert!(
            (v as usize) < self.num_vertices(),
            "vertex {v} out of range"
        );
        if u == v {
            return Some(0);
        }
        let ru = self.inv.as_ref()[u as usize] as usize;
        let rv = self.inv.as_ref()[v as usize] as usize;
        let offsets = self.labels.offsets();
        let (ranks, dists) = (self.labels.ranks(), self.labels.dists());
        let (us, ue) = (offsets[ru] as usize, offsets[ru + 1] as usize);
        let (vs, ve) = (offsets[rv] as usize, offsets[rv + 1] as usize);
        let best = kernel::merge_query_weighted_dist8(
            &ranks[us..ue],
            &dists[us..ue],
            us as u32,
            &ranks[vs..ve],
            &dists[vs..ve],
            vs as u32,
            self.esc_pos.as_ref(),
            self.esc_val.as_ref(),
        );
        (best != u64::MAX).then_some(best)
    }

    /// Hints the CPU to pull both endpoints' label slices toward cache
    /// ahead of a [`WeightedDist8Index::distance`] call for the same
    /// pair. Advisory: out-of-range vertices are ignored.
    pub fn prefetch_query(&self, u: Vertex, v: Vertex) {
        let n = self.num_vertices();
        let offsets = self.labels.offsets();
        for x in [u, v] {
            if (x as usize) < n {
                let r = self.inv.as_ref()[x as usize] as usize;
                let (s, e) = (offsets[r] as usize, offsets[r + 1] as usize);
                crate::kernel::prefetch_read(&self.labels.ranks()[s..e]);
                crate::kernel::prefetch_read(&self.labels.dists()[s..e]);
            }
        }
    }

    /// Checked variant of [`WeightedDist8Index::distance`].
    pub fn try_distance(&self, u: Vertex, v: Vertex) -> Result<Option<u64>> {
        let n = self.num_vertices();
        for x in [u, v] {
            if x as usize >= n {
                return Err(PllError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: n,
                });
            }
        }
        Ok(self.distance(u, v))
    }

    /// Average label entries per vertex (sentinels excluded).
    pub fn avg_label_size(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        (self.labels.ranks().len() - self.num_vertices()) as f64 / self.num_vertices() as f64
    }

    /// Construction statistics.
    pub fn stats(&self) -> &ConstructionStats {
        &self.stats
    }

    /// Total index bytes: label arena + sidecar + permutations.
    pub fn memory_bytes(&self) -> usize {
        self.labels.memory_bytes()
            + (self.esc_pos.as_ref().len() + self.esc_val.as_ref().len()) * 4
            + self.order.as_ref().len() * 8
    }
}

impl WeightedDist8Index {
    /// Narrows an owned `u32` weighted index to the Dist8
    /// representation, or `None` when escapes make it unprofitable (see
    /// [`encode_dist8`]).
    pub fn from_weighted(index: &WeightedPllIndex) -> Option<WeightedDist8Index> {
        let (order, inv, offsets, ranks, dists) = index.as_raw();
        let enc = encode_dist8(offsets, dists)?;
        let store = OwnedLabels {
            offsets: offsets.to_vec(),
            ranks: ranks.to_vec(),
            dists: enc.dists8,
            parents: None,
        };
        Some(WeightedDist8Index::assemble(
            order.to_vec(),
            inv.to_vec(),
            store,
            enc.esc_pos,
            enc.esc_val,
            index.stats().clone(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weighted::WeightedIndexBuilder;
    use pll_graph::wgraph::WeightedGraph;

    fn ring_with_heavy_chord(n: usize, heavy: u32) -> WeightedGraph {
        let mut edges: Vec<(u32, u32, u32)> =
            (0..n as u32).map(|v| (v, (v + 1) % n as u32, 9)).collect();
        edges.push((0, (n / 2) as u32, heavy));
        WeightedGraph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn dist8_conversion_preserves_every_distance() {
        let g = ring_with_heavy_chord(120, 400);
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        let d8 = WeightedDist8Index::from_weighted(&idx).expect("small weights: profitable");
        for u in (0..120).step_by(7) {
            for v in (0..120).step_by(11) {
                assert_eq!(d8.distance(u, v), idx.distance(u, v), "pair ({u}, {v})");
            }
        }
        // A ring of weight-9 edges with n=120 has eccentricities ~540;
        // the ≥255 tail must be present and escaped, not truncated.
        assert!(d8.escape_count() > 0, "expected some escaped entries");
    }

    #[test]
    fn unprofitable_arenas_refuse_to_narrow() {
        // Every real entry ≥ 255 → one 8-byte sidecar entry per 1-byte
        // arena slot: worse than u32, so encode_dist8 must refuse.
        let offsets = vec![0u32, 3];
        let dists = vec![1000, 2000, WDist::MAX];
        assert!(encode_dist8(&offsets, &dists).is_none());
        // All-small arenas always narrow.
        let dists = vec![1, 2, WDist::MAX];
        let enc = encode_dist8(&offsets, &dists).unwrap();
        assert_eq!(enc.dists8, vec![1, 2, DIST8_ESCAPE]);
        assert!(enc.esc_pos.is_empty());
    }

    #[test]
    fn sentinel_slots_never_enter_the_sidecar() {
        let g = ring_with_heavy_chord(40, 300);
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        let d8 = WeightedDist8Index::from_weighted(&idx).unwrap();
        let offsets = d8.labels.offsets();
        for v in 0..d8.num_vertices() {
            let sentinel_pos = offsets[v + 1] - 1;
            assert!(
                d8.esc_pos.binary_search(&sentinel_pos).is_err(),
                "sentinel of rank {v} leaked into the sidecar"
            );
        }
    }
}
