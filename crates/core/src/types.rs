//! Core scalar types and constants.
//!
//! Following §4.5 and §7 of the paper: distances in unweighted indices are
//! 8-bit ("we used 8-bit integers to represent distances"), vertices and
//! ranks are 32-bit, and bit-parallel sets are 64-bit words.

/// Original vertex identifier (as in the input graph).
pub type Vertex = u32;

/// Rank of a vertex in the BFS priority order; rank 0 is processed first.
/// Labels store ranks, which keeps them implicitly sorted (§4.5, "Sorting
/// Labels").
pub type Rank = u32;

/// 8-bit distance in unweighted indices.
pub type Dist = u8;

/// Weighted distance (pruned Dijkstra variant, §6).
pub type WDist = u32;

/// "Infinite"/unreached marker for 8-bit distances. The largest storable
/// finite distance is therefore [`MAX_DIST`].
pub const INF8: Dist = u8::MAX;

/// Largest representable finite 8-bit distance (254).
pub const MAX_DIST: Dist = u8::MAX - 1;

/// Sentinel rank terminating every label (§4.5, "Sentinel"): scanning two
/// labels always meets at the sentinel, removing end-of-slice tests from the
/// merge loop.
pub const RANK_SENTINEL: Rank = u32::MAX;

/// "Infinite" result of a query in `u32` space (no common hub).
pub const INF_QUERY: u32 = u32::MAX;

/// "Infinite" weighted distance marker.
pub const INF_WDIST: WDist = u32::MAX;

/// Number of bits in a bit-parallel set (§5: "64-bit integers to conduct
/// bit-parallel BFSs").
pub const BP_WIDTH: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(INF8, 255);
        assert_eq!(MAX_DIST, 254);
        assert!(u32::from(INF8) + u32::from(INF8) < INF_QUERY);
        assert_eq!(RANK_SENTINEL, u32::MAX);
        assert_eq!(BP_WIDTH, 64);
    }
}
