//! Degree-one fringe reduction (§8, "reduce the index size by reducing
//! graphs exploiting obvious parts").
//!
//! Complex networks have large tree-like fringes. Iteratively peeling
//! degree-1 vertices leaves a *core*; every peeled vertex hangs in a tree
//! rooted at a core vertex (its *anchor*). Only the core needs a labeling:
//!
//! * same-anchor pairs are answered inside the tree
//!   (`depth(u) + depth(v) − 2·depth(lca)`);
//! * all other pairs pass through both anchors
//!   (`depth(u) + d_core(anchor(u), anchor(v)) + depth(v)`).
//!
//! On fringe-heavy graphs this shrinks the labeled vertex set — and the
//! index — substantially at the cost of a tiny amount of per-query tree
//! walking.

use crate::build::IndexBuilder;
use crate::error::Result;
use crate::index::PllIndex;
use crate::types::Vertex;
use pll_graph::{CsrGraph, INVALID_VERTEX};

/// The result of iteratively peeling degree-1 vertices.
#[derive(Clone, Debug)]
pub struct Peeling {
    /// Core subgraph, relabelled to `0..core_size`.
    core: CsrGraph,
    /// `core_id[v]` = v's id inside the core, or `INVALID_VERTEX` if peeled.
    core_id: Vec<Vertex>,
    /// `old_of_core[c]` = original id of core vertex `c`.
    old_of_core: Vec<Vertex>,
    /// Tree parent of each peeled vertex (original ids); `INVALID_VERTEX`
    /// for core vertices.
    parent: Vec<Vertex>,
    /// Distance to the anchor (0 for core vertices).
    depth: Vec<u32>,
    /// The core vertex at the end of each vertex's parent chain (original
    /// id; the vertex itself for core vertices).
    anchor: Vec<Vertex>,
}

impl Peeling {
    /// Iteratively peels degree-1 vertices off `g`.
    pub fn peel(g: &CsrGraph) -> Peeling {
        let n = g.num_vertices();
        let mut degree: Vec<u32> = (0..n as Vertex).map(|v| g.degree(v) as u32).collect();
        let mut parent = vec![INVALID_VERTEX; n];
        let mut peeled = vec![false; n];
        // Queue of current degree-1 vertices.
        let mut queue: Vec<Vertex> = (0..n as Vertex)
            .filter(|&v| degree[v as usize] == 1)
            .collect();
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            if peeled[v as usize] || degree[v as usize] != 1 {
                continue; // degree changed since enqueue
            }
            // The unique remaining neighbour becomes v's parent.
            let p = g
                .neighbors(v)
                .iter()
                .copied()
                .find(|&w| !peeled[w as usize])
                .expect("degree-1 vertex has an unpeeled neighbour");
            peeled[v as usize] = true;
            parent[v as usize] = p;
            degree[v as usize] = 0;
            degree[p as usize] -= 1;
            if degree[p as usize] == 1 {
                queue.push(p);
            }
        }

        // Relabel the core.
        let mut core_id = vec![INVALID_VERTEX; n];
        let mut old_of_core = Vec::new();
        for v in 0..n as Vertex {
            if !peeled[v as usize] {
                core_id[v as usize] = old_of_core.len() as Vertex;
                old_of_core.push(v);
            }
        }
        let mut core_edges = Vec::new();
        for (u, v) in g.edges() {
            if !peeled[u as usize] && !peeled[v as usize] {
                core_edges.push((core_id[u as usize], core_id[v as usize]));
            }
        }
        let core =
            CsrGraph::from_edges(old_of_core.len(), &core_edges).expect("core inherits validity");

        // Depths and anchors by chasing parent chains (memoised).
        let mut depth = vec![u32::MAX; n];
        let mut anchor = vec![INVALID_VERTEX; n];
        for v in 0..n as Vertex {
            if !peeled[v as usize] {
                depth[v as usize] = 0;
                anchor[v as usize] = v;
            }
        }
        let mut chain = Vec::new();
        for v in 0..n as Vertex {
            if depth[v as usize] != u32::MAX {
                continue;
            }
            chain.clear();
            let mut cur = v;
            while depth[cur as usize] == u32::MAX {
                chain.push(cur);
                cur = parent[cur as usize];
            }
            let base_depth = depth[cur as usize];
            let base_anchor = anchor[cur as usize];
            for (i, &w) in chain.iter().rev().enumerate() {
                depth[w as usize] = base_depth + i as u32 + 1;
                anchor[w as usize] = base_anchor;
            }
        }

        Peeling {
            core,
            core_id,
            old_of_core,
            parent,
            depth,
            anchor,
        }
    }

    /// The peeled core graph (relabelled).
    pub fn core(&self) -> &CsrGraph {
        &self.core
    }

    /// Number of original vertices.
    pub fn num_vertices(&self) -> usize {
        self.core_id.len()
    }

    /// Number of peeled (fringe) vertices.
    pub fn num_peeled(&self) -> usize {
        self.num_vertices() - self.old_of_core.len()
    }

    /// Whether `v` was peeled into a fringe tree.
    pub fn is_peeled(&self, v: Vertex) -> bool {
        self.core_id[v as usize] == INVALID_VERTEX
    }

    /// Depth of `v` below its anchor (0 for core vertices).
    pub fn depth(&self, v: Vertex) -> u32 {
        self.depth[v as usize]
    }

    /// Anchor (core vertex, original id) of `v`.
    pub fn anchor(&self, v: Vertex) -> Vertex {
        self.anchor[v as usize]
    }

    /// Tree distance between two vertices sharing an anchor, via the LCA of
    /// their parent chains.
    fn tree_distance(&self, mut u: Vertex, mut v: Vertex) -> u32 {
        let mut du = self.depth[u as usize];
        let mut dv = self.depth[v as usize];
        let mut dist = 0u32;
        while du > dv {
            u = self.parent[u as usize];
            du -= 1;
            dist += 1;
        }
        while dv > du {
            v = self.parent[v as usize];
            dv -= 1;
            dist += 1;
        }
        while u != v {
            u = self.parent[u as usize];
            v = self.parent[v as usize];
            dist += 2;
        }
        dist
    }
}

/// A pruned-landmark-labeling index over the peeled core, answering
/// distance queries on the *original* graph.
#[derive(Clone, Debug)]
pub struct ReducedPllIndex {
    peeling: Peeling,
    core_index: PllIndex,
}

impl ReducedPllIndex {
    /// Peels `g` and builds the core index with `builder`.
    pub fn build(g: &CsrGraph, builder: &IndexBuilder) -> Result<ReducedPllIndex> {
        let peeling = Peeling::peel(g);
        let core_index = builder.build(peeling.core())?;
        Ok(ReducedPllIndex {
            peeling,
            core_index,
        })
    }

    /// The peeling (core statistics, anchors).
    pub fn peeling(&self) -> &Peeling {
        &self.peeling
    }

    /// The index over the core.
    pub fn core_index(&self) -> &PllIndex {
        &self.core_index
    }

    /// Exact distance between original vertices `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn distance(&self, u: Vertex, v: Vertex) -> Option<u32> {
        assert!(
            (u as usize) < self.peeling.num_vertices(),
            "vertex {u} out of range"
        );
        assert!(
            (v as usize) < self.peeling.num_vertices(),
            "vertex {v} out of range"
        );
        if u == v {
            return Some(0);
        }
        let (au, av) = (self.peeling.anchor(u), self.peeling.anchor(v));
        if au == av {
            // Same fringe tree (or both equal to the same core vertex):
            // the unique tree path is shortest — any detour would re-enter
            // through the shared anchor the tree path already uses at most
            // once.
            return Some(self.peeling.tree_distance(u, v));
        }
        let core_u = self.peeling.core_id[au as usize];
        let core_v = self.peeling.core_id[av as usize];
        let dcore = self.core_index.distance(core_u, core_v)?;
        Some(self.peeling.depth(u) + dcore + self.peeling.depth(v))
    }

    /// Index bytes (core labels only; the peeling costs 16 bytes/vertex).
    pub fn memory_bytes(&self) -> usize {
        self.core_index.memory_bytes() + self.peeling.num_vertices() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pll_graph::gen;
    use pll_graph::traversal::bfs::BfsEngine;

    fn check_reduced(g: &CsrGraph) -> ReducedPllIndex {
        let reduced =
            ReducedPllIndex::build(g, &IndexBuilder::new().bit_parallel_roots(2)).unwrap();
        let n = g.num_vertices();
        let mut engine = BfsEngine::new(n);
        for s in 0..n as Vertex {
            let d = engine.run(g, s).to_vec();
            for t in 0..n as Vertex {
                let expect = (d[t as usize] != u32::MAX).then_some(d[t as usize]);
                assert_eq!(reduced.distance(s, t), expect, "pair ({s}, {t})");
            }
        }
        reduced
    }

    #[test]
    fn trees_peel_to_a_point() {
        let g = gen::balanced_tree(3, 4).unwrap();
        let reduced = check_reduced(&g);
        assert_eq!(reduced.peeling().core().num_vertices(), 1);
        assert_eq!(reduced.peeling().num_peeled(), g.num_vertices() - 1);
    }

    #[test]
    fn caterpillar_core_is_empty_ish() {
        let g = gen::caterpillar(30, 3).unwrap();
        let reduced = check_reduced(&g);
        assert!(reduced.peeling().core().num_vertices() <= 2);
    }

    #[test]
    fn cycle_is_all_core() {
        let g = gen::cycle(12).unwrap();
        let reduced = check_reduced(&g);
        assert_eq!(reduced.peeling().num_peeled(), 0);
        assert_eq!(reduced.peeling().core().num_edges(), 12);
    }

    #[test]
    fn fringe_heavy_random_graphs() {
        for seed in [1, 2, 3] {
            // BA with m = 1 beyond a small clique: tree-like with a core.
            let g = gen::barabasi_albert(120, 1, seed).unwrap();
            check_reduced(&g);
            let g = gen::chung_lu(120, 2.5, 3.0, seed).unwrap();
            check_reduced(&g);
        }
    }

    #[test]
    fn structured_graphs() {
        check_reduced(&gen::path(30).unwrap());
        check_reduced(&gen::star(20).unwrap());
        check_reduced(&gen::grid(5, 5).unwrap());
        check_reduced(&gen::erdos_renyi_gnm(80, 120, 7).unwrap());
    }

    #[test]
    fn disconnected_graph_with_tree_components() {
        let g = CsrGraph::from_edges(9, &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 3), (5, 6), (6, 7)])
            .unwrap();
        let reduced = check_reduced(&g);
        // Component {0,1,2} is a path: peels to one vertex. Component
        // {3,4,5} is a triangle with a pendant path 5-6-7.
        assert!(reduced.peeling().num_peeled() >= 4);
        assert_eq!(reduced.distance(0, 3), None);
        assert_eq!(reduced.distance(8, 8), Some(0));
    }

    #[test]
    fn core_shrinks_on_scale_free_graphs() {
        let g = gen::chung_lu(3000, 2.2, 4.0, 9).unwrap();
        let reduced =
            ReducedPllIndex::build(&g, &IndexBuilder::new().bit_parallel_roots(4)).unwrap();
        let full = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
        let core_frac = reduced.peeling().core().num_vertices() as f64 / g.num_vertices() as f64;
        assert!(core_frac < 0.9, "core fraction {core_frac}");
        // Sampled agreement with the full index.
        for s in (0..3000u32).step_by(67) {
            for t in (0..3000u32).step_by(71) {
                assert_eq!(reduced.distance(s, t), full.distance(s, t));
            }
        }
    }

    use pll_graph::CsrGraph;
}
