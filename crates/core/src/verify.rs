//! Correctness verification against BFS ground truth (test/bench support).

use crate::index::PllIndex;
use crate::types::Vertex;
use pll_graph::traversal::bfs::BfsEngine;
use pll_graph::{CsrGraph, Xoshiro256pp, INF_U32};

/// A query whose indexed answer disagreed with BFS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mismatch {
    /// Source vertex.
    pub s: Vertex,
    /// Target vertex.
    pub t: Vertex,
    /// BFS ground truth (`None` = disconnected).
    pub expected: Option<u32>,
    /// Index answer.
    pub got: Option<u32>,
}

/// Checks every pair `(s, t)` — O(n·m + n²) — and returns the first
/// mismatch, if any. Small graphs only.
pub fn verify_exhaustive(g: &CsrGraph, index: &PllIndex) -> Result<(), Mismatch> {
    let n = g.num_vertices();
    let mut engine = BfsEngine::new(n);
    for s in 0..n as Vertex {
        let dist = engine.run(g, s).to_vec();
        for t in 0..n as Vertex {
            let expected = (dist[t as usize] != INF_U32).then_some(dist[t as usize]);
            let got = index.distance(s, t);
            if got != expected {
                return Err(Mismatch {
                    s,
                    t,
                    expected,
                    got,
                });
            }
        }
    }
    Ok(())
}

/// Checks `samples` random pairs (each verified by a single-pair BFS) and
/// returns the first mismatch, if any.
pub fn verify_sampled(
    g: &CsrGraph,
    index: &PllIndex,
    samples: usize,
    seed: u64,
) -> Result<(), Mismatch> {
    let n = g.num_vertices();
    if n == 0 {
        return Ok(());
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut engine = BfsEngine::new(n);
    for _ in 0..samples {
        let s = rng.next_below(n as u64) as Vertex;
        let t = rng.next_below(n as u64) as Vertex;
        let expected = engine.distance(g, s, t);
        let got = index.distance(s, t);
        if got != expected {
            return Err(Mismatch {
                s,
                t,
                expected,
                got,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuilder;
    use pll_graph::gen;

    #[test]
    fn exhaustive_passes_on_correct_index() {
        let g = gen::erdos_renyi_gnm(60, 150, 4).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        assert_eq!(verify_exhaustive(&g, &idx), Ok(()));
    }

    #[test]
    fn sampled_passes_on_correct_index() {
        let g = gen::barabasi_albert(400, 3, 9).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(8).build(&g).unwrap();
        assert_eq!(verify_sampled(&g, &idx, 500, 11), Ok(()));
    }

    #[test]
    fn detects_wrong_index() {
        // Index built for a DIFFERENT graph must produce mismatches.
        let g1 = gen::path(30).unwrap();
        let g2 = gen::cycle(30).unwrap();
        let idx = IndexBuilder::new()
            .bit_parallel_roots(0)
            .build(&g1)
            .unwrap();
        let err = verify_exhaustive(&g2, &idx).unwrap_err();
        assert_ne!(err.expected, err.got);
    }

    #[test]
    fn empty_graph_verifies() {
        let g = pll_graph::CsrGraph::empty(0);
        let idx = IndexBuilder::new().build(&g).unwrap();
        assert_eq!(verify_exhaustive(&g, &idx), Ok(()));
        assert_eq!(verify_sampled(&g, &idx, 10, 1), Ok(()));
    }
}
