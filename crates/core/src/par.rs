//! Batch-parallel index construction with deterministic, sequential-equal
//! output — for **all four** graph variants.
//!
//! The paper's Algorithm 1 is inherently sequential: one pruned search per
//! vertex, in rank order, each relying on the labels of every earlier
//! root. Follow-up work (notably the PSL labelling of Li et al., *"A
//! Highly Scalable Labelling Approach for Exact Distance Queries in
//! Complex Networks"*) observed that the rank-order dependency can be
//! relaxed: searches whose roots are *adjacent in rank* barely prune each
//! other, so they can run concurrently as long as the result is fixed up
//! to match the canonical labeling. This module implements that idea as a
//! variant-generic batched root-parallel substrate:
//!
//! 1. **Batching.** Remaining roots are processed in rank-ordered batches.
//!    The first few roots run in singleton batches (they are the
//!    high-degree hubs whose labels do nearly all later pruning, and their
//!    searches would pollute each other); batch capacity then grows
//!    geometrically up to a multiple of the thread count.
//! 2. **Concurrent relaxed searches.** Each batch's pruned searches run on
//!    worker threads (std scoped threads; roots are pulled from a shared
//!    atomic cursor so slow roots don't straggle a static partition). A
//!    worker owns thread-local lazily-reset scratch (§4.5) and runs the
//!    variant's per-root search — one pruned BFS for the undirected
//!    unweighted index, a forward/backward pruned BFS *pair* for the
//!    directed index, a pruned Dijkstra with a thread-local binary heap
//!    for the weighted index, and a forward/backward pruned Dijkstra pair
//!    for the weighted directed index. The search prunes against the
//!    *committed* labels (all batches before this one) and **buffers** its
//!    would-be label entries instead of publishing them.
//! 3. **Rank-order commit + re-prune.** At the batch barrier the buffered
//!    entries are committed strictly in rank order. An in-batch search
//!    from root `r` could not see labels produced by same-batch roots
//!    `x < r`, so it may have buffered entries the sequential build would
//!    have pruned. Before appending an entry `(r, u, d)`, a merge-join
//!    over the *fresh* (same-batch, already-committed) suffixes of the two
//!    relevant labels checks for a hub `x` with `d(x→u) + d(r→x) ≤ d`
//!    (sides oriented per variant); certified entries are dropped.
//!    Per-thread visit counters are merged into [`ConstructionStats`] at
//!    the same barrier.
//!
//! The pruned searches are not the only parallel piece: Phase 0 and the
//! final flatten ride the same thread count, so the parallel build has no
//! sequential Amdahl floor beyond the per-root commits. The ordering fans
//! out over the workers ([`crate::order::compute_order_threaded`]: chunked
//! degree-key extraction + chunk sort + k-way merge, or the sampled
//! closeness BFSs one-per-worker), the relabelling translates disjoint
//! rank chunks after a checked sequential prefix sum
//! ([`pll_graph::reorder::apply_order_threaded`]), and the flatten copies
//! label chunks into disjoint arena slices ([`LabelSet`]`::from_vecs`).
//! Each of those is *output-identical* at any thread count (total
//! comparators, associative `u64` reductions, disjoint writes), so the
//! byte-identical guarantee below is preserved end to end.
//!
//! The mechanics above — batching, fan-out, commit discipline — are shared
//! across variants through the [`PrunedSearch`] trait and the
//! [`run_batched`] driver; each variant contributes only its relaxed
//! per-root search and its commit-time re-prune. The undirected
//! implementation lives here; the directed, weighted and weighted-directed
//! implementations live with their sequential builders in
//! [`crate::directed`], [`crate::weighted`] and
//! [`crate::weighted_directed`].
//!
//! # Why the output is byte-identical to the sequential build
//!
//! The pruned labeling is *canonical*: whether `(r, u, d(r,u))` is in the
//! label set depends only on the vertex order, through the recursive (in
//! rank) characterisation — `(r, u)` is labeled iff the bit-parallel bound
//! does not certify `d(r,u)` and no hub `x < r` with `(x,r)` and `(x,u)`
//! both labeled has `d(x,u) + d(x,r) ≤ d(r,u)`. Relative to the
//! sequential run, an in-batch search only *weakens* pruning (it misses
//! same-batch certificates), so it buffers a superset of the sequential
//! entries with identical distances. The commit-time re-prune applies
//! exactly the missing same-batch certificates, in rank order, against
//! already-canonical earlier labels — restoring the characterisation
//! batch by batch, by induction. Two standard lemmas close the argument
//! for vertices the sequential search never visited: certificates
//! propagate down shortest paths (if `x` certifies a cut ancestor of `u'`,
//! it certifies `u'`), and for the minimal-rank true-distance certificate
//! `x`, either `x` labels both endpoints or a bit-parallel root already
//! certifies the pair — so every extra visit is caught by the search's own
//! BP/committed-label tests or by the re-prune join. Both lemmas use only
//! the (directed) triangle inequality and the 2-hop cover invariant, so
//! the argument carries verbatim to the directed variants (with the two
//! label sides oriented along the search direction) and to the weighted
//! variants (with additive edge weights and settle-time pruning).
//!
//! Two deliberate deviations from bit-exactness, both documented on
//! [`IndexBuilder::threads`]: graphs whose pruned searches would exceed
//! the 8-bit distance ceiling can surface [`PllError::DiameterTooLarge`]
//! on a root the sequential build would have pruned short of the ceiling
//! (the error is still correct — such graphs need the weighted index),
//! and `abort_after_seconds` triggers at batch rather than root
//! granularity. `abort_if_avg_label_exceeds` fires at exactly the same
//! root as the sequential build, because committed totals match after
//! every root. The weighted variants have no such caveat: their searches
//! accumulate distances in 64-bit scratch and the `u32` label-overflow
//! check runs at *commit* time on entries that survive the re-prune —
//! exactly the entries the sequential build labels — so
//! [`PllError::WeightedDistanceOverflow`] fires iff the sequential build
//! fires it.

use crate::bp::{bp_bfs_column, select_bp_roots, BitParallelLabels, BpEntry, BpScratch};
use crate::build::{prune_test, BuildObserver, IndexBuilder, PartialIndex};
use crate::error::{PllError, Result};
use crate::index::PllIndex;
use crate::label::LabelSet;
use crate::order::compute_order_threaded;
use crate::stats::{ConstructionStats, RootStats};
use crate::types::{Dist, Rank, INF8, MAX_DIST};
use pll_graph::reorder::{apply_order_threaded, inverse_permutation};
use pll_graph::CsrGraph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Number of leading pruned-search roots processed in singleton batches.
/// The head of the order is the set of hubs whose labels do nearly all
/// later pruning; running them concurrently would buffer (and then
/// re-prune) label entries for a large fraction of the graph per root.
const SEQUENTIAL_HEAD_ROOTS: usize = 32;

/// Batch capacity cap, as a multiple of the thread count. Large batches
/// amortise the barrier; too-large batches weaken in-batch pruning and
/// inflate the re-prune pass.
const MAX_BATCH_PER_THREAD: usize = 32;

/// Resolves the user-facing thread knob: `0` means one thread per
/// available CPU; other values are clamped to [`max_threads`]. The output
/// is identical at any thread count, so clamping never changes results —
/// it only bounds the per-thread scratch allocation (O(n) bytes each) and
/// spawn count that an absurd request would otherwise attempt.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested.min(max_threads())
    }
}

/// Upper bound on worker threads: four per available CPU (oversubscription
/// beyond that only adds scheduler churn), and never below 16 so
/// determinism tests can exercise multi-worker schedules on small hosts.
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map_or(16, |p| p.get().saturating_mul(4).max(16))
}

/// One graph variant's contribution to the batch-parallel substrate: a
/// relaxed per-root pruned search plus its commit-time re-prune.
///
/// The [`run_batched`] driver owns everything else — rank-ordered
/// batching with a sequential head, the worker fan-out over scoped
/// threads, the thread-local scratch pool, and the strict rank-order
/// commit at each batch barrier. An implementation must uphold two
/// contracts for the driver's sequential-identical guarantee to hold:
///
/// * [`search`](PrunedSearch::search) reads **only** committed label
///   state (plus immutable per-variant context such as the rank-space
///   graph) and buffers its label candidates into the returned
///   [`Run`](PrunedSearch::Run) instead of publishing them. It must visit
///   a superset of the sequential search's labeled vertices, at identical
///   distances — which relaxing the prune tests (by missing same-batch
///   hubs) guarantees for the pruned BFS/Dijkstra family.
/// * [`commit`](PrunedSearch::commit) appends the run's surviving entries
///   to the label state exactly as the sequential build would, dropping
///   every entry certified by a same-batch hub `x` with
///   `batch_first ≤ x < r` (see [`fresh_certificate`]), and returns the
///   root's counters; the driver folds them into [`ConstructionStats`]
///   (`pruned_roots`, `total_visited`, `total_labeled`, `total_pruned`,
///   `repruned`), so no implementation touches the totals itself.
///
/// Invoked in rank order, the two methods therefore reproduce the
/// sequential recursion batch by batch; see the module docs for the full
/// determinism argument.
pub trait PrunedSearch: Sync {
    /// Committed label state: read (shared) by in-flight searches, written
    /// only at the batch barrier by [`commit`](PrunedSearch::commit).
    type State: Sync;
    /// Thread-local scratch (tentative/temp arrays, queue or heap),
    /// allocated once per worker and lazily reset between roots (§4.5).
    type Scratch: Send;
    /// Buffered output of one root's search(es): label candidates in
    /// visit order plus visit/prune counters.
    type Run: Send;

    /// Allocates one worker's scratch.
    fn new_scratch(&self) -> Self::Scratch;

    /// Runs the relaxed pruned search(es) from `r` against the committed
    /// state, buffering label candidates into the returned run.
    fn search(
        &self,
        state: &Self::State,
        r: Rank,
        scratch: &mut Self::Scratch,
    ) -> Result<Self::Run>;

    /// Commits `run` at the batch barrier: re-prunes each buffered entry
    /// against the same-batch hubs in `batch_first..r` and appends the
    /// survivors in the sequential build's order. Returns the root's
    /// counters; the driver folds them into [`ConstructionStats`].
    fn commit(
        &self,
        state: &mut Self::State,
        batch_first: Rank,
        r: Rank,
        run: Self::Run,
    ) -> Result<RootCommit>;
}

/// Per-root outcome of a [`PrunedSearch::commit`], folded into
/// [`ConstructionStats`] by the [`run_batched`] driver.
pub struct RootCommit {
    /// The root's visit/label/prune counters (`pruned` already includes
    /// the commit-time `repruned` entries, preserving
    /// `visited = labeled + pruned`).
    pub stats: RootStats,
    /// Entries buffered by the relaxed search but removed by the
    /// commit-time re-prune (also counted inside `stats.pruned`).
    pub repruned: u32,
}

/// The variant-generic batch-parallel driver: processes `roots` (already
/// in rank order) in growing batches, fanning each batch's searches out
/// over `threads` workers and committing results in rank order at the
/// batch barrier.
///
/// `after_commit` runs after every root's commit with the committed state
/// and that root's stats — the undirected path uses it for build
/// observers and the label-budget abort; an `Err` aborts construction.
/// `abort_seconds` is checked at batch granularity against the driver's
/// own start time.
pub fn run_batched<S: PrunedSearch>(
    search: &S,
    state: &mut S::State,
    roots: &[Rank],
    threads: usize,
    stats: &mut ConstructionStats,
    abort_seconds: Option<f64>,
    mut after_commit: impl FnMut(&S::State, &RootStats, &mut ConstructionStats) -> Result<()>,
) -> Result<()> {
    let started = Instant::now();
    let mut scratches: Vec<S::Scratch> = (0..threads).map(|_| search.new_scratch()).collect();

    let mut pos = 0usize;
    let mut batch_cap = threads;
    while pos < roots.len() {
        let cap = if pos < SEQUENTIAL_HEAD_ROOTS {
            1
        } else {
            batch_cap
        };
        let batch = &roots[pos..(pos + cap).min(roots.len())];
        let batch_first = batch[0];

        // Fan out: workers pull roots from the shared cursor and buffer
        // their label candidates against the committed (pre-batch) state.
        let workers = threads.min(batch.len());
        let cursor = AtomicUsize::new(0);
        let worker_outputs: Vec<Vec<(usize, Result<S::Run>)>> = std::thread::scope(|scope| {
            let cursor = &cursor;
            let state: &S::State = state;
            let handles: Vec<_> = scratches
                .iter_mut()
                .take(workers)
                .map(|ws| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            // ORDERING: Relaxed — work-stealing cursor;
                            // fetch_add is already atomic, and the scope
                            // join below orders the results.
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= batch.len() {
                                break;
                            }
                            out.push((i, search.search(state, batch[i], ws)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("pruned-search worker panicked"))
                .collect()
        });
        let mut runs: Vec<Option<Result<S::Run>>> = (0..batch.len()).map(|_| None).collect();
        for (i, run) in worker_outputs.into_iter().flatten() {
            runs[i] = Some(run);
        }

        // Barrier: commit in rank order, re-pruning each entry against the
        // same-batch hubs its search could not see. Errors are surfaced
        // for the lowest-ranked failing root, like the sequential build.
        for (k, run) in runs.into_iter().enumerate() {
            let r = batch[k];
            let run = run.expect("every batch slot is claimed by exactly one worker")?;
            let committed = search.commit(state, batch_first, r, run)?;
            stats.pruned_roots += 1;
            stats.total_visited += committed.stats.visited as u64;
            stats.total_labeled += committed.stats.labeled as u64;
            stats.total_pruned += committed.stats.pruned as u64;
            stats.repruned += committed.repruned as u64;
            after_commit(state, &committed.stats, stats)?;
        }
        stats.parallel_batches += 1;

        if let Some(seconds) = abort_seconds {
            if started.elapsed().as_secs_f64() > seconds {
                return Err(PllError::TimeBudgetExceeded { seconds });
            }
        }

        pos += batch.len();
        if pos >= SEQUENTIAL_HEAD_ROOTS {
            batch_cap = (batch_cap * 2).min(threads * MAX_BATCH_PER_THREAD);
        }
    }
    Ok(())
}

/// The commit-time re-prune test for a buffered entry `(r, u, d)`: is
/// there a hub `x` from this batch (`batch_first ≤ x < r`) present in
/// both labels with `dist_u(x) + dist_r(x) ≤ d`? `(lu, du)` is the label
/// that receives the entry (the one of `u`, on the side being filled) and
/// `(lr, dr)` the root-side label of `r`; for undirected variants the two
/// sides coincide. Labels are sorted by rank, so the fresh suffixes start
/// at `partition_point` and a short merge-join decides it. Hubs
/// `< batch_first` were already applied by the search's own prune test
/// against the committed labels. Distances are compared in `u64`, which
/// both the 8-bit unweighted and 32-bit weighted label distances embed
/// into losslessly.
pub fn fresh_certificate<D: Copy + Into<u64>>(
    lu: &[Rank],
    du: &[D],
    lr: &[Rank],
    dr: &[D],
    batch_first: Rank,
    r: Rank,
    d: u64,
) -> bool {
    let mut i = lu.partition_point(|&x| x < batch_first);
    let mut j = lr.partition_point(|&x| x < batch_first);
    while i < lu.len() && j < lr.len() {
        let (a, b) = (lu[i], lr[j]);
        if a >= r || b >= r {
            break;
        }
        if a == b {
            if du[i].into() + dr[j].into() <= d {
                return true;
            }
            i += 1;
            j += 1;
        } else if a < b {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

/// A borrowed label side: per-vertex rank and distance vectors.
pub(crate) type LabelSideRef<'a, D> = (&'a [Vec<Rank>], &'a [Vec<D>]);

/// Commits one label side's buffered entries for root `r`: each `(u, d)`
/// is dropped if a same-batch hub certifies it ([`fresh_certificate`]
/// over the fill-side label of `u` and the root-side label of `r`),
/// otherwise converted by `convert` (identity for 8-bit BFS distances;
/// the `u32` overflow check for the weighted variants) and appended to
/// `u`'s fill-side label. `root_side` is `None` when the root-side label
/// lives in the same (mutably borrowed) arrays as the fill side — the
/// single-label undirected/weighted variants — and `Some` for the
/// two-sided directed variants. Increments `labeled`/`repruned` so the
/// caller can fold both sides of a root into one [`RootCommit`].
///
/// Shared by every [`PrunedSearch::commit`] implementation so the
/// re-prune/append discipline cannot drift between variants.
#[allow(clippy::too_many_arguments)]
pub(crate) fn commit_entries<D, E>(
    entries: &[(Rank, E)],
    fill_ranks: &mut [Vec<Rank>],
    fill_dists: &mut [Vec<D>],
    root_side: Option<LabelSideRef<'_, D>>,
    batch_first: Rank,
    r: Rank,
    convert: impl Fn(u64) -> Result<D>,
    labeled: &mut u32,
    repruned: &mut u32,
) -> Result<()>
where
    D: Copy + Into<u64>,
    E: Copy + Into<u64>,
{
    for &(u, d) in entries {
        let d: u64 = d.into();
        let certified = {
            let (rr, rd) = match root_side {
                Some((rr, rd)) => (&rr[r as usize], &rd[r as usize]),
                // Entries this loop already appended to the root's own
                // label all carry rank `r` itself, which the merge-join's
                // `x < r` window excludes — reading the live label is
                // equivalent to a pre-loop snapshot.
                None => (&fill_ranks[r as usize], &fill_dists[r as usize]),
            };
            fresh_certificate(
                &fill_ranks[u as usize],
                &fill_dists[u as usize],
                rr,
                rd,
                batch_first,
                r,
                d,
            )
        };
        if certified {
            *repruned += 1;
            continue;
        }
        fill_ranks[u as usize].push(r);
        fill_dists[u as usize].push(convert(d)?);
        *labeled += 1;
    }
    Ok(())
}

/// Per-worker scratch for relaxed pruned BFSs: the 8-bit tentative (`P`)
/// and temp (`T`) arrays of §4.5, reset lazily between roots, plus the
/// reusable queue. Shared by the undirected and directed BFS variants.
pub(crate) struct BfsScratch {
    pub(crate) tentative: Vec<Dist>,
    pub(crate) temp: Vec<Dist>,
    pub(crate) queue: Vec<Rank>,
}

impl BfsScratch {
    pub(crate) fn new(n: usize) -> Self {
        BfsScratch {
            tentative: vec![INF8; n],
            temp: vec![INF8; n],
            queue: Vec::new(),
        }
    }
}

/// Per-worker scratch for relaxed pruned Dijkstra searches: 64-bit
/// tentative/temp arrays (weighted distances accumulate in `u64` before
/// the `u32` label check), the touched-vertex list driving the lazy
/// reset, and a reusable binary heap. Shared by the weighted and
/// weighted-directed Dijkstra variants.
pub(crate) struct DijkstraScratch {
    pub(crate) tentative: Vec<u64>,
    pub(crate) temp: Vec<u64>,
    pub(crate) touched: Vec<Rank>,
    pub(crate) heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, Rank)>>,
}

impl DijkstraScratch {
    pub(crate) fn new(n: usize) -> Self {
        DijkstraScratch {
            tentative: vec![pll_graph::INF_U64; n],
            temp: vec![pll_graph::INF_U64; n],
            touched: Vec::new(),
            heap: std::collections::BinaryHeap::new(),
        }
    }
}

/// One root's sparse bit-parallel column, as produced by
/// [`bp_bfs_column`] on a worker thread.
type BpColumn = Vec<(Rank, BpEntry)>;

/// Output of one relaxed pruned BFS: buffered `(vertex, distance)` label
/// candidates in visit order, plus the visit/prune counters.
struct RootRun {
    entries: Vec<(Rank, Dist)>,
    visited: u32,
    pruned: u32,
}

/// Committed label state of the undirected build (one label side).
struct UndirectedState {
    label_ranks: Vec<Vec<Rank>>,
    label_dists: Vec<Vec<Dist>>,
}

/// The undirected unweighted [`PrunedSearch`]: one relaxed pruned BFS per
/// root, pruning against committed labels and the fixed bit-parallel
/// labels.
struct UndirectedSearch<'g> {
    h: &'g CsrGraph,
    bp: &'g BitParallelLabels,
}

impl PrunedSearch for UndirectedSearch<'_> {
    type State = UndirectedState;
    type Scratch = BfsScratch;
    type Run = RootRun;

    fn new_scratch(&self) -> BfsScratch {
        BfsScratch::new(self.h.num_vertices())
    }

    fn search(&self, state: &UndirectedState, r: Rank, ws: &mut BfsScratch) -> Result<RootRun> {
        relaxed_pruned_bfs(
            self.h,
            self.bp,
            &state.label_ranks,
            &state.label_dists,
            r,
            ws,
        )
    }

    fn commit(
        &self,
        state: &mut UndirectedState,
        batch_first: Rank,
        r: Rank,
        run: RootRun,
    ) -> Result<RootCommit> {
        let mut labeled = 0u32;
        let mut repruned = 0u32;
        commit_entries(
            &run.entries,
            &mut state.label_ranks,
            &mut state.label_dists,
            None,
            batch_first,
            r,
            |d| Ok(d as Dist),
            &mut labeled,
            &mut repruned,
        )?;
        Ok(RootCommit {
            stats: RootStats {
                rank: r,
                visited: run.visited,
                labeled,
                pruned: run.pruned + repruned,
            },
            repruned,
        })
    }
}

/// The batch-parallel construction path behind
/// [`IndexBuilder::threads`]`(k)` for `k > 1`. `threads` is already
/// resolved (> 1) and `store_parents` has been rejected by the caller.
pub(crate) fn build_parallel(
    builder: &IndexBuilder,
    g: &CsrGraph,
    observer: &mut dyn BuildObserver,
    threads: usize,
) -> Result<PllIndex> {
    let n = g.num_vertices();
    if n > u32::MAX as usize - 1 {
        return Err(PllError::Graph(pll_graph::GraphError::TooLarge {
            what: "vertex count",
        }));
    }

    // Phase 0: ordering + relabelling, output-identical to the
    // sequential path but fanned out over the workers (parallel degree
    // key extraction / chunk sort / closeness BFS sampling, then the
    // two-pass chunked relabelling).
    let t0 = Instant::now();
    let order = compute_order_threaded(g, &builder.ordering, builder.seed, threads)?;
    let order_seconds = t0.elapsed().as_secs_f64();
    let tr = Instant::now();
    let inv = inverse_permutation(&order);
    let h = apply_order_threaded(g, &order, threads)?; // rank-space graph
    let relabel_seconds = tr.elapsed().as_secs_f64();

    let mut stats = ConstructionStats {
        order_seconds,
        relabel_seconds,
        threads,
        per_root: builder.record_root_stats.then(Vec::new),
        ..Default::default()
    };

    let mut usd = vec![false; n];

    // Phase 1: bit-parallel BFSs. Root/neighbour selection is sequential
    // (it only manipulates `usd`), the BFSs themselves fan out over the
    // workers, each with its own BpScratch, and the sparse columns are
    // committed in slot order so errors surface deterministically.
    let t1 = Instant::now();
    let t = builder.bp_roots;
    let specs = select_bp_roots(&h, &mut usd, t);
    let mut bp = BitParallelLabels::new(n, t);
    if !specs.is_empty() {
        let mut columns: Vec<Option<Result<BpColumn>>> = (0..specs.len()).map(|_| None).collect();
        let workers = threads.min(specs.len());
        let cursor = AtomicUsize::new(0);
        let worker_outputs: Vec<Vec<(usize, Result<BpColumn>)>> = std::thread::scope(|scope| {
            let cursor = &cursor;
            let specs = &specs;
            let h = &h;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut scratch = BpScratch::new(n);
                        let mut out = Vec::new();
                        loop {
                            // ORDERING: Relaxed — work-stealing cursor,
                            // as above; scope join orders the results.
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= specs.len() {
                                break;
                            }
                            let (root, sub) = &specs[i];
                            out.push((i, bp_bfs_column(h, *root, sub, &mut scratch)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("bit-parallel worker panicked"))
                .collect()
        });
        for (i, result) in worker_outputs.into_iter().flatten() {
            columns[i] = Some(result);
        }
        for (i, column) in columns.into_iter().enumerate() {
            let column = column.expect("every BP slot is claimed by exactly one worker")?;
            bp.set_root_column(i, specs[i].0, &column);
            stats.bp_roots_used += 1;
        }
    }
    stats.bp_seconds = t1.elapsed().as_secs_f64();

    // Phase 2: batch-parallel pruned BFSs over the generic driver.
    let t2 = Instant::now();
    let label_budget_entries = builder
        .abort_avg_label
        .map(|b| (b * n as f64).ceil() as u64);

    let mut state = UndirectedState {
        label_ranks: vec![Vec::new(); n],
        label_dists: vec![Vec::new(); n],
    };
    observer.after_bp_phase(&PartialIndex {
        label_ranks: &state.label_ranks,
        label_dists: &state.label_dists,
        bp: &bp,
        inv: &inv,
    });

    let roots: Vec<Rank> = (0..n as Rank).filter(|&r| !usd[r as usize]).collect();
    let search = UndirectedSearch { h: &h, bp: &bp };
    run_batched(
        &search,
        &mut state,
        &roots,
        threads,
        &mut stats,
        builder.abort_seconds,
        |st, root_stats, stats| {
            if let Some(per_root) = &mut stats.per_root {
                per_root.push(*root_stats);
            }
            observer.after_root(
                stats.pruned_roots,
                root_stats,
                &PartialIndex {
                    label_ranks: &st.label_ranks,
                    label_dists: &st.label_dists,
                    bp: &bp,
                    inv: &inv,
                },
            );
            if let Some(budget) = label_budget_entries {
                if stats.total_labeled > budget {
                    return Err(PllError::LabelBudgetExceeded {
                        budget: builder.abort_avg_label.unwrap_or_default(),
                    });
                }
            }
            Ok(())
        },
    )?;
    stats.pruned_seconds = t2.elapsed().as_secs_f64();

    let tf = Instant::now();
    let labels = LabelSet::from_vecs(&state.label_ranks, &state.label_dists, None, threads)?;
    stats.flatten_seconds = tf.elapsed().as_secs_f64();
    Ok(PllIndex::from_parts(order, inv, labels, bp, stats))
}

/// One pruned BFS from `r` against the committed label state, buffering
/// label candidates instead of publishing them. Identical to the
/// sequential inner loop of Algorithm 1 except that label writes go to the
/// returned buffer — the pruning predicate is literally shared
/// ([`prune_test`]) and the lazy scratch resets match §4.5 exactly.
fn relaxed_pruned_bfs(
    h: &CsrGraph,
    bp: &BitParallelLabels,
    label_ranks: &[Vec<Rank>],
    label_dists: &[Vec<Dist>],
    r: Rank,
    ws: &mut BfsScratch,
) -> Result<RootRun> {
    // Prepare the temp array from the committed L(r): T[w] = d(w, r).
    {
        let lr = &label_ranks[r as usize];
        let ld = &label_dists[r as usize];
        for (idx, &w) in lr.iter().enumerate() {
            ws.temp[w as usize] = ld[idx];
        }
    }
    let root_bp = bp.entries_of(r).to_vec(); // t is small; copy out

    ws.queue.clear();
    ws.queue.push(r);
    ws.tentative[r as usize] = 0;
    let mut head = 0usize;
    let mut visited = 0u32;
    let mut pruned = 0u32;
    let mut entries: Vec<(Rank, Dist)> = Vec::new();
    let mut error = None;

    'bfs: while head < ws.queue.len() {
        let u = ws.queue[head];
        head += 1;
        let d = ws.tentative[u as usize];
        visited += 1;

        let prune = prune_test(
            &root_bp,
            bp.entries_of(u),
            &label_ranks[u as usize],
            &label_dists[u as usize],
            &ws.temp,
            d,
        );
        if prune {
            pruned += 1;
            continue;
        }

        entries.push((u, d));

        for &w in h.neighbors(u) {
            if ws.tentative[w as usize] == INF8 {
                if d >= MAX_DIST {
                    error = Some(PllError::DiameterTooLarge { root_rank: r });
                    break 'bfs;
                }
                ws.tentative[w as usize] = d + 1;
                ws.queue.push(w);
            }
        }
    }

    // Lazy reset of the touched entries (§4.5 "Initialization") — also on
    // the error path, since the scratch is reused for the next root.
    for &v in &ws.queue {
        ws.tentative[v as usize] = INF8;
    }
    for &w in label_ranks[r as usize].iter() {
        ws.temp[w as usize] = INF8;
    }

    match error {
        Some(e) => Err(e),
        None => Ok(RootRun {
            entries,
            visited,
            pruned,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderingStrategy;
    use pll_graph::gen;

    fn assert_equal_builds(g: &CsrGraph, base: IndexBuilder) {
        let seq = base.clone().threads(1).build(g).unwrap();
        for k in [2usize, 3, 4, 8] {
            let par = base.clone().threads(k).build(g).unwrap();
            assert_eq!(
                seq.labels(),
                par.labels(),
                "LabelSet diverged at threads={k}"
            );
            assert_eq!(
                seq.bit_parallel(),
                par.bit_parallel(),
                "BP labels diverged at threads={k}"
            );
            assert_eq!(seq.order(), par.order(), "order diverged at threads={k}");
            assert_eq!(par.stats().threads, k);
            assert!(par.stats().parallel_batches > 0);
        }
    }

    #[test]
    fn parallel_equals_sequential_on_models() {
        for seed in [1u64, 7, 23] {
            assert_equal_builds(
                &gen::barabasi_albert(600, 3, seed).unwrap(),
                IndexBuilder::new().bit_parallel_roots(4),
            );
            assert_equal_builds(
                &gen::erdos_renyi_gnm(400, 1200, seed).unwrap(),
                IndexBuilder::new().bit_parallel_roots(2),
            );
            assert_equal_builds(
                &gen::forest_fire(300, 0.3, seed).unwrap(),
                IndexBuilder::new().bit_parallel_roots(0),
            );
        }
    }

    #[test]
    fn parallel_equals_sequential_across_orderings() {
        let g = gen::barabasi_albert(400, 2, 11).unwrap();
        for strat in [
            OrderingStrategy::Degree,
            OrderingStrategy::Random,
            OrderingStrategy::Closeness { samples: 8 },
        ] {
            assert_equal_builds(
                &g,
                IndexBuilder::new().ordering(strat).bit_parallel_roots(2),
            );
        }
    }

    #[test]
    fn parallel_on_disconnected_and_tiny_graphs() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        assert_equal_builds(&g, IndexBuilder::new().bit_parallel_roots(0));
        assert_equal_builds(&g, IndexBuilder::new().bit_parallel_roots(2));

        let empty = CsrGraph::empty(0);
        let idx = IndexBuilder::new().threads(4).build(&empty).unwrap();
        assert_eq!(idx.num_vertices(), 0);

        let single = CsrGraph::empty(1);
        let idx = IndexBuilder::new().threads(4).build(&single).unwrap();
        assert_eq!(idx.distance(0, 0), Some(0));
    }

    #[test]
    fn parallel_is_exact() {
        use pll_graph::traversal::bfs::BfsEngine;
        let g = gen::erdos_renyi_gnm(150, 400, 5).unwrap();
        let idx = IndexBuilder::new()
            .bit_parallel_roots(2)
            .threads(4)
            .build(&g)
            .unwrap();
        let n = g.num_vertices();
        let mut engine = BfsEngine::new(n);
        for s in 0..n as Rank {
            let d = engine.run(&g, s).to_vec();
            for t in 0..n as Rank {
                let expect = (d[t as usize] != u32::MAX).then_some(d[t as usize]);
                assert_eq!(idx.distance(s, t), expect, "pair ({s}, {t})");
            }
        }
    }

    #[test]
    fn parallel_stats_are_consistent() {
        let g = gen::barabasi_albert(500, 3, 9).unwrap();
        let par = IndexBuilder::new()
            .bit_parallel_roots(4)
            .threads(4)
            .record_root_stats(true)
            .build(&g)
            .unwrap();
        let s = par.stats();
        assert_eq!(s.threads, 4);
        assert_eq!(s.bp_roots_used, 4);
        assert!(s.parallel_batches > 0);
        assert_eq!(s.total_visited, s.total_labeled + s.total_pruned);
        assert_eq!(s.per_root.as_ref().unwrap().len(), s.pruned_roots);
        for rs in s.per_root.as_ref().unwrap() {
            assert_eq!(rs.visited, rs.labeled + rs.pruned);
        }
        // The committed label volume matches the sequential build exactly.
        let seq = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
        assert_eq!(s.total_labeled, seq.stats().total_labeled);
    }

    #[test]
    fn parallel_rejects_parent_tracking() {
        let g = gen::path(6).unwrap();
        for threads in [2usize, 0] {
            // threads(0) must fail on every host, even one whose single
            // CPU would resolve "auto" to the sequential path.
            let err = IndexBuilder::new()
                .bit_parallel_roots(0)
                .store_parents(true)
                .threads(threads)
                .build(&g)
                .unwrap_err();
            assert!(
                matches!(err, PllError::IncompatibleOptions { .. }),
                "threads({threads})"
            );
        }
    }

    #[test]
    fn parallel_label_budget_aborts_like_sequential() {
        let g = gen::erdos_renyi_gnm(200, 600, 1).unwrap();
        let err = IndexBuilder::new()
            .ordering(OrderingStrategy::Random)
            .bit_parallel_roots(0)
            .abort_if_avg_label_exceeds(0.5)
            .threads(4)
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PllError::LabelBudgetExceeded { .. }));
    }

    #[test]
    fn parallel_observer_sees_rank_ordered_commits() {
        struct Probe {
            last_rank: Option<Rank>,
            roots_seen: usize,
        }
        impl BuildObserver for Probe {
            fn after_root(&mut self, k: usize, stats: &RootStats, _view: &PartialIndex<'_>) {
                self.roots_seen += 1;
                assert_eq!(k, self.roots_seen);
                if let Some(last) = self.last_rank {
                    assert!(stats.rank > last, "commits must be rank-ordered");
                }
                self.last_rank = Some(stats.rank);
            }
        }
        let g = gen::barabasi_albert(300, 2, 4).unwrap();
        let mut probe = Probe {
            last_rank: None,
            roots_seen: 0,
        };
        let idx = IndexBuilder::new()
            .bit_parallel_roots(2)
            .threads(4)
            .build_with_observer(&g, &mut probe)
            .unwrap();
        assert_eq!(probe.roots_seen, idx.stats().pruned_roots);
    }

    #[test]
    fn resolve_threads_auto_detects_and_clamps() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
        assert!(resolve_threads(usize::MAX) <= max_threads());
        assert!(max_threads() >= 16);
    }

    #[test]
    fn fresh_certificate_respects_batch_window() {
        // u's label: hubs 2 (d=1), 5 (d=1); r's label: hubs 2 (d=1), 5 (d=2).
        let lu = vec![2u32, 5];
        let du = vec![1u8, 1];
        let lr = vec![2u32, 5];
        let dr = vec![1u8, 2];
        // Hub 2 certifies d=2 when the batch window includes it...
        assert!(fresh_certificate(&lu, &du, &lr, &dr, 0, 10, 2));
        // ...but not when the window starts after it (hub 5 needs d ≥ 3).
        assert!(!fresh_certificate(&lu, &du, &lr, &dr, 3, 10, 2));
        assert!(fresh_certificate(&lu, &du, &lr, &dr, 3, 10, 3));
        // Hubs at or above the committing root never certify.
        assert!(!fresh_certificate(&lu, &du, &lr, &dr, 0, 2, 9));
    }
}
