//! Batch-parallel index construction with deterministic, sequential-equal
//! output.
//!
//! The paper's Algorithm 1 is inherently sequential: one pruned BFS per
//! vertex, in rank order, each relying on the labels of every earlier
//! root. Follow-up work (notably the PSL labelling of Li et al., *"A
//! Highly Scalable Labelling Approach for Exact Distance Queries in
//! Complex Networks"*) observed that the rank-order dependency can be
//! relaxed: BFSs whose roots are *adjacent in rank* barely prune each
//! other, so they can run concurrently as long as the result is fixed up
//! to match the canonical labeling. This module implements that idea as a
//! batched root-parallel scheme:
//!
//! 1. **Batching.** Remaining roots are processed in rank-ordered batches.
//!    The first few roots run in singleton batches (they are the
//!    high-degree hubs whose labels do nearly all later pruning, and their
//!    BFSs would pollute each other); batch capacity then grows
//!    geometrically up to a multiple of the thread count.
//! 2. **Concurrent relaxed BFSs.** Each batch's pruned BFSs run on worker
//!    threads (std scoped threads; roots are pulled from a shared atomic
//!    cursor so slow roots don't straggle a static partition). A worker
//!    owns thread-local 8-bit tentative/temp scratch arrays, reset lazily
//!    exactly as §4.5 prescribes. The BFS prunes against the *committed*
//!    labels (all batches before this one) and the fixed bit-parallel
//!    labels, and **buffers** its would-be label entries instead of
//!    publishing them.
//! 3. **Rank-order commit + re-prune.** At the batch barrier the buffered
//!    entries are committed strictly in rank order. An in-batch BFS from
//!    root `r` could not see labels produced by same-batch roots `x < r`,
//!    so it may have buffered entries the sequential build would have
//!    pruned. Before appending an entry `(r, u, d)`, a merge-join over the
//!    *fresh* (same-batch, already-committed) suffixes of `L(u)` and
//!    `L(r)` checks for a hub `x` with `d(x,u) + d(x,r) ≤ d`; certified
//!    entries are dropped. Per-thread visit counters are merged into
//!    [`ConstructionStats`] at the same barrier.
//!
//! # Why the output is byte-identical to the sequential build
//!
//! The pruned labeling is *canonical*: whether `(r, u, d(r,u))` is in the
//! label set depends only on the vertex order, through the recursive (in
//! rank) characterisation — `(r, u)` is labeled iff the bit-parallel bound
//! does not certify `d(r,u)` and no hub `x < r` with `(x,r)` and `(x,u)`
//! both labeled has `d(x,u) + d(x,r) ≤ d(r,u)`. Relative to the
//! sequential run, an in-batch BFS only *weakens* pruning (it misses
//! same-batch certificates), so it buffers a superset of the sequential
//! entries with identical distances. The commit-time re-prune applies
//! exactly the missing same-batch certificates, in rank order, against
//! already-canonical earlier labels — restoring the characterisation
//! batch by batch, by induction. Two standard lemmas close the argument
//! for vertices the sequential BFS never visited: certificates propagate
//! down shortest paths (if `x` certifies a cut ancestor of `u'`, it
//! certifies `u'`), and for the minimal-rank true-distance certificate
//! `x`, either `x` labels both endpoints or a bit-parallel root already
//! certifies the pair — so every extra visit is caught by the BFS's own
//! BP/committed-label tests or by the re-prune join.
//!
//! Two deliberate deviations from bit-exactness, both documented on
//! [`IndexBuilder::threads`]: graphs whose pruned searches would exceed
//! the 8-bit distance ceiling can surface [`PllError::DiameterTooLarge`]
//! on a root the sequential build would have pruned short of the ceiling
//! (the error is still correct — such graphs need the weighted index),
//! and `abort_after_seconds` triggers at batch rather than root
//! granularity. `abort_if_avg_label_exceeds` fires at exactly the same
//! root as the sequential build, because committed totals match after
//! every root.

use crate::bp::{bp_bfs_column, select_bp_roots, BitParallelLabels, BpEntry, BpScratch};
use crate::build::{prune_test, BuildObserver, IndexBuilder, PartialIndex};
use crate::error::{PllError, Result};
use crate::index::PllIndex;
use crate::label::LabelSet;
use crate::order::compute_order;
use crate::stats::{ConstructionStats, RootStats};
use crate::types::{Dist, Rank, INF8, MAX_DIST};
use pll_graph::reorder::{apply_order, inverse_permutation};
use pll_graph::CsrGraph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Number of leading pruned-BFS roots processed in singleton batches. The
/// head of the order is the set of hubs whose labels do nearly all later
/// pruning; running them concurrently would buffer (and then re-prune)
/// label entries for a large fraction of the graph per root.
const SEQUENTIAL_HEAD_ROOTS: usize = 32;

/// Batch capacity cap, as a multiple of the thread count. Large batches
/// amortise the barrier; too-large batches weaken in-batch pruning and
/// inflate the re-prune pass.
const MAX_BATCH_PER_THREAD: usize = 32;

/// Resolves the user-facing thread knob: `0` means one thread per
/// available CPU; other values are clamped to [`max_threads`]. The output
/// is identical at any thread count, so clamping never changes results —
/// it only bounds the per-thread scratch allocation (O(n) bytes each) and
/// spawn count that an absurd request would otherwise attempt.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        requested.min(max_threads())
    }
}

/// Upper bound on worker threads: four per available CPU (oversubscription
/// beyond that only adds scheduler churn), and never below 16 so
/// determinism tests can exercise multi-worker schedules on small hosts.
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map_or(16, |p| p.get().saturating_mul(4).max(16))
}

/// Per-worker scratch for relaxed pruned BFSs: the 8-bit tentative (`P`)
/// and temp (`T`) arrays of §4.5, reset lazily between roots, plus the
/// reusable queue.
struct WorkerScratch {
    tentative: Vec<Dist>,
    temp: Vec<Dist>,
    queue: Vec<Rank>,
}

impl WorkerScratch {
    fn new(n: usize) -> Self {
        WorkerScratch {
            tentative: vec![INF8; n],
            temp: vec![INF8; n],
            queue: Vec::new(),
        }
    }
}

/// One root's sparse bit-parallel column, as produced by
/// [`bp_bfs_column`] on a worker thread.
type BpColumn = Vec<(Rank, BpEntry)>;

/// Output of one relaxed pruned BFS: buffered `(vertex, distance)` label
/// candidates in visit order, plus the visit/prune counters.
struct RootRun {
    entries: Vec<(Rank, Dist)>,
    visited: u32,
    pruned: u32,
}

/// The batch-parallel construction path behind
/// [`IndexBuilder::threads`]`(k)` for `k > 1`. `threads` is already
/// resolved (> 1) and `store_parents` has been rejected by the caller.
pub(crate) fn build_parallel(
    builder: &IndexBuilder,
    g: &CsrGraph,
    observer: &mut dyn BuildObserver,
    threads: usize,
) -> Result<PllIndex> {
    let n = g.num_vertices();
    if n > u32::MAX as usize - 1 {
        return Err(PllError::Graph(pll_graph::GraphError::TooLarge {
            what: "vertex count",
        }));
    }

    // Phase 0: ordering + relabelling, identical to the sequential path.
    let t0 = Instant::now();
    let order = compute_order(g, &builder.ordering, builder.seed)?;
    let inv = inverse_permutation(&order);
    let h = apply_order(g, &order); // rank-space graph
    let order_seconds = t0.elapsed().as_secs_f64();

    let mut stats = ConstructionStats {
        order_seconds,
        threads,
        per_root: builder.record_root_stats.then(Vec::new),
        ..Default::default()
    };

    let mut usd = vec![false; n];

    // Phase 1: bit-parallel BFSs. Root/neighbour selection is sequential
    // (it only manipulates `usd`), the BFSs themselves fan out over the
    // workers, each with its own BpScratch, and the sparse columns are
    // committed in slot order so errors surface deterministically.
    let t1 = Instant::now();
    let t = builder.bp_roots;
    let specs = select_bp_roots(&h, &mut usd, t);
    let mut bp = BitParallelLabels::new(n, t);
    if !specs.is_empty() {
        let mut columns: Vec<Option<Result<BpColumn>>> = (0..specs.len()).map(|_| None).collect();
        let workers = threads.min(specs.len());
        let cursor = AtomicUsize::new(0);
        let worker_outputs: Vec<Vec<(usize, Result<BpColumn>)>> = std::thread::scope(|scope| {
            let cursor = &cursor;
            let specs = &specs;
            let h = &h;
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut scratch = BpScratch::new(n);
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= specs.len() {
                                break;
                            }
                            let (root, sub) = &specs[i];
                            out.push((i, bp_bfs_column(h, *root, sub, &mut scratch)));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("bit-parallel worker panicked"))
                .collect()
        });
        for (i, result) in worker_outputs.into_iter().flatten() {
            columns[i] = Some(result);
        }
        for (i, column) in columns.into_iter().enumerate() {
            let column = column.expect("every BP slot is claimed by exactly one worker")?;
            bp.set_root_column(i, specs[i].0, &column);
            stats.bp_roots_used += 1;
        }
    }
    stats.bp_seconds = t1.elapsed().as_secs_f64();

    // Phase 2: batch-parallel pruned BFSs.
    let t2 = Instant::now();
    let mut label_ranks: Vec<Vec<Rank>> = vec![Vec::new(); n];
    let mut label_dists: Vec<Vec<Dist>> = vec![Vec::new(); n];
    let label_budget_entries = builder
        .abort_avg_label
        .map(|b| (b * n as f64).ceil() as u64);

    observer.after_bp_phase(&PartialIndex {
        label_ranks: &label_ranks,
        label_dists: &label_dists,
        bp: &bp,
        inv: &inv,
    });

    let roots: Vec<Rank> = (0..n as Rank).filter(|&r| !usd[r as usize]).collect();
    let mut scratches: Vec<WorkerScratch> = (0..threads).map(|_| WorkerScratch::new(n)).collect();

    let mut pos = 0usize;
    let mut batch_cap = threads;
    while pos < roots.len() {
        let cap = if pos < SEQUENTIAL_HEAD_ROOTS {
            1
        } else {
            batch_cap
        };
        let batch = &roots[pos..(pos + cap).min(roots.len())];
        let batch_first = batch[0];

        // Fan out: workers pull roots from the shared cursor and buffer
        // their label candidates against the committed (pre-batch) state.
        let workers = threads.min(batch.len());
        let cursor = AtomicUsize::new(0);
        let worker_outputs: Vec<Vec<(usize, Result<RootRun>)>> = std::thread::scope(|scope| {
            let cursor = &cursor;
            let h = &h;
            let bp = &bp;
            let label_ranks = &label_ranks;
            let label_dists = &label_dists;
            let handles: Vec<_> = scratches
                .iter_mut()
                .take(workers)
                .map(|ws| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= batch.len() {
                                break;
                            }
                            out.push((
                                i,
                                relaxed_pruned_bfs(h, bp, label_ranks, label_dists, batch[i], ws),
                            ));
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("pruned-BFS worker panicked"))
                .collect()
        });
        let mut runs: Vec<Option<Result<RootRun>>> = (0..batch.len()).map(|_| None).collect();
        for (i, run) in worker_outputs.into_iter().flatten() {
            runs[i] = Some(run);
        }

        // Barrier: commit in rank order, re-pruning each entry against the
        // same-batch hubs its BFS could not see. Errors are surfaced for
        // the lowest-ranked failing root, like the sequential build.
        for (k, run) in runs.into_iter().enumerate() {
            let r = batch[k];
            let run = run.expect("every batch slot is claimed by exactly one worker")?;
            let mut labeled = 0u32;
            let mut repruned = 0u32;
            for &(u, d) in &run.entries {
                if same_batch_certificate(&label_ranks, &label_dists, batch_first, r, u, d) {
                    repruned += 1;
                    continue;
                }
                label_ranks[u as usize].push(r);
                label_dists[u as usize].push(d);
                labeled += 1;
            }
            usd[r as usize] = true;

            stats.pruned_roots += 1;
            stats.total_visited += run.visited as u64;
            stats.total_labeled += labeled as u64;
            stats.total_pruned += (run.pruned + repruned) as u64;
            stats.repruned += repruned as u64;
            let root_stats = RootStats {
                rank: r,
                visited: run.visited,
                labeled,
                pruned: run.pruned + repruned,
            };
            if let Some(per_root) = &mut stats.per_root {
                per_root.push(root_stats);
            }
            observer.after_root(
                stats.pruned_roots,
                &root_stats,
                &PartialIndex {
                    label_ranks: &label_ranks,
                    label_dists: &label_dists,
                    bp: &bp,
                    inv: &inv,
                },
            );

            if let Some(budget) = label_budget_entries {
                if stats.total_labeled > budget {
                    return Err(PllError::LabelBudgetExceeded {
                        budget: builder.abort_avg_label.unwrap_or_default(),
                    });
                }
            }
        }
        stats.parallel_batches += 1;

        if let Some(seconds) = builder.abort_seconds {
            if t2.elapsed().as_secs_f64() > seconds {
                return Err(PllError::TimeBudgetExceeded { seconds });
            }
        }

        pos += batch.len();
        if pos >= SEQUENTIAL_HEAD_ROOTS {
            batch_cap = (batch_cap * 2).min(threads * MAX_BATCH_PER_THREAD);
        }
    }
    stats.pruned_seconds = t2.elapsed().as_secs_f64();

    let labels = LabelSet::from_vecs(&label_ranks, &label_dists, None);
    Ok(PllIndex::from_parts(order, inv, labels, bp, stats))
}

/// One pruned BFS from `r` against the committed label state, buffering
/// label candidates instead of publishing them. Identical to the
/// sequential inner loop of Algorithm 1 except that label writes go to the
/// returned buffer — the pruning predicate is literally shared
/// ([`prune_test`]) and the lazy scratch resets match §4.5 exactly.
fn relaxed_pruned_bfs(
    h: &CsrGraph,
    bp: &BitParallelLabels,
    label_ranks: &[Vec<Rank>],
    label_dists: &[Vec<Dist>],
    r: Rank,
    ws: &mut WorkerScratch,
) -> Result<RootRun> {
    // Prepare the temp array from the committed L(r): T[w] = d(w, r).
    {
        let lr = &label_ranks[r as usize];
        let ld = &label_dists[r as usize];
        for (idx, &w) in lr.iter().enumerate() {
            ws.temp[w as usize] = ld[idx];
        }
    }
    let root_bp = bp.entries_of(r).to_vec(); // t is small; copy out

    ws.queue.clear();
    ws.queue.push(r);
    ws.tentative[r as usize] = 0;
    let mut head = 0usize;
    let mut visited = 0u32;
    let mut pruned = 0u32;
    let mut entries: Vec<(Rank, Dist)> = Vec::new();
    let mut error = None;

    'bfs: while head < ws.queue.len() {
        let u = ws.queue[head];
        head += 1;
        let d = ws.tentative[u as usize];
        visited += 1;

        let prune = prune_test(
            &root_bp,
            bp.entries_of(u),
            &label_ranks[u as usize],
            &label_dists[u as usize],
            &ws.temp,
            d,
        );
        if prune {
            pruned += 1;
            continue;
        }

        entries.push((u, d));

        for &w in h.neighbors(u) {
            if ws.tentative[w as usize] == INF8 {
                if d >= MAX_DIST {
                    error = Some(PllError::DiameterTooLarge { root_rank: r });
                    break 'bfs;
                }
                ws.tentative[w as usize] = d + 1;
                ws.queue.push(w);
            }
        }
    }

    // Lazy reset of the touched entries (§4.5 "Initialization") — also on
    // the error path, since the scratch is reused for the next root.
    for &v in &ws.queue {
        ws.tentative[v as usize] = INF8;
    }
    for &w in label_ranks[r as usize].iter() {
        ws.temp[w as usize] = INF8;
    }

    match error {
        Some(e) => Err(e),
        None => Ok(RootRun {
            entries,
            visited,
            pruned,
        }),
    }
}

/// The commit-time re-prune test for a buffered entry `(r, u, d)`: is
/// there a hub `x` from this batch (`batch_first ≤ x < r`) labeling both
/// `u` and `r` with `d(x,u) + d(x,r) ≤ d`? Labels are sorted by rank, so
/// the fresh suffixes start at `partition_point` and a short merge-join
/// decides it. Hubs `< batch_first` were already applied by the BFS's own
/// prune test against the committed labels.
fn same_batch_certificate(
    label_ranks: &[Vec<Rank>],
    label_dists: &[Vec<Dist>],
    batch_first: Rank,
    r: Rank,
    u: Rank,
    d: Dist,
) -> bool {
    let lu = &label_ranks[u as usize];
    let du = &label_dists[u as usize];
    let lr = &label_ranks[r as usize];
    let dr = &label_dists[r as usize];
    let mut i = lu.partition_point(|&x| x < batch_first);
    let mut j = lr.partition_point(|&x| x < batch_first);
    while i < lu.len() && j < lr.len() {
        let (a, b) = (lu[i], lr[j]);
        if a >= r || b >= r {
            break;
        }
        if a == b {
            if du[i] as u32 + dr[j] as u32 <= d as u32 {
                return true;
            }
            i += 1;
            j += 1;
        } else if a < b {
            i += 1;
        } else {
            j += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::OrderingStrategy;
    use pll_graph::gen;

    fn assert_equal_builds(g: &CsrGraph, base: IndexBuilder) {
        let seq = base.clone().threads(1).build(g).unwrap();
        for k in [2usize, 3, 4, 8] {
            let par = base.clone().threads(k).build(g).unwrap();
            assert_eq!(
                seq.labels(),
                par.labels(),
                "LabelSet diverged at threads={k}"
            );
            assert_eq!(
                seq.bit_parallel(),
                par.bit_parallel(),
                "BP labels diverged at threads={k}"
            );
            assert_eq!(seq.order(), par.order(), "order diverged at threads={k}");
            assert_eq!(par.stats().threads, k);
            assert!(par.stats().parallel_batches > 0);
        }
    }

    #[test]
    fn parallel_equals_sequential_on_models() {
        for seed in [1u64, 7, 23] {
            assert_equal_builds(
                &gen::barabasi_albert(600, 3, seed).unwrap(),
                IndexBuilder::new().bit_parallel_roots(4),
            );
            assert_equal_builds(
                &gen::erdos_renyi_gnm(400, 1200, seed).unwrap(),
                IndexBuilder::new().bit_parallel_roots(2),
            );
            assert_equal_builds(
                &gen::forest_fire(300, 0.3, seed).unwrap(),
                IndexBuilder::new().bit_parallel_roots(0),
            );
        }
    }

    #[test]
    fn parallel_equals_sequential_across_orderings() {
        let g = gen::barabasi_albert(400, 2, 11).unwrap();
        for strat in [
            OrderingStrategy::Degree,
            OrderingStrategy::Random,
            OrderingStrategy::Closeness { samples: 8 },
        ] {
            assert_equal_builds(
                &g,
                IndexBuilder::new().ordering(strat).bit_parallel_roots(2),
            );
        }
    }

    #[test]
    fn parallel_on_disconnected_and_tiny_graphs() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        assert_equal_builds(&g, IndexBuilder::new().bit_parallel_roots(0));
        assert_equal_builds(&g, IndexBuilder::new().bit_parallel_roots(2));

        let empty = CsrGraph::empty(0);
        let idx = IndexBuilder::new().threads(4).build(&empty).unwrap();
        assert_eq!(idx.num_vertices(), 0);

        let single = CsrGraph::empty(1);
        let idx = IndexBuilder::new().threads(4).build(&single).unwrap();
        assert_eq!(idx.distance(0, 0), Some(0));
    }

    #[test]
    fn parallel_is_exact() {
        use pll_graph::traversal::bfs::BfsEngine;
        let g = gen::erdos_renyi_gnm(150, 400, 5).unwrap();
        let idx = IndexBuilder::new()
            .bit_parallel_roots(2)
            .threads(4)
            .build(&g)
            .unwrap();
        let n = g.num_vertices();
        let mut engine = BfsEngine::new(n);
        for s in 0..n as Rank {
            let d = engine.run(&g, s).to_vec();
            for t in 0..n as Rank {
                let expect = (d[t as usize] != u32::MAX).then_some(d[t as usize]);
                assert_eq!(idx.distance(s, t), expect, "pair ({s}, {t})");
            }
        }
    }

    #[test]
    fn parallel_stats_are_consistent() {
        let g = gen::barabasi_albert(500, 3, 9).unwrap();
        let par = IndexBuilder::new()
            .bit_parallel_roots(4)
            .threads(4)
            .record_root_stats(true)
            .build(&g)
            .unwrap();
        let s = par.stats();
        assert_eq!(s.threads, 4);
        assert_eq!(s.bp_roots_used, 4);
        assert!(s.parallel_batches > 0);
        assert_eq!(s.total_visited, s.total_labeled + s.total_pruned);
        assert_eq!(s.per_root.as_ref().unwrap().len(), s.pruned_roots);
        for rs in s.per_root.as_ref().unwrap() {
            assert_eq!(rs.visited, rs.labeled + rs.pruned);
        }
        // The committed label volume matches the sequential build exactly.
        let seq = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
        assert_eq!(s.total_labeled, seq.stats().total_labeled);
    }

    #[test]
    fn parallel_rejects_parent_tracking() {
        let g = gen::path(6).unwrap();
        for threads in [2usize, 0] {
            // threads(0) must fail on every host, even one whose single
            // CPU would resolve "auto" to the sequential path.
            let err = IndexBuilder::new()
                .bit_parallel_roots(0)
                .store_parents(true)
                .threads(threads)
                .build(&g)
                .unwrap_err();
            assert!(
                matches!(err, PllError::IncompatibleOptions { .. }),
                "threads({threads})"
            );
        }
    }

    #[test]
    fn parallel_label_budget_aborts_like_sequential() {
        let g = gen::erdos_renyi_gnm(200, 600, 1).unwrap();
        let err = IndexBuilder::new()
            .ordering(OrderingStrategy::Random)
            .bit_parallel_roots(0)
            .abort_if_avg_label_exceeds(0.5)
            .threads(4)
            .build(&g)
            .unwrap_err();
        assert!(matches!(err, PllError::LabelBudgetExceeded { .. }));
    }

    #[test]
    fn parallel_observer_sees_rank_ordered_commits() {
        struct Probe {
            last_rank: Option<Rank>,
            roots_seen: usize,
        }
        impl BuildObserver for Probe {
            fn after_root(&mut self, k: usize, stats: &RootStats, _view: &PartialIndex<'_>) {
                self.roots_seen += 1;
                assert_eq!(k, self.roots_seen);
                if let Some(last) = self.last_rank {
                    assert!(stats.rank > last, "commits must be rank-ordered");
                }
                self.last_rank = Some(stats.rank);
            }
        }
        let g = gen::barabasi_albert(300, 2, 4).unwrap();
        let mut probe = Probe {
            last_rank: None,
            roots_seen: 0,
        };
        let idx = IndexBuilder::new()
            .bit_parallel_roots(2)
            .threads(4)
            .build_with_observer(&g, &mut probe)
            .unwrap();
        assert_eq!(probe.roots_seen, idx.stats().pruned_roots);
    }

    #[test]
    fn resolve_threads_auto_detects_and_clamps() {
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
        assert!(resolve_threads(0) >= 1);
        assert!(resolve_threads(usize::MAX) <= max_threads());
        assert!(max_threads() >= 16);
    }
}
