//! Shortest-*path* reconstruction (§6, "Shortest-Path Queries").
//!
//! When the index is built with `store_parents(true)`, each label entry
//! `(u, δ_uv)` carries the parent of `v` in the pruned BFS tree rooted at
//! `u`. A path query finds the minimising hub `w` and ascends the two trees
//! from `s` and `t` towards `w`; concatenating the climbs yields an actual
//! shortest path.

use crate::error::{PllError, Result};
use crate::index::PllIndex;
use crate::storage::{BpStorage, LabelStorage};
use crate::types::{Dist, Rank, Vertex, RANK_SENTINEL};

/// Reconstructs one shortest path from `u` to `v` (inclusive), or `None`
/// when disconnected.
///
/// Generic over the index's storage backends: the same climb runs on an
/// owned index and on a zero-copy v2 view (which is how `pll serve`
/// answers `PATH` frames in place).
///
/// # Errors
///
/// [`PllError::ParentsNotStored`] if the index lacks parent pointers, and
/// [`PllError::VertexOutOfRange`] for bad endpoints.
pub fn shortest_path<O, L, B>(
    index: &PllIndex<O, L, B>,
    u: Vertex,
    v: Vertex,
) -> Result<Option<Vec<Vertex>>>
where
    O: AsRef<[u32]>,
    L: LabelStorage<Dist = Dist>,
    B: BpStorage,
{
    let n = index.num_vertices();
    for x in [u, v] {
        if x as usize >= n {
            return Err(PllError::VertexOutOfRange {
                vertex: x,
                num_vertices: n,
            });
        }
    }
    if !index.has_parents() {
        return Err(PllError::ParentsNotStored);
    }
    if u == v {
        return Ok(Some(vec![u]));
    }
    let Some((dist, hub)) = index.distance_with_hub(u, v) else {
        return Ok(None); // disconnected
    };
    // With parents stored the builder enforces t = 0, so the minimum always
    // comes from a normal label and the hub is present.
    let hub = hub.expect("parent-tracking index has no bit-parallel labels");
    let hub_rank = index.rank_of(hub);

    let climb = |from: Vertex| -> Vec<Rank> {
        let mut seq = Vec::new();
        let mut cur = index.rank_of(from);
        // The climb takes at most `dist` steps; guard against corruption.
        for _ in 0..=dist {
            seq.push(cur);
            if cur == hub_rank {
                return seq;
            }
            match index.labels().hub_parent(cur, hub_rank) {
                Some(p) if p != RANK_SENTINEL => cur = p,
                _ => break,
            }
        }
        seq
    };

    let up = climb(u); // u … hub (rank space)
    let down = climb(v); // v … hub
    debug_assert_eq!(*up.last().unwrap(), hub_rank);
    debug_assert_eq!(*down.last().unwrap(), hub_rank);

    let mut path: Vec<Vertex> = up.iter().map(|&r| index.vertex_at(r)).collect();
    for &r in down.iter().rev().skip(1) {
        path.push(index.vertex_at(r));
    }
    debug_assert_eq!(path.len() as u32, dist + 1);
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuilder;
    use pll_graph::traversal::bfs::BfsEngine;
    use pll_graph::{gen, CsrGraph};

    fn path_index(g: &CsrGraph) -> PllIndex {
        IndexBuilder::new()
            .store_parents(true)
            .bit_parallel_roots(0)
            .build(g)
            .unwrap()
    }

    fn assert_valid_path(g: &CsrGraph, path: &[Vertex], s: Vertex, t: Vertex, dist: u32) {
        assert_eq!(path.first(), Some(&s));
        assert_eq!(path.last(), Some(&t));
        assert_eq!(path.len() as u32, dist + 1, "path length != distance + 1");
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "non-edge {} - {}", w[0], w[1]);
        }
    }

    #[test]
    fn paths_on_structured_graphs() {
        for g in [
            gen::path(10).unwrap(),
            gen::cycle(9).unwrap(),
            gen::grid(4, 5).unwrap(),
            gen::balanced_tree(2, 4).unwrap(),
        ] {
            let idx = path_index(&g);
            let n = g.num_vertices() as Vertex;
            let mut engine = BfsEngine::new(n as usize);
            for s in 0..n {
                for t in 0..n {
                    let d = engine.distance(&g, s, t).unwrap();
                    let p = shortest_path(&idx, s, t).unwrap().unwrap();
                    assert_valid_path(&g, &p, s, t, d);
                }
            }
        }
    }

    #[test]
    fn paths_on_random_graphs() {
        let g = gen::erdos_renyi_gnm(120, 300, 8).unwrap();
        let idx = path_index(&g);
        let mut engine = BfsEngine::new(120);
        for (s, t) in [(0u32, 60u32), (5, 119), (40, 41), (7, 7)] {
            match engine.distance(&g, s, t) {
                Some(d) => {
                    let p = shortest_path(&idx, s, t).unwrap().unwrap();
                    assert_valid_path(&g, &p, s, t, d);
                }
                None => {
                    assert_eq!(shortest_path(&idx, s, t).unwrap(), None);
                }
            }
        }
    }

    #[test]
    fn trivial_and_disconnected() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let idx = path_index(&g);
        assert_eq!(shortest_path(&idx, 1, 1).unwrap(), Some(vec![1]));
        assert_eq!(shortest_path(&idx, 0, 2).unwrap(), None);
        assert_eq!(shortest_path(&idx, 0, 1).unwrap(), Some(vec![0, 1]));
    }

    #[test]
    fn errors() {
        let g = gen::path(4).unwrap();
        let no_parents = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        assert!(matches!(
            shortest_path(&no_parents, 0, 3),
            Err(PllError::ParentsNotStored)
        ));
        let idx = path_index(&g);
        assert!(matches!(
            shortest_path(&idx, 0, 9),
            Err(PllError::VertexOutOfRange { .. })
        ));
    }
}
