//! Disk-resident query answering (§6, "Disk-based Query Answering").
//!
//! "To answer a distance query, our querying algorithm only refers to two
//! contiguous regions. Thus, if the index is disk resident, we can answer
//! queries with two disk seek operations."
//!
//! [`DiskIndex`] keeps only the permutation, the bit-parallel root list and
//! the per-vertex block offset table in memory; each query seeks to and
//! reads the two label blocks (bit-parallel entries + normal label) and
//! merges them exactly like the in-memory index.
//!
//! File layout (little-endian):
//!
//! ```text
//! magic   8 bytes "PLLDISK1"
//! n       u64
//! t       u64
//! order   n × u32
//! roots   t × u32
//! offsets (n+1) × u64      absolute file offset of each rank's block
//! blocks  per rank: t × (u8 + u64 + u64)  bit-parallel entries
//!                   u32 label length (excluding sentinel)
//!                   len × u32 ranks
//!                   len × u8  dists
//! ```

use crate::bp::BpEntry;
use crate::error::{PllError, Result};
use crate::index::PllIndex;
use crate::types::{Rank, Vertex, INF8, INF_QUERY};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"PLLDISK1";
const BP_ENTRY_BYTES: usize = 1 + 8 + 8;

/// Writes `index` in the disk-query format. The write is crash-atomic
/// (temp file + fsync + rename via [`crate::wal::atomic_write_with`]): a
/// crash mid-write never corrupts an existing file at `path`.
pub fn write_disk_index(index: &PllIndex, path: &Path) -> Result<()> {
    let (order, _inv, labels, bp, _stats) = index.parts();
    let n = order.len();
    let t = bp.num_roots();
    crate::wal::atomic_write_with(path, |w| {
        w.write_all(MAGIC)?;
        w.write_all(&(n as u64).to_le_bytes())?;
        w.write_all(&(t as u64).to_le_bytes())?;
        for &v in order {
            w.write_all(&v.to_le_bytes())?;
        }
        let (roots, _) = bp.as_raw();
        for &r in roots {
            w.write_all(&r.to_le_bytes())?;
        }

        // Compute block offsets: header + order + roots + offset table itself.
        let header = 8 + 8 + 8 + n * 4 + t * 4 + (n + 1) * 8;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut pos = header as u64;
        for v in 0..n as Rank {
            offsets.push(pos);
            let len = labels.label_len(v);
            pos += (t * BP_ENTRY_BYTES + 4 + len * 4 + len) as u64;
        }
        offsets.push(pos);
        for &o in &offsets {
            w.write_all(&o.to_le_bytes())?;
        }

        for v in 0..n as Rank {
            for e in bp.entries_of(v) {
                w.write_all(&[e.dist])?;
                w.write_all(&e.set_minus1.to_le_bytes())?;
                w.write_all(&e.set_zero.to_le_bytes())?;
            }
            let (ranks, dists) = labels.label(v);
            let len = ranks.len() - 1; // strip sentinel on disk
            w.write_all(&(len as u32).to_le_bytes())?;
            for &r in &ranks[..len] {
                w.write_all(&r.to_le_bytes())?;
            }
            w.write_all(&dists[..len])?;
        }
        Ok(())
    })
}

/// A disk-resident index: answers each query with two block reads.
pub struct DiskIndex {
    file: File,
    inv: Vec<Rank>,
    offsets: Vec<u64>,
    num_bp_roots: usize,
    /// Reads performed since opening (two per distance query); exposed so
    /// tests and benches can assert the two-seek property.
    reads: u64,
}

/// One parsed label block.
struct Block {
    bp: Vec<BpEntry>,
    ranks: Vec<Rank>,
    dists: Vec<u8>,
}

impl DiskIndex {
    /// Opens a file written by [`write_disk_index`].
    pub fn open(path: &Path) -> Result<DiskIndex> {
        let mut file = File::open(path)?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(PllError::Format {
                message: "bad disk-index magic".into(),
            });
        }
        let mut b8 = [0u8; 8];
        file.read_exact(&mut b8)?;
        let n = u64::from_le_bytes(b8) as usize;
        file.read_exact(&mut b8)?;
        let t = u64::from_le_bytes(b8) as usize;
        // Reject fabricated counts before any sized allocation: the header
        // section alone needs 4 bytes per order entry, 4 per root and 8 per
        // block offset.
        let file_len = file.metadata()?.len();
        let header_need = 24u64
            .saturating_add(n as u64 * 4)
            .saturating_add(t as u64 * 4)
            .saturating_add((n as u64 + 1) * 8);
        if header_need > file_len {
            return Err(PllError::Format {
                message: "disk-index header exceeds file size".into(),
            });
        }

        let mut order_bytes = vec![0u8; n * 4];
        file.read_exact(&mut order_bytes)?;
        let order: Vec<Vertex> = order_bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let mut seen = vec![false; n];
        for &v in &order {
            if v as usize >= n || seen[v as usize] {
                return Err(PllError::Format {
                    message: "disk-index order is not a permutation".into(),
                });
            }
            seen[v as usize] = true;
        }
        let mut inv = vec![0 as Rank; n];
        for (rank, &v) in order.iter().enumerate() {
            inv[v as usize] = rank as Rank;
        }

        let mut roots_bytes = vec![0u8; t * 4];
        file.read_exact(&mut roots_bytes)?;

        let mut offsets_bytes = vec![0u8; (n + 1) * 8];
        file.read_exact(&mut offsets_bytes)?;
        let offsets: Vec<u64> = offsets_bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(PllError::Format {
                message: "non-monotone disk block offsets".into(),
            });
        }

        Ok(DiskIndex {
            file,
            inv,
            offsets,
            num_bp_roots: t,
            reads: 0,
        })
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.inv.len()
    }

    /// Block reads performed so far (two per [`DiskIndex::distance`] call).
    pub fn reads_performed(&self) -> u64 {
        self.reads
    }

    fn read_block(&mut self, v: Rank) -> Result<Block> {
        let start = self.offsets[v as usize];
        let end = self.offsets[v as usize + 1];
        let mut buf = vec![0u8; (end - start) as usize];
        self.file.seek(SeekFrom::Start(start))?;
        self.file.read_exact(&mut buf)?;
        self.reads += 1;

        // Corrupt offsets could describe a block smaller than its own
        // fixed part or its declared label; every slice below is bounds-
        // checked first so corruption surfaces as a typed error, never a
        // panic.
        let t = self.num_bp_roots;
        let fixed = t * BP_ENTRY_BYTES + 4;
        if buf.len() < fixed {
            return Err(PllError::Format {
                message: format!(
                    "disk block of rank {v} has {} bytes, need {fixed} for \
                     the bit-parallel entries and label length",
                    buf.len()
                ),
            });
        }
        let mut bp = Vec::with_capacity(t);
        for i in 0..t {
            let base = i * BP_ENTRY_BYTES;
            bp.push(BpEntry {
                dist: buf[base],
                set_minus1: u64::from_le_bytes(buf[base + 1..base + 9].try_into().unwrap()),
                set_zero: u64::from_le_bytes(buf[base + 9..base + 17].try_into().unwrap()),
            });
        }
        let mut pos = t * BP_ENTRY_BYTES;
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        if len
            .checked_mul(5)
            .and_then(|label| pos.checked_add(label))
            .is_none_or(|need| need > buf.len())
        {
            return Err(PllError::Format {
                message: format!(
                    "disk block of rank {v} declares {len} label entries \
                     beyond its {} bytes",
                    buf.len()
                ),
            });
        }
        let ranks: Vec<Rank> = buf[pos..pos + len * 4]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        pos += len * 4;
        let dists = buf[pos..pos + len].to_vec();
        Ok(Block { bp, ranks, dists })
    }

    /// Exact distance between original vertices `u` and `v` with two disk
    /// reads; `None` when disconnected.
    pub fn distance(&mut self, u: Vertex, v: Vertex) -> Result<Option<u32>> {
        let n = self.num_vertices();
        for x in [u, v] {
            if x as usize >= n {
                return Err(PllError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: n,
                });
            }
        }
        if u == v {
            return Ok(Some(0));
        }
        let a = self.read_block(self.inv[u as usize])?;
        let b = self.read_block(self.inv[v as usize])?;

        let mut best = INF_QUERY;
        for (x, y) in a.bp.iter().zip(b.bp.iter()) {
            if x.dist == INF8 || y.dist == INF8 {
                continue;
            }
            let mut td = x.dist as u32 + y.dist as u32;
            if td.saturating_sub(2) < best {
                if x.set_minus1 & y.set_minus1 != 0 {
                    td -= 2;
                } else if (x.set_minus1 & y.set_zero) | (x.set_zero & y.set_minus1) != 0 {
                    td -= 1;
                }
                best = best.min(td);
            }
        }
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.ranks.len() && j < b.ranks.len() {
            if a.ranks[i] == b.ranks[j] {
                let d = a.dists[i] as u32 + b.dists[j] as u32;
                best = best.min(d);
                i += 1;
                j += 1;
            } else if a.ranks[i] < b.ranks[j] {
                i += 1;
            } else {
                j += 1;
            }
        }
        Ok((best != INF_QUERY).then_some(best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuilder;
    use pll_graph::gen;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pll_disk_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn disk_queries_match_memory_queries() {
        let g = gen::barabasi_albert(200, 3, 7).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
        let path = tmp_path("roundtrip");
        write_disk_index(&idx, &path).unwrap();
        let mut disk = DiskIndex::open(&path).unwrap();
        assert_eq!(disk.num_vertices(), 200);
        for s in (0..200u32).step_by(13) {
            for t in (0..200u32).step_by(17) {
                assert_eq!(
                    disk.distance(s, t).unwrap(),
                    idx.distance(s, t),
                    "pair ({s}, {t})"
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn two_reads_per_query() {
        let g = gen::erdos_renyi_gnm(50, 120, 2).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let path = tmp_path("tworead");
        write_disk_index(&idx, &path).unwrap();
        let mut disk = DiskIndex::open(&path).unwrap();
        disk.distance(0, 49).unwrap();
        assert_eq!(disk.reads_performed(), 2);
        disk.distance(5, 6).unwrap();
        assert_eq!(disk.reads_performed(), 4);
        // Trivial query costs no reads.
        disk.distance(7, 7).unwrap();
        assert_eq!(disk.reads_performed(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disconnected_pairs_on_disk() {
        let g = pll_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(1).build(&g).unwrap();
        let path = tmp_path("disconnected");
        write_disk_index(&idx, &path).unwrap();
        let mut disk = DiskIndex::open(&path).unwrap();
        assert_eq!(disk.distance(0, 3).unwrap(), None);
        assert_eq!(disk.distance(2, 3).unwrap(), Some(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp_path("garbage");
        std::fs::write(&path, b"definitely not an index").unwrap();
        assert!(DiskIndex::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_blocks_are_typed_errors_not_panics() {
        use std::io::Write as _;
        let g = gen::erdos_renyi_gnm(30, 70, 4).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let path = tmp_path("corrupt_block");
        write_disk_index(&idx, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Rank 0's block starts right after the offset table; overwrite
        // its label length with a fabricated huge count. The query must
        // answer with PllError::Format, not slice out of bounds.
        let header = 8 + 8 + 8 + 30 * 4 + 2 * 4 + 31 * 8;
        let len_pos = header + 2 * BP_ENTRY_BYTES;
        let mut corrupt = bytes.clone();
        corrupt[len_pos..len_pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(&corrupt).unwrap();
        drop(f);
        let mut disk = DiskIndex::open(&path).unwrap();
        assert!(matches!(
            disk.distance(idx.vertex_at(0), 5),
            Err(PllError::Format { .. })
        ));

        // Truncating the file mid-blocks turns reads into I/O errors.
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(&bytes[..bytes.len() - 40]).unwrap();
        drop(f);
        let mut disk = DiskIndex::open(&path).unwrap();
        let mut saw_error = false;
        for v in 0..30u32 {
            if disk.distance(v, (v + 17) % 30).is_err() {
                saw_error = true;
            }
        }
        assert!(saw_error, "truncated blocks must surface as errors");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_checked() {
        let g = gen::path(5).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(0).build(&g).unwrap();
        let path = tmp_path("range");
        write_disk_index(&idx, &path).unwrap();
        let mut disk = DiskIndex::open(&path).unwrap();
        assert!(matches!(
            disk.distance(0, 9),
            Err(PllError::VertexOutOfRange { .. })
        ));
        std::fs::remove_file(&path).ok();
    }
}
