//! Incremental (online) index maintenance for the undirected index —
//! edge insertions without a full rebuild.
//!
//! The SIGMOD 2013 index is static: the labeling is computed once and
//! never touched again. Real networks evolve, and rebuilding a large
//! index for every new edge is exactly the cost labelling schemes are
//! criticised for. This module implements the incremental-update idea of
//! the follow-up line of work (Akiba, Iwata & Yoshida, *Dynamic and
//! Historical Shortest-Path Distance Queries on Large Evolving Networks*,
//! WWW 2014): an inserted edge can only *decrease* distances, old label
//! entries therefore stay valid upper bounds, and exactness is restored
//! by **resuming** pruned BFSs from the affected label roots only.
//!
//! [`DynamicIndex`] wraps any opened undirected index — owned (v1) or
//! zero-copy (v2 view) via the [`crate::storage`] backends — with a
//! mutable *delta overlay*:
//!
//! * a **delta adjacency** holding the inserted edges on top of the
//!   (rank-relabelled) base graph;
//! * per-vertex **delta labels**, sorted `(hub rank, distance)` vectors
//!   merged into every query alongside the immutable base arenas.
//!
//! Applying an insertion `(a, b)`:
//!
//! 1. **bit-parallel repair** — a BP structure (§5) is a 65-source
//!    distance oracle over its root and selected neighbours; the static
//!    build pruned normal labels against it, so exactness of the whole
//!    index *requires the oracle to stay exact*. Each structure whose
//!    source distances to `a` and `b` differ by ≥ 2 (read off δ̃ and the
//!    masks; the neighbour identities are recovered once at
//!    construction: `δ̃ = 1` ∧ own `S⁻¹` bit) has its column recomputed
//!    over the updated adjacency into an owned override — unaffected
//!    structures keep the zero-copy base column;
//! 2. collect the *affected roots*: every hub of the combined
//!    (base + delta) labels of `a` and `b`, plus the roots and recorded
//!    neighbours of the bit-parallel structures covering them;
//! 3. for each affected root `r` in rank order, compare the combined
//!    distances `Q(r, a)` and `Q(r, b)`: the edge matters for `r` only
//!    if they differ by ≥ 2, and then a pruned BFS is *resumed* from the
//!    far endpoint at `Q(r, near) + 1`;
//! 4. the resumed BFS prunes against the **combined** base + delta
//!    labels and the repaired bit-parallel certificates, so added delta
//!    entries stay minimal, and appends `(r, d)` delta entries where the
//!    query could not already answer.
//!
//! Queries then take the min over the (repaired) bit-parallel oracle
//! and the merge-join over base + delta labels — exact at all times,
//! which the test suite proves against from-scratch rebuilds (unit,
//! integration and proptest cases).
//!
//! [`DynamicIndex::flatten`] merges base + delta back into an owned
//! [`PllIndex`] (reusing the parallel arena scatter behind the label
//! flatten), ready for [`crate::v2`] persistence and for
//! the epoch-swapping server cell in `pll-server` — `pll update` on the
//! CLI and the `UPDATE` frame over the wire both end here.
//!
//! Scope: undirected unweighted graphs, edge insertions, fixed vertex
//! set. Deletions and vertex additions still require a rebuild (see
//! ROADMAP); the directed/weighted variants need the same treatment per
//! side/metric and are left for the trait seams mirroring
//! [`crate::par::PrunedSearch`].

use crate::bp::BpEntry;
use crate::error::{PllError, Result};
use crate::index::PllIndex;
use crate::label::LabelSet;
use crate::types::{Dist, Rank, Vertex, INF8, INF_QUERY, MAX_DIST, RANK_SENTINEL};
use crate::v2::AnyIndex;
use pll_graph::reorder::{apply_order, inverse_permutation};
use pll_graph::CsrGraph;
use std::sync::Arc;
use std::time::Instant;

/// Counters for one [`DynamicIndex::apply`] batch (and, accumulated,
/// for the whole lifetime via [`DynamicIndex::update_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UpdateStats {
    /// Edges actually inserted (new, non-loop, in range).
    pub edges_applied: usize,
    /// Edges skipped as self-loops or duplicates of existing edges.
    pub edges_skipped: usize,
    /// Resumed pruned BFSs run (affected roots with a ≥ 2 distance gap).
    pub roots_resumed: usize,
    /// Delta label entries added or improved.
    pub entries_added: usize,
    /// Bit-parallel columns recomputed because an insertion shortcut
    /// their 65-source ball.
    pub bp_columns_repaired: usize,
    /// Vertices visited by resumed BFSs (pruned visits included).
    pub vertices_visited: u64,
    /// Wall-clock seconds spent applying.
    pub seconds: f64,
}

impl UpdateStats {
    fn absorb(&mut self, other: &UpdateStats) {
        self.edges_applied += other.edges_applied;
        self.edges_skipped += other.edges_skipped;
        self.roots_resumed += other.roots_resumed;
        self.entries_added += other.entries_added;
        self.bp_columns_repaired += other.bp_columns_repaired;
        self.vertices_visited += other.vertices_visited;
        self.seconds += other.seconds;
    }
}

/// Per-vertex delta label: sorted by hub rank, parallel distance vector.
#[derive(Clone, Debug, Default)]
struct DeltaLabel {
    ranks: Vec<Rank>,
    dists: Vec<Dist>,
}

impl DeltaLabel {
    /// Inserts or improves `(hub, d)`; returns `true` if the entry was
    /// new or strictly smaller than the stored one.
    fn upsert(&mut self, hub: Rank, d: Dist) -> bool {
        match self.ranks.binary_search(&hub) {
            Ok(i) => {
                if d < self.dists[i] {
                    self.dists[i] = d;
                    true
                } else {
                    false
                }
            }
            Err(i) => {
                self.ranks.insert(i, hub);
                self.dists.insert(i, d);
                true
            }
        }
    }
}

/// Dispatches `$body` over the two undirected [`AnyIndex`]
/// representations (owned and zero-copy view); the constructor rejects
/// every other family.
macro_rules! with_undirected {
    ($any:expr, $idx:ident => $body:expr) => {
        match $any {
            AnyIndex::Undirected($idx) => $body,
            AnyIndex::UndirectedView($idx) => $body,
            _ => unreachable!("DynamicIndex::new only accepts undirected indices"),
        }
    };
}

/// Merged view over a base label body and a delta label, yielding
/// `(hub rank, dist)` strictly sorted by rank; a hub present in both
/// sides yields the smaller distance (deltas only ever improve).
struct MergedCursor<'a> {
    base_ranks: &'a [Rank],
    base_dists: &'a [Dist],
    delta_ranks: &'a [Rank],
    delta_dists: &'a [Dist],
    i: usize,
    j: usize,
}

impl MergedCursor<'_> {
    #[inline]
    fn next(&mut self) -> Option<(Rank, Dist)> {
        let have_base = self.i < self.base_ranks.len();
        let have_delta = self.j < self.delta_ranks.len();
        match (have_base, have_delta) {
            (false, false) => None,
            (true, false) => {
                let out = (self.base_ranks[self.i], self.base_dists[self.i]);
                self.i += 1;
                Some(out)
            }
            (false, true) => {
                let out = (self.delta_ranks[self.j], self.delta_dists[self.j]);
                self.j += 1;
                Some(out)
            }
            (true, true) => {
                let (rb, db) = (self.base_ranks[self.i], self.base_dists[self.i]);
                let (rd, dd) = (self.delta_ranks[self.j], self.delta_dists[self.j]);
                if rb < rd {
                    self.i += 1;
                    Some((rb, db))
                } else if rd < rb {
                    self.j += 1;
                    Some((rd, dd))
                } else {
                    self.i += 1;
                    self.j += 1;
                    Some((rb, db.min(dd)))
                }
            }
        }
    }
}

/// Reusable per-batch scratch: lazily-reset tentative distances and the
/// §4.5 temp array over the current root's combined label.
struct UpdateScratch {
    /// Tentative BFS distance, `INF_QUERY` = untouched.
    tent: Vec<u32>,
    /// `temp[w] =` combined label distance from the current root to hub
    /// `w`, `INF8` = absent.
    temp: Vec<Dist>,
    /// BFS queue; doubles as the touched-vertex list for the lazy reset.
    queue: Vec<Rank>,
    /// The current root's bit-parallel entries, copied out once.
    root_bp: Vec<BpEntry>,
    /// Affected-root collection buffer.
    roots: Vec<Rank>,
}

impl UpdateScratch {
    fn new(n: usize) -> Self {
        UpdateScratch {
            tent: vec![INF_QUERY; n],
            temp: vec![INF8; n],
            queue: Vec::new(),
            root_bp: Vec::new(),
            roots: Vec::new(),
        }
    }
}

/// An undirected index plus a mutable delta overlay that absorbs edge
/// insertions incrementally — see the module docs for the algorithm and
/// the exactness argument.
///
/// ```
/// use pll_core::{dynamic::DynamicIndex, IndexBuilder, AnyIndex};
/// use pll_graph::CsrGraph;
/// use std::sync::Arc;
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let base = IndexBuilder::new().bit_parallel_roots(1).build(&g).unwrap();
/// let mut dyn_idx = DynamicIndex::new(Arc::new(AnyIndex::Undirected(base)), &g).unwrap();
/// assert_eq!(dyn_idx.distance(0, 3), Some(3));
/// dyn_idx.apply(&[(0, 3)]).unwrap();
/// assert_eq!(dyn_idx.distance(0, 3), Some(1));
/// assert_eq!(dyn_idx.distance(1, 3), Some(2));
/// ```
pub struct DynamicIndex {
    /// The immutable base index (undirected family, owned or view).
    base: Arc<AnyIndex>,
    /// Rank-relabelled base adjacency (vertex `i` *is* rank `i`).
    csr: CsrGraph,
    /// Inserted edges on top of `csr`, rank space, both directions.
    extra: Vec<Vec<Rank>>,
    /// Delta labels, rank-keyed.
    delta: Vec<DeltaLabel>,
    /// Inserted edges in original vertex space (for re-persisting).
    inserted: Vec<(Vertex, Vertex)>,
    /// Recovered identity of BP selected neighbour `(structure, bit)`,
    /// `RANK_SENTINEL` where the bit is unused.
    bp_sel: Vec<Vec<Rank>>,
    /// BP root ranks, copied out of the base (`u32::MAX` = exhausted).
    bp_roots: Vec<Rank>,
    /// Repaired bit-parallel columns: `Some` holds the full recomputed
    /// column for a structure whose 65-source ball was shortcut by an
    /// insertion; `None` keeps reading the (still exact) base column.
    bp_override: Vec<Option<Vec<BpEntry>>>,
    /// Applied-batch counter (0 = pristine base).
    epoch: u64,
    /// Lifetime-accumulated counters.
    stats: UpdateStats,
    scratch: UpdateScratch,
}

impl std::fmt::Debug for DynamicIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicIndex")
            .field("num_vertices", &self.num_vertices())
            .field("epoch", &self.epoch)
            .field("inserted_edges", &self.inserted.len())
            .field("delta_entries", &self.delta_entries())
            .finish_non_exhaustive()
    }
}

impl DynamicIndex {
    /// Wraps `base` (which must be an **undirected** index, owned or
    /// zero-copy) together with the graph it was built from. The graph
    /// is needed because resumed BFSs traverse real adjacency; it is
    /// relabelled into rank space once, here.
    ///
    /// # Errors
    ///
    /// [`PllError::Unsupported`] if `base` is not an undirected index or
    /// `graph` visibly disagrees with it (vertex-count mismatch, or a
    /// sampled edge whose indexed distance is not 1).
    pub fn new(base: Arc<AnyIndex>, graph: &CsrGraph) -> Result<DynamicIndex> {
        if !matches!(
            &*base,
            AnyIndex::Undirected(_) | AnyIndex::UndirectedView(_)
        ) {
            return Err(PllError::Unsupported {
                message: format!(
                    "dynamic updates support the undirected index only (got {}); \
                     directed/weighted variants need per-side resumed searches and \
                     are future work",
                    base.format().name()
                ),
            });
        }
        let n = base.num_vertices();
        if graph.num_vertices() != n {
            return Err(PllError::Unsupported {
                message: format!(
                    "graph has {} vertices but the index covers {n}; pass the graph \
                     the index was built from",
                    graph.num_vertices()
                ),
            });
        }
        // Spot-check that the graph matches the index: every edge is a
        // distance-1 pair. A handful of samples catches passing the
        // wrong file without costing a full verification.
        for (u, v) in graph.edges().take(32) {
            if base.distance(u, v) != Some(1) {
                return Err(PllError::Unsupported {
                    message: format!(
                        "graph does not match the index: edge ({u}, {v}) is indexed at \
                         distance {:?}, expected 1",
                        base.distance(u, v)
                    ),
                });
            }
        }
        let order = with_undirected!(&*base, idx => idx.order().to_vec());
        let csr = apply_order(graph, &order)?;
        // Recover the BP selected-neighbour identities: bit `k` of
        // structure `i` belongs to the unique vertex `v` with
        // `δ̃_i(v) = 1` and bit `k` set in its own S⁻¹ mask
        // (d(v, v) = 0 = δ̃ − 1). The index stores only the masks, but
        // the identities are needed to treat BP coverage as resumable
        // virtual hubs.
        let bp_sel = with_undirected!(&*base, idx => {
            let bp = idx.bit_parallel();
            let t = bp.num_roots();
            let mut sel = vec![vec![RANK_SENTINEL; 64]; t];
            for v in 0..n as Rank {
                for (i, slots) in sel.iter_mut().enumerate() {
                    let e = bp.entry(v, i);
                    if e.dist == 1 && e.set_minus1 != 0 {
                        let own = e.set_minus1.trailing_zeros() as usize;
                        slots[own] = v;
                    }
                }
            }
            sel
        });
        let bp_roots = with_undirected!(&*base, idx => idx.bit_parallel().roots().to_vec());
        let t = bp_roots.len();
        Ok(DynamicIndex {
            base,
            csr,
            extra: vec![Vec::new(); n],
            delta: vec![DeltaLabel::default(); n],
            inserted: Vec::new(),
            bp_sel,
            bp_roots,
            bp_override: vec![None; t],
            epoch: 0,
            stats: UpdateStats::default(),
            scratch: UpdateScratch::new(n),
        })
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Applied-batch counter: 0 for a pristine base, incremented by
    /// every [`DynamicIndex::apply`] call that inserted at least one
    /// edge. The serving layer surfaces this as the index *epoch*.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overrides the epoch counter. Used by WAL recovery in the serving
    /// layer: a server restarting from a snapshot builds a fresh overlay
    /// (whose counter restarts at zero), replays the journal, and then
    /// needs the epoch sequence to continue from the pre-crash value so
    /// clients observe the same numbering as an uncrashed server.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The wrapped base index.
    pub fn base(&self) -> &Arc<AnyIndex> {
        &self.base
    }

    /// Edges inserted since construction (original vertex space).
    pub fn inserted_edges(&self) -> &[(Vertex, Vertex)] {
        &self.inserted
    }

    /// Total delta label entries currently in the overlay.
    pub fn delta_entries(&self) -> usize {
        self.delta.iter().map(|d| d.ranks.len()).sum()
    }

    /// Lifetime-accumulated update counters.
    pub fn update_stats(&self) -> &UpdateStats {
        &self.stats
    }

    /// Exact distance in the *updated* graph; `None` when disconnected.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range (see
    /// [`DynamicIndex::try_distance`]).
    pub fn distance(&self, u: Vertex, v: Vertex) -> Option<u32> {
        let n = self.num_vertices();
        assert!((u as usize) < n, "vertex {u} out of range");
        assert!((v as usize) < n, "vertex {v} out of range");
        if u == v {
            return Some(0);
        }
        let (ru, rv) = with_undirected!(&*self.base, idx => (idx.rank_of(u), idx.rank_of(v)));
        let best = self.combined_query_ranks(ru, rv);
        (best != INF_QUERY).then_some(best)
    }

    /// Checked variant of [`DynamicIndex::distance`].
    pub fn try_distance(&self, u: Vertex, v: Vertex) -> Result<Option<u32>> {
        let n = self.num_vertices();
        for x in [u, v] {
            if x as usize >= n {
                return Err(PllError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: n,
                });
            }
        }
        Ok(self.distance(u, v))
    }

    /// Whether `u` and `v` are connected in the updated graph.
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        self.distance(u, v).is_some()
    }

    /// Applies a batch of edge insertions (original vertex space) and
    /// returns this batch's counters. Self-loops and edges already
    /// present are counted as skipped; the epoch is bumped iff at least
    /// one edge was inserted.
    ///
    /// # Errors
    ///
    /// [`PllError::VertexOutOfRange`] if any endpoint exceeds the vertex
    /// count (checked for the whole batch up front, before any edge is
    /// applied), [`PllError::DiameterTooLarge`] if a new finite distance
    /// exceeds the 8-bit representation (the overlay is left partially
    /// updated; rebuild with the weighted index).
    pub fn apply(&mut self, edges: &[(Vertex, Vertex)]) -> Result<UpdateStats> {
        let n = self.num_vertices();
        for &(u, v) in edges {
            for x in [u, v] {
                if x as usize >= n {
                    return Err(PllError::VertexOutOfRange {
                        vertex: x,
                        num_vertices: n,
                    });
                }
            }
        }
        let started = Instant::now();
        let mut batch = UpdateStats::default();
        for &(u, v) in edges {
            if u == v {
                batch.edges_skipped += 1;
                continue;
            }
            let (ru, rv) = with_undirected!(&*self.base, idx => (idx.rank_of(u), idx.rank_of(v)));
            if self.has_edge_rank(ru, rv) {
                batch.edges_skipped += 1;
                continue;
            }
            self.extra[ru as usize].push(rv);
            self.extra[rv as usize].push(ru);
            self.inserted.push((u, v));
            self.process_insertion(ru, rv, &mut batch)?;
            batch.edges_applied += 1;
        }
        batch.seconds = started.elapsed().as_secs_f64();
        if batch.edges_applied > 0 {
            self.epoch += 1;
        }
        self.stats.absorb(&batch);
        Ok(batch)
    }

    /// Merges base + delta labels into a fresh owned [`PllIndex`]
    /// answering exactly like this dynamic view — ready for
    /// [`crate::v2::save_v2_index`] and for atomically swapping into a
    /// serving cell. `threads` drives the parallel arena scatter of the
    /// flatten, exactly as in construction (`0` = auto).
    ///
    /// Parent pointers, if the base stored them, are dropped: resumed
    /// BFSs do not maintain them, and stale parents would reconstruct
    /// wrong paths through inserted edges. Rebuild with
    /// `store_parents(true)` when path reconstruction must survive
    /// updates.
    pub fn flatten(&self, threads: usize) -> Result<PllIndex> {
        let n = self.num_vertices();
        let mut ranks: Vec<Vec<Rank>> = Vec::with_capacity(n);
        let mut dists: Vec<Vec<Dist>> = Vec::with_capacity(n);
        for v in 0..n as Rank {
            let mut cursor = self.merged_cursor(v);
            let mut vr = Vec::new();
            let mut vd = Vec::new();
            while let Some((w, d)) = cursor.next() {
                vr.push(w);
                vd.push(d);
            }
            ranks.push(vr);
            dists.push(vd);
        }
        let threads = crate::par::resolve_threads(threads);
        let labels = LabelSet::from_vecs(&ranks, &dists, None, threads)?;
        let t = self.bp_roots.len();
        let entries: Vec<BpEntry> = (0..n as Rank)
            .flat_map(|v| (0..t).map(move |i| self.eff_bp_entry(v, i)))
            .collect();
        let bp_owned = crate::bp::BitParallelLabels::from_raw(n, self.bp_roots.clone(), entries);
        with_undirected!(&*self.base, idx => {
            let order = idx.order().to_vec();
            let inv = inverse_permutation(&order);
            Ok(PllIndex::from_parts(order, inv, labels, bp_owned, idx.stats().clone()))
        })
    }

    // -- internals ----------------------------------------------------

    fn has_edge_rank(&self, a: Rank, b: Rank) -> bool {
        self.csr.has_edge(a, b) || self.extra[a as usize].contains(&b)
    }

    /// Body (sentinel excluded) of the base label of rank `v`.
    fn base_label_body(&self, v: Rank) -> (&[Rank], &[Dist]) {
        with_undirected!(&*self.base, idx => {
            let (r, d) = idx.labels().label(v);
            (&r[..r.len() - 1], &d[..d.len() - 1])
        })
    }

    fn merged_cursor(&self, v: Rank) -> MergedCursor<'_> {
        let (br, bd) = self.base_label_body(v);
        let dl = &self.delta[v as usize];
        MergedCursor {
            base_ranks: br,
            base_dists: bd,
            delta_ranks: &dl.ranks,
            delta_dists: &dl.dists,
            i: 0,
            j: 0,
        }
    }

    /// Entry of vertex `v` for structure `i`, reading the repaired
    /// column when one exists and the base column otherwise.
    #[inline]
    fn eff_bp_entry(&self, v: Rank, i: usize) -> BpEntry {
        match &self.bp_override[i] {
            Some(column) => column[v as usize],
            None => with_undirected!(&*self.base, idx => idx.bit_parallel().entry(v, i)),
        }
    }

    /// The §5.3 bit-parallel query over the *effective* (repaired)
    /// columns — exact whenever a shortest path meets a structure's
    /// source set, because affected columns are recomputed on insert.
    fn eff_bp_query(&self, u: Rank, v: Rank) -> u32 {
        let mut best = INF_QUERY;
        for i in 0..self.bp_roots.len() {
            let a = self.eff_bp_entry(u, i);
            let b = self.eff_bp_entry(v, i);
            if a.dist == INF8 || b.dist == INF8 {
                continue;
            }
            let mut td = a.dist as u32 + b.dist as u32;
            if td.saturating_sub(2) < best {
                if a.set_minus1 & b.set_minus1 != 0 {
                    td -= 2;
                } else if (a.set_minus1 & b.set_zero) | (a.set_zero & b.set_minus1) != 0 {
                    td -= 1;
                }
                if td < best {
                    best = td;
                }
            }
        }
        best
    }

    /// The exact updated distance between rank-space vertices: min over
    /// the repaired bit-parallel oracle and the merge-join over combined
    /// base + delta labels.
    fn combined_query_ranks(&self, u: Rank, v: Rank) -> u32 {
        if u == v {
            return 0;
        }
        let mut best = self.eff_bp_query(u, v);
        // Fast path: neither endpoint carries a delta label, so the
        // combined labels are exactly the sentinel-terminated base labels
        // and the shared (branchless) kernel applies directly.
        if self.delta[u as usize].ranks.is_empty() && self.delta[v as usize].ranks.is_empty() {
            let d = with_undirected!(&*self.base, idx => {
                let (ur, ud) = idx.labels().label(u);
                let (vr, vd) = idx.labels().label(v);
                crate::kernel::merge_query(ur, ud, vr, vd)
            });
            return best.min(d);
        }
        let mut cu = self.merged_cursor(u);
        let mut cv = self.merged_cursor(v);
        let mut au = cu.next();
        let mut av = cv.next();
        while let (Some((ru, du)), Some((rv, dv))) = (au, av) {
            if ru == rv {
                let d = du as u32 + dv as u32;
                if d < best {
                    best = d;
                }
                au = cu.next();
                av = cv.next();
            } else if ru < rv {
                au = cu.next();
            } else {
                av = cv.next();
            }
        }
        best
    }

    /// Collects the hubs "visible" from rank `x`: combined normal label
    /// hubs plus the virtual bit-parallel hubs (structure roots with a
    /// finite δ̃ and the selected neighbours recorded in `x`'s masks).
    fn collect_hubs(&self, x: Rank, out: &mut Vec<Rank>) {
        let (br, _) = self.base_label_body(x);
        out.extend_from_slice(br);
        out.extend_from_slice(&self.delta[x as usize].ranks);
        for (i, sel) in self.bp_sel.iter().enumerate() {
            let e = self.eff_bp_entry(x, i);
            if e.dist == INF8 {
                continue;
            }
            debug_assert_ne!(
                self.bp_roots[i],
                u32::MAX,
                "reachable entry in exhausted slot"
            );
            out.push(self.bp_roots[i]);
            let mut bits = e.set_minus1 | e.set_zero;
            while bits != 0 {
                let k = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                debug_assert_ne!(sel[k], RANK_SENTINEL, "mask bit without identity");
                out.push(sel[k]);
            }
        }
    }

    /// Distance from source `k` of structure `i` (`None` = the root) to
    /// a vertex with effective entry `e`: a selected neighbour sits one
    /// step from the root, so its distance is δ̃ − 1, δ̃ or δ̃ + 1, and
    /// the masks say which.
    fn bp_source_dist(e: BpEntry, k: Option<usize>) -> u32 {
        if e.dist == INF8 {
            return INF_QUERY;
        }
        match k {
            None => e.dist as u32,
            Some(k) if e.set_minus1 >> k & 1 == 1 => e.dist as u32 - 1,
            Some(k) if e.set_zero >> k & 1 == 1 => e.dist as u32,
            Some(_) => e.dist as u32 + 1,
        }
    }

    /// Repairs the bit-parallel oracle for an inserted rank-space edge
    /// `(a, b)`: any structure with a source whose distances to the two
    /// endpoints differ by ≥ 2 gains shorter paths through the edge, and
    /// its whole column is recomputed over the updated adjacency
    /// (Algorithm 3, rerun). Unaffected structures keep their (still
    /// exact) base columns — for a local shortcut that is almost all of
    /// them.
    fn update_bp_columns(&mut self, a: Rank, b: Rank, batch: &mut UpdateStats) -> Result<()> {
        for i in 0..self.bp_roots.len() {
            if self.bp_roots[i] == u32::MAX {
                continue; // exhausted slot, never ran
            }
            let ea = self.eff_bp_entry(a, i);
            let eb = self.eff_bp_entry(b, i);
            if ea.dist == INF8 && eb.dist == INF8 {
                continue; // the edge is outside this structure's component
            }
            let sources = std::iter::once(None).chain(
                self.bp_sel[i]
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v != RANK_SENTINEL)
                    .map(|(k, _)| Some(k)),
            );
            let affected = sources.into_iter().any(|k| {
                let da = Self::bp_source_dist(ea, k);
                let db = Self::bp_source_dist(eb, k);
                da.abs_diff(db) >= 2
            });
            if affected {
                let column = self.recompute_column(i)?;
                self.bp_override[i] = Some(column);
                batch.bp_columns_repaired += 1;
            }
        }
        Ok(())
    }

    /// Reruns the level-synchronous 65-source BFS of structure `i`
    /// (same root, same selected neighbours and bit assignment) over
    /// the updated adjacency, yielding the full exact column.
    fn recompute_column(&self, i: usize) -> Result<Vec<BpEntry>> {
        let n = self.num_vertices();
        let root = self.bp_roots[i];
        let unreached = BpEntry {
            dist: INF8,
            set_minus1: 0,
            set_zero: 0,
        };
        let mut column = vec![unreached; n];
        column[root as usize].dist = 0;
        let mut current: Vec<Rank> = vec![root];
        let mut next: Vec<Rank> = Vec::new();
        for (k, &v) in self.bp_sel[i].iter().enumerate() {
            if v == RANK_SENTINEL {
                continue;
            }
            column[v as usize].dist = 1;
            column[v as usize].set_minus1 = 1u64 << k;
            next.push(v);
        }
        let mut sibling_edges: Vec<(Rank, Rank)> = Vec::new();
        let mut child_edges: Vec<(Rank, Rank)> = Vec::new();
        let mut level: u32 = 0;
        while !current.is_empty() {
            sibling_edges.clear();
            child_edges.clear();
            for &v in &current {
                for &u in self
                    .csr
                    .neighbors(v)
                    .iter()
                    .chain(self.extra[v as usize].iter())
                {
                    let du = column[u as usize].dist;
                    if du == INF8 {
                        if level as u8 >= MAX_DIST {
                            return Err(PllError::DiameterTooLarge { root_rank: root });
                        }
                        column[u as usize].dist = level as u8 + 1;
                        next.push(u);
                        child_edges.push((v, u));
                    } else if du as u32 == level + 1 {
                        child_edges.push((v, u));
                    } else if du as u32 == level {
                        sibling_edges.push((v, u));
                    }
                }
            }
            for &(v, u) in &sibling_edges {
                column[u as usize].set_zero |= column[v as usize].set_minus1;
            }
            for &(v, u) in &child_edges {
                column[u as usize].set_minus1 |= column[v as usize].set_minus1;
                column[u as usize].set_zero |= column[v as usize].set_zero;
            }
            std::mem::swap(&mut current, &mut next);
            next.clear();
            level += 1;
        }
        Ok(column)
    }

    /// Handles one inserted rank-space edge `(a, b)` (already added to
    /// the delta adjacency): repairs the bit-parallel oracle, then
    /// resumes pruned BFSs from every affected root whose combined
    /// distances to the endpoints differ by ≥ 2.
    fn process_insertion(&mut self, a: Rank, b: Rank, batch: &mut UpdateStats) -> Result<()> {
        self.update_bp_columns(a, b, batch)?;
        let mut roots = std::mem::take(&mut self.scratch.roots);
        roots.clear();
        self.collect_hubs(a, &mut roots);
        self.collect_hubs(b, &mut roots);
        roots.sort_unstable();
        roots.dedup();
        for &r in &roots {
            let da = self.combined_query_ranks(r, a);
            let db = self.combined_query_ranks(r, b);
            if da != INF_QUERY && da.saturating_add(1) < db {
                self.resume(r, b, da + 1, batch)?;
            } else if db != INF_QUERY && db.saturating_add(1) < da {
                self.resume(r, a, db + 1, batch)?;
            }
        }
        self.scratch.roots = roots;
        Ok(())
    }

    /// Resumes the pruned BFS of root `r` from `start` at distance `d0`,
    /// pruning every visit the combined index already answers and
    /// appending `(r, d)` delta entries elsewhere (Algorithm 1, seeded
    /// mid-tree).
    fn resume(&mut self, r: Rank, start: Rank, d0: u32, batch: &mut UpdateStats) -> Result<()> {
        batch.roots_resumed += 1;
        // Temp array over the combined label of r (§4.5 "Querying"), and
        // d(r, r) = 0 even when r's own label elides it (BP-covered
        // roots never self-labelled).
        let mut temp = std::mem::take(&mut self.scratch.temp);
        {
            let mut cursor = self.merged_cursor(r);
            while let Some((w, d)) = cursor.next() {
                temp[w as usize] = d;
            }
            temp[r as usize] = 0;
        }
        let mut root_bp = std::mem::take(&mut self.scratch.root_bp);
        root_bp.clear();
        root_bp.extend((0..self.bp_roots.len()).map(|i| self.eff_bp_entry(r, i)));

        let mut tent = std::mem::take(&mut self.scratch.tent);
        let mut queue = std::mem::take(&mut self.scratch.queue);
        queue.clear();
        queue.push(start);
        tent[start as usize] = d0;
        let mut head = 0usize;
        let mut result = Ok(());
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let d = tent[u as usize];
            batch.vertices_visited += 1;
            if self.pruned(&root_bp, u, d, &temp) {
                continue;
            }
            if d > MAX_DIST as u32 {
                result = Err(PllError::DiameterTooLarge { root_rank: r });
                break;
            }
            if self.delta[u as usize].upsert(r, d as Dist) {
                batch.entries_added += 1;
            }
            for w in self
                .csr
                .neighbors(u)
                .iter()
                .chain(self.extra[u as usize].iter())
            {
                if tent[*w as usize] == INF_QUERY {
                    tent[*w as usize] = d + 1;
                    queue.push(*w);
                }
            }
        }
        // Lazy reset of everything touched.
        for &v in &queue {
            tent[v as usize] = INF_QUERY;
        }
        {
            let mut cursor = self.merged_cursor(r);
            while let Some((w, _)) = cursor.next() {
                temp[w as usize] = INF8;
            }
            temp[r as usize] = INF8;
        }
        self.scratch.tent = tent;
        self.scratch.temp = temp;
        self.scratch.queue = queue;
        self.scratch.root_bp = root_bp;
        result
    }

    /// The dynamic pruning test for a visit of `u` at distance `d` from
    /// the current root: repaired bit-parallel certificates first, then
    /// the combined base + delta labels of `u` against the temp array.
    fn pruned(&self, root_bp: &[BpEntry], u: Rank, d: u32, temp: &[Dist]) -> bool {
        let bp_hit = root_bp.iter().enumerate().any(|(i, a)| {
            let b = self.eff_bp_entry(u, i);
            if a.dist == INF8 || b.dist == INF8 {
                return false;
            }
            let mut td = a.dist as u32 + b.dist as u32;
            if td.saturating_sub(2) > d {
                return false;
            }
            if a.set_minus1 & b.set_minus1 != 0 {
                td -= 2;
            } else if (a.set_minus1 & b.set_zero) | (a.set_zero & b.set_minus1) != 0 {
                td -= 1;
            }
            td <= d
        });
        if bp_hit {
            return true;
        }
        let (ur, ud) = self.base_label_body(u);
        for (i, &w) in ur.iter().enumerate() {
            let tw = temp[w as usize];
            if tw != INF8 && tw as u32 + ud[i] as u32 <= d {
                return true;
            }
        }
        let dl = &self.delta[u as usize];
        for (i, &w) in dl.ranks.iter().enumerate() {
            let tw = temp[w as usize];
            if tw != INF8 && tw as u32 + dl.dists[i] as u32 <= d {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuilder;
    use crate::order::OrderingStrategy;
    use pll_graph::gen;
    use pll_graph::traversal::bfs::BfsEngine;

    fn owned_any(g: &CsrGraph, bp_roots: usize) -> Arc<AnyIndex> {
        let idx = IndexBuilder::new()
            .bit_parallel_roots(bp_roots)
            .build(g)
            .unwrap();
        Arc::new(AnyIndex::Undirected(idx))
    }

    fn view_any(g: &CsrGraph, bp_roots: usize) -> Arc<AnyIndex> {
        let idx = IndexBuilder::new()
            .bit_parallel_roots(bp_roots)
            .build(g)
            .unwrap();
        let mut buf = Vec::new();
        crate::v2::save_v2_index(&idx, &mut buf).unwrap();
        let aligned = Arc::new(crate::storage::AlignedBytes::from_bytes(&buf));
        Arc::new(crate::v2::open_v2_bytes(aligned).unwrap())
    }

    /// Checks the dynamic index against BFS ground truth on `full` after
    /// applying `new_edges` on top of `base_graph`.
    fn assert_exact(dyn_idx: &DynamicIndex, full: &CsrGraph) {
        let n = full.num_vertices();
        let mut engine = BfsEngine::new(n);
        for s in 0..n as Vertex {
            let d = engine.run(full, s).to_vec();
            for t in 0..n as Vertex {
                let expect = (d[t as usize] != u32::MAX).then_some(d[t as usize]);
                assert_eq!(dyn_idx.distance(s, t), expect, "pair ({s}, {t})");
            }
        }
    }

    /// Splits `full`'s edges: the first `keep` stay in the base graph,
    /// the rest are applied dynamically (in batches of `batch`). Checks
    /// exactness after every batch, over both backends.
    fn incremental_case(full: &CsrGraph, keep: usize, batch: usize, bp_roots: usize) {
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let base_graph = CsrGraph::from_edges(full.num_vertices(), &all[..keep]).unwrap();
        for base in [
            owned_any(&base_graph, bp_roots),
            view_any(&base_graph, bp_roots),
        ] {
            let mut dyn_idx = DynamicIndex::new(base, &base_graph).unwrap();
            let mut applied = all[..keep].to_vec();
            for chunk in all[keep..].chunks(batch.max(1)) {
                dyn_idx.apply(chunk).unwrap();
                applied.extend_from_slice(chunk);
                let current = CsrGraph::from_edges(full.num_vertices(), &applied).unwrap();
                assert_exact(&dyn_idx, &current);
            }
            assert_eq!(dyn_idx.update_stats().edges_applied, all.len() - keep);
        }
    }

    #[test]
    fn single_insertions_on_structured_graphs() {
        incremental_case(&gen::grid(5, 5).unwrap(), 30, 1, 0);
        incremental_case(&gen::cycle(12).unwrap(), 11, 1, 2);
        incremental_case(&gen::complete(7).unwrap(), 10, 1, 1);
    }

    #[test]
    fn batched_insertions_on_random_graphs() {
        incremental_case(&gen::erdos_renyi_gnm(60, 150, 7).unwrap(), 90, 8, 0);
        incremental_case(&gen::barabasi_albert(70, 2, 3).unwrap(), 100, 5, 4);
    }

    #[test]
    fn insertion_joins_components() {
        // Two separate paths; the inserted edge bridges them.
        let g = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]).unwrap();
        for base in [owned_any(&g, 0), owned_any(&g, 2), view_any(&g, 2)] {
            let mut dyn_idx = DynamicIndex::new(base, &g).unwrap();
            assert_eq!(dyn_idx.distance(0, 7), None);
            assert!(!dyn_idx.connected(0, 7));
            dyn_idx.apply(&[(3, 4)]).unwrap();
            assert_eq!(dyn_idx.distance(0, 7), Some(7));
            assert!(dyn_idx.connected(0, 7));
            let full =
                CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)])
                    .unwrap();
            assert_exact(&dyn_idx, &full);
        }
    }

    #[test]
    fn noop_insertions_add_no_delta() {
        let g = gen::erdos_renyi_gnm(40, 120, 3).unwrap();
        let existing: Vec<(Vertex, Vertex)> = g.edges().take(5).collect();
        let mut dyn_idx = DynamicIndex::new(owned_any(&g, 2), &g).unwrap();
        // Duplicates and self-loops are skipped without touching labels.
        let mut batch = existing.clone();
        batch.push((7, 7));
        let stats = dyn_idx.apply(&batch).unwrap();
        assert_eq!(stats.edges_applied, 0);
        assert_eq!(stats.edges_skipped, existing.len() + 1);
        assert_eq!(stats.entries_added, 0);
        assert_eq!(dyn_idx.delta_entries(), 0);
        assert_eq!(dyn_idx.epoch(), 0, "no-op batches do not bump the epoch");
    }

    #[test]
    fn delta_prune_keeps_entries_minimal() {
        // Path 0-1-2: closing the triangle with (0, 2) changes exactly
        // one distance (d(0,2): 2 → 1). The overlay must stay tiny —
        // combined pruning means no redundant entries, and in particular
        // far fewer than a full per-root relabel would produce.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut dyn_idx = DynamicIndex::new(owned_any(&g, 0), &g).unwrap();
        let stats = dyn_idx.apply(&[(0, 2)]).unwrap();
        assert_eq!(stats.edges_applied, 1);
        assert_eq!(
            dyn_idx.delta_entries(),
            1,
            "one changed distance needs exactly one delta entry"
        );
        assert_eq!(dyn_idx.distance(0, 2), Some(1));
        assert_eq!(dyn_idx.epoch(), 1);
    }

    #[test]
    fn epoch_counts_applied_batches() {
        let g = gen::path(6).unwrap();
        let mut dyn_idx = DynamicIndex::new(owned_any(&g, 0), &g).unwrap();
        dyn_idx.apply(&[(0, 2)]).unwrap();
        dyn_idx.apply(&[(0, 3), (1, 4)]).unwrap();
        assert_eq!(dyn_idx.epoch(), 2);
        assert_eq!(dyn_idx.update_stats().edges_applied, 3);
        assert_eq!(dyn_idx.inserted_edges(), &[(0, 2), (0, 3), (1, 4)]);
    }

    #[test]
    fn flatten_matches_dynamic_and_rebuild() {
        let full = gen::erdos_renyi_gnm(50, 130, 11).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let base_graph = CsrGraph::from_edges(50, &all[..80]).unwrap();
        let mut dyn_idx = DynamicIndex::new(view_any(&base_graph, 3), &base_graph).unwrap();
        dyn_idx.apply(&all[80..]).unwrap();
        let flat = dyn_idx.flatten(1).unwrap();
        let rebuilt = IndexBuilder::new()
            .bit_parallel_roots(3)
            .build(&full)
            .unwrap();
        for s in 0..50u32 {
            for t in 0..50u32 {
                let d = dyn_idx.distance(s, t);
                assert_eq!(flat.distance(s, t), d, "flatten pair ({s}, {t})");
                assert_eq!(rebuilt.distance(s, t), d, "rebuild pair ({s}, {t})");
            }
        }
        // The flattened index round-trips through v2 and still agrees.
        let mut buf = Vec::new();
        crate::v2::save_v2_index(&flat, &mut buf).unwrap();
        let aligned = Arc::new(crate::storage::AlignedBytes::from_bytes(&buf));
        let reopened = crate::v2::open_v2_bytes(aligned).unwrap();
        for s in (0..50u32).step_by(3) {
            for t in (0..50u32).step_by(7) {
                assert_eq!(
                    reopened.distance(s, t),
                    dyn_idx.distance(s, t).map(u64::from)
                );
            }
        }
    }

    #[test]
    fn flatten_can_seed_a_new_dynamic_index() {
        // Flatten → wrap again → keep inserting: the flattened index is
        // a first-class base (its BP distances are stale upper bounds,
        // which the pruning tolerates by design).
        let full = gen::barabasi_albert(40, 2, 9).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let g0 = CsrGraph::from_edges(40, &all[..50]).unwrap();
        let mut d0 = DynamicIndex::new(owned_any(&g0, 2), &g0).unwrap();
        d0.apply(&all[50..60]).unwrap();
        let flat = d0.flatten(1).unwrap();
        let g1 = CsrGraph::from_edges(40, &all[..60]).unwrap();
        let mut d1 = DynamicIndex::new(Arc::new(AnyIndex::Undirected(flat)), &g1).unwrap();
        d1.apply(&all[60..]).unwrap();
        assert_exact(&d1, &full);
    }

    #[test]
    fn ordering_strategies_do_not_matter() {
        let full = gen::erdos_renyi_gnm(45, 110, 5).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let base_graph = CsrGraph::from_edges(45, &all[..70]).unwrap();
        for strat in [
            OrderingStrategy::Degree,
            OrderingStrategy::Random,
            OrderingStrategy::Closeness { samples: 8 },
        ] {
            let idx = IndexBuilder::new()
                .ordering(strat)
                .bit_parallel_roots(2)
                .build(&base_graph)
                .unwrap();
            let mut dyn_idx =
                DynamicIndex::new(Arc::new(AnyIndex::Undirected(idx)), &base_graph).unwrap();
            dyn_idx.apply(&all[70..]).unwrap();
            assert_exact(&dyn_idx, &full);
        }
    }

    #[test]
    fn rejects_wrong_family_and_mismatched_graph() {
        use pll_graph::wgraph::WeightedGraph;
        let wg = WeightedGraph::from_edges(4, &[(0, 1, 2), (1, 2, 3)]).unwrap();
        let widx = crate::weighted::WeightedIndexBuilder::new()
            .build(&wg)
            .unwrap();
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let err = DynamicIndex::new(Arc::new(AnyIndex::Weighted(widx)), &g).unwrap_err();
        assert!(matches!(err, PllError::Unsupported { .. }), "got {err}");

        // Vertex-count mismatch.
        let idx = owned_any(&g, 0);
        let bigger = CsrGraph::from_edges(6, &[(0, 1), (1, 2)]).unwrap();
        assert!(matches!(
            DynamicIndex::new(Arc::clone(&idx), &bigger),
            Err(PllError::Unsupported { .. })
        ));
        // Same n, visibly different edges: the spot check fires.
        let other = CsrGraph::from_edges(4, &[(0, 3), (0, 2)]).unwrap();
        assert!(matches!(
            DynamicIndex::new(idx, &other),
            Err(PllError::Unsupported { .. })
        ));
    }

    #[test]
    fn apply_rejects_out_of_range_before_mutating() {
        let g = gen::path(5).unwrap();
        let mut dyn_idx = DynamicIndex::new(owned_any(&g, 0), &g).unwrap();
        let err = dyn_idx.apply(&[(0, 2), (1, 99)]).unwrap_err();
        assert!(matches!(err, PllError::VertexOutOfRange { vertex: 99, .. }));
        // The whole batch was rejected up front: nothing changed.
        assert_eq!(dyn_idx.delta_entries(), 0);
        assert_eq!(dyn_idx.distance(0, 2), Some(2));
        assert_eq!(dyn_idx.epoch(), 0);
    }

    #[test]
    fn bp_covered_pairs_get_fresh_coverage() {
        // Saturate BP so phase 2 labels are almost empty: every pair is
        // covered by bit-parallel certificates only. Inserting edges
        // must still restore exactness via delta entries.
        let full = gen::erdos_renyi_gnm(30, 80, 13).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let base_graph = CsrGraph::from_edges(30, &all[..50]).unwrap();
        let base = owned_any(&base_graph, 64);
        let mut dyn_idx = DynamicIndex::new(base, &base_graph).unwrap();
        dyn_idx.apply(&all[50..]).unwrap();
        assert_exact(&dyn_idx, &full);
    }
}
