//! Incremental (online) index maintenance for the undirected index —
//! edge insertions without a full rebuild.
//!
//! The SIGMOD 2013 index is static: the labeling is computed once and
//! never touched again. Real networks evolve, and rebuilding a large
//! index for every new edge is exactly the cost labelling schemes are
//! criticised for. This module implements the incremental-update idea of
//! the follow-up line of work (Akiba, Iwata & Yoshida, *Dynamic and
//! Historical Shortest-Path Distance Queries on Large Evolving Networks*,
//! WWW 2014): an inserted edge can only *decrease* distances, old label
//! entries therefore stay valid upper bounds, and exactness is restored
//! by **resuming** pruned BFSs from the affected label roots only.
//!
//! [`DynamicIndex`] wraps any opened undirected index — owned (v1) or
//! zero-copy (v2 view) via the [`crate::storage`] backends — with a
//! mutable *delta overlay*:
//!
//! * a **delta adjacency** holding the inserted edges on top of the
//!   (rank-relabelled) base graph;
//! * per-vertex **delta labels**, sorted `(hub rank, distance)` vectors
//!   merged into every query alongside the immutable base arenas.
//!
//! Applying an insertion `(a, b)`:
//!
//! 1. **bit-parallel repair** — a BP structure (§5) is a 65-source
//!    distance oracle over its root and selected neighbours; the static
//!    build pruned normal labels against it, so exactness of the whole
//!    index *requires the oracle to stay exact*. Every structure whose
//!    component contains the edge is repaired **incrementally**: a
//!    decrease-only BFS from the far endpoint finds the vertices whose
//!    δ̃ changed, then a level-ordered sweep re-evaluates the §5
//!    recurrences over exactly the region whose inputs changed,
//!    rewriting only the `S⁻¹`/`S⁰` words whose fixpoint value moved.
//!    The stored columns therefore stay **word-identical** to rerunning
//!    the whole 65-source BFS (unit- and property-tested), while a
//!    local shortcut costs O(changed region) instead of O(n + m). Past
//!    a frontier cap the repair falls back to the full recompute.
//!    Changed words land in a copy-on-write override column
//!    (`Arc`-shared with snapshots); untouched structures keep reading
//!    the zero-copy base column;
//! 2. collect the *affected roots*: every hub of the combined
//!    (base + delta) labels of `a` and `b`, plus the roots and recorded
//!    neighbours of the bit-parallel structures covering them;
//! 3. for each affected root `r` in rank order, compare the combined
//!    distances `Q(r, a)` and `Q(r, b)`: the edge matters for `r` only
//!    if they differ by ≥ 2, and then a pruned BFS is *resumed* from the
//!    far endpoint at `Q(r, near) + 1`;
//! 4. the resumed BFS prunes against the **combined** base + delta
//!    labels and the repaired bit-parallel certificates, so added delta
//!    entries stay minimal, and appends `(r, d)` delta entries where the
//!    query could not already answer.
//!
//! Queries then take the min over the (repaired) bit-parallel oracle
//! and the merge-join over base + delta labels — exact at all times,
//! which the test suite proves against from-scratch rebuilds (unit,
//! integration and proptest cases).
//!
//! [`DynamicIndex::flatten`] merges base + delta back into an owned
//! [`PllIndex`] (reusing the parallel arena scatter behind the label
//! flatten), ready for [`crate::v2`] persistence and for
//! the epoch-swapping server cell in `pll-server` — `pll update` on the
//! CLI and the `UPDATE` frame over the wire both end here.
//!
//! For overlay-direct serving, [`DynamicIndex::snapshot`] freezes the
//! current overlay into an immutable [`OverlaySnapshot`] answering
//! through the same combined query path (cheap: the base and the
//! repaired BP columns are shared by `Arc`, only the small delta labels
//! are copied), and [`DynamicIndex::rebase`] swaps a freshly flattened
//! base underneath the live overlay, replaying only the edges that
//! flatten had not yet absorbed. The background flatten pipeline in
//! `pll-server` is `snapshot → flatten off-path → rebase → publish`,
//! which keeps UPDATE latency proportional to the delta, not the index.
//!
//! Scope: undirected unweighted graphs, edge insertions, fixed vertex
//! set. Deletions and vertex additions still require a rebuild (see
//! ROADMAP); the directed/weighted variants need the same treatment per
//! side/metric and are left for the trait seams mirroring
//! [`crate::par::PrunedSearch`].

use crate::bp::BpEntry;
use crate::error::{PllError, Result};
use crate::index::PllIndex;
use crate::label::LabelSet;
use crate::types::{Dist, Rank, Vertex, INF8, INF_QUERY, MAX_DIST, RANK_SENTINEL};
use crate::v2::AnyIndex;
use pll_graph::reorder::{apply_order, inverse_permutation};
use pll_graph::CsrGraph;
use std::sync::Arc;
use std::time::Instant;

/// Folds one bit-parallel structure's `(u, v)` entry pair into the
/// running best upper bound — the §5.3 δ̃ − 2 / δ̃ − 1 / δ̃ case
/// analysis, shared by the query and trigger paths.
#[inline]
fn bp_pair_min(a: &BpEntry, b: &BpEntry, best: u32) -> u32 {
    if a.dist == INF8 || b.dist == INF8 {
        return best;
    }
    let mut td = a.dist as u32 + b.dist as u32;
    if td.saturating_sub(2) < best {
        if a.set_minus1 & b.set_minus1 != 0 {
            td -= 2;
        } else if (a.set_minus1 & b.set_zero) | (a.set_zero & b.set_minus1) != 0 {
            td -= 1;
        }
        if td < best {
            return td;
        }
    }
    best
}

/// Width of the dense top-rank distance rows ([`DynamicIndex::dtop`]):
/// one byte per vertex per top rank. Resumed roots are label hubs, and
/// labels are dominated by the most important ranks, so a small power
/// of two covers almost every resume while costing `n * 256` bytes.
const DTOP_RANKS: usize = 256;

/// Counters for one [`DynamicIndex::apply`] batch (and, accumulated,
/// for the whole lifetime via [`DynamicIndex::update_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UpdateStats {
    /// Edges actually inserted (new, non-loop, in range).
    pub edges_applied: usize,
    /// Edges skipped as self-loops or duplicates of existing edges.
    pub edges_skipped: usize,
    /// Resumed pruned BFSs run (affected roots with a ≥ 2 distance gap).
    pub roots_resumed: usize,
    /// Delta label entries added or improved.
    pub entries_added: usize,
    /// Bit-parallel columns recomputed because an insertion shortcut
    /// their 65-source ball.
    pub bp_columns_repaired: usize,
    /// Vertices visited by resumed BFSs (pruned visits included).
    pub vertices_visited: u64,
    /// Wall-clock seconds spent applying.
    pub seconds: f64,
}

impl UpdateStats {
    fn absorb(&mut self, other: &UpdateStats) {
        self.edges_applied += other.edges_applied;
        self.edges_skipped += other.edges_skipped;
        self.roots_resumed += other.roots_resumed;
        self.entries_added += other.entries_added;
        self.bp_columns_repaired += other.bp_columns_repaired;
        self.vertices_visited += other.vertices_visited;
        self.seconds += other.seconds;
    }
}

/// Per-vertex delta label: sorted by hub rank, parallel distance vector.
#[derive(Clone, Debug, Default)]
struct DeltaLabel {
    ranks: Vec<Rank>,
    dists: Vec<Dist>,
}

impl DeltaLabel {
    /// Inserts or improves `(hub, d)`; returns `true` if the entry was
    /// new or strictly smaller than the stored one.
    fn upsert(&mut self, hub: Rank, d: Dist) -> bool {
        match self.ranks.binary_search(&hub) {
            Ok(i) => {
                if d < self.dists[i] {
                    self.dists[i] = d;
                    true
                } else {
                    false
                }
            }
            Err(i) => {
                self.ranks.insert(i, hub);
                self.dists.insert(i, d);
                true
            }
        }
    }
}

/// Dispatches `$body` over the two undirected [`AnyIndex`]
/// representations (owned and zero-copy view); the constructor rejects
/// every other family.
macro_rules! with_undirected {
    ($any:expr, $idx:ident => $body:expr) => {
        match $any {
            AnyIndex::Undirected($idx) => $body,
            AnyIndex::UndirectedView($idx) => $body,
            _ => unreachable!("DynamicIndex::new only accepts undirected indices"),
        }
    };
}

/// Merged view over a base label body and a delta label, yielding
/// `(hub rank, dist)` strictly sorted by rank; a hub present in both
/// sides yields the smaller distance (deltas only ever improve).
struct MergedCursor<'a> {
    base_ranks: &'a [Rank],
    base_dists: &'a [Dist],
    delta_ranks: &'a [Rank],
    delta_dists: &'a [Dist],
    i: usize,
    j: usize,
}

impl MergedCursor<'_> {
    #[inline]
    fn next(&mut self) -> Option<(Rank, Dist)> {
        let have_base = self.i < self.base_ranks.len();
        let have_delta = self.j < self.delta_ranks.len();
        match (have_base, have_delta) {
            (false, false) => None,
            (true, false) => {
                let out = (self.base_ranks[self.i], self.base_dists[self.i]);
                self.i += 1;
                Some(out)
            }
            (false, true) => {
                let out = (self.delta_ranks[self.j], self.delta_dists[self.j]);
                self.j += 1;
                Some(out)
            }
            (true, true) => {
                let (rb, db) = (self.base_ranks[self.i], self.base_dists[self.i]);
                let (rd, dd) = (self.delta_ranks[self.j], self.delta_dists[self.j]);
                if rb < rd {
                    self.i += 1;
                    Some((rb, db))
                } else if rd < rb {
                    self.j += 1;
                    Some((rd, dd))
                } else {
                    self.i += 1;
                    self.j += 1;
                    Some((rb, db.min(dd)))
                }
            }
        }
    }
}

/// Borrowed view of everything needed to answer queries over
/// base ⊕ delta, shared by the live [`DynamicIndex`] and the frozen
/// [`OverlaySnapshot`] so both answer through exactly the same code.
#[derive(Clone, Copy)]
struct OverlayView<'a> {
    base: &'a AnyIndex,
    delta: &'a [DeltaLabel],
    bp_roots: &'a [Rank],
    bp_override: &'a [Option<Arc<Vec<BpEntry>>>],
}

impl<'a> OverlayView<'a> {
    /// Body (sentinel excluded) of the base label of rank `v`.
    fn base_label_body(&self, v: Rank) -> (&'a [Rank], &'a [Dist]) {
        with_undirected!(self.base, idx => {
            let (r, d) = idx.labels().label(v);
            (&r[..r.len() - 1], &d[..d.len() - 1])
        })
    }

    fn merged_cursor(&self, v: Rank) -> MergedCursor<'a> {
        let (br, bd) = self.base_label_body(v);
        let dl = &self.delta[v as usize];
        MergedCursor {
            base_ranks: br,
            base_dists: bd,
            delta_ranks: &dl.ranks,
            delta_dists: &dl.dists,
            i: 0,
            j: 0,
        }
    }

    /// Entry of vertex `v` for structure `i`, reading the repaired
    /// column when one exists and the base column otherwise.
    #[inline]
    fn eff_bp_entry(&self, v: Rank, i: usize) -> BpEntry {
        match &self.bp_override[i] {
            Some(column) => column[v as usize],
            None => with_undirected!(self.base, idx => idx.bit_parallel().entry(v, i)),
        }
    }

    /// The §5.3 bit-parallel query over the *effective* (repaired)
    /// columns — exact whenever a shortest path meets a structure's
    /// source set, because affected columns are repaired on insert.
    fn eff_bp_query(&self, u: Rank, v: Rank) -> u32 {
        let mut best = INF_QUERY;
        for i in 0..self.bp_roots.len() {
            let a = self.eff_bp_entry(u, i);
            let b = self.eff_bp_entry(v, i);
            best = bp_pair_min(&a, &b, best);
        }
        best
    }

    /// The exact updated distance between rank-space vertices: min over
    /// the repaired bit-parallel oracle and the merge-join over combined
    /// base + delta labels.
    fn combined_query_ranks(&self, u: Rank, v: Rank) -> u32 {
        if u == v {
            return 0;
        }
        let mut best = self.eff_bp_query(u, v);
        // Fast path: neither endpoint carries a delta label, so the
        // combined labels are exactly the sentinel-terminated base labels
        // and the shared (branchless) kernel applies directly.
        if self.delta[u as usize].ranks.is_empty() && self.delta[v as usize].ranks.is_empty() {
            let d = with_undirected!(self.base, idx => {
                let (ur, ud) = idx.labels().label(u);
                let (vr, vd) = idx.labels().label(v);
                crate::kernel::merge_query(ur, ud, vr, vd)
            });
            return best.min(d);
        }
        let mut cu = self.merged_cursor(u);
        let mut cv = self.merged_cursor(v);
        let mut au = cu.next();
        let mut av = cv.next();
        while let (Some((ru, du)), Some((rv, dv))) = (au, av) {
            if ru == rv {
                let d = du as u32 + dv as u32;
                if d < best {
                    best = d;
                }
                au = cu.next();
                av = cv.next();
            } else if ru < rv {
                au = cu.next();
            } else {
                av = cv.next();
            }
        }
        best
    }

    /// Exact distance in the updated graph (vertex space); `None` when
    /// disconnected. Panics on out-of-range endpoints.
    fn distance(&self, u: Vertex, v: Vertex) -> Option<u32> {
        let n = self.base.num_vertices();
        assert!((u as usize) < n, "vertex {u} out of range");
        assert!((v as usize) < n, "vertex {v} out of range");
        if u == v {
            return Some(0);
        }
        let (ru, rv) = with_undirected!(self.base, idx => (idx.rank_of(u), idx.rank_of(v)));
        let best = self.combined_query_ranks(ru, rv);
        (best != INF_QUERY).then_some(best)
    }

    /// Checked variant of [`OverlayView::distance`].
    fn try_distance(&self, u: Vertex, v: Vertex) -> Result<Option<u32>> {
        let n = self.base.num_vertices();
        for x in [u, v] {
            if x as usize >= n {
                return Err(PllError::VertexOutOfRange {
                    vertex: x,
                    num_vertices: n,
                });
            }
        }
        Ok(self.distance(u, v))
    }

    /// Merges base + delta into a fresh owned [`PllIndex`] — see
    /// [`DynamicIndex::flatten`] for the contract.
    fn flatten(&self, threads: usize) -> Result<PllIndex> {
        let n = self.base.num_vertices();
        let mut ranks: Vec<Vec<Rank>> = Vec::with_capacity(n);
        let mut dists: Vec<Vec<Dist>> = Vec::with_capacity(n);
        for v in 0..n as Rank {
            let mut cursor = self.merged_cursor(v);
            let mut vr = Vec::new();
            let mut vd = Vec::new();
            while let Some((w, d)) = cursor.next() {
                vr.push(w);
                vd.push(d);
            }
            ranks.push(vr);
            dists.push(vd);
        }
        let threads = crate::par::resolve_threads(threads);
        let labels = LabelSet::from_vecs(&ranks, &dists, None, threads)?;
        let t = self.bp_roots.len();
        let entries: Vec<BpEntry> = (0..n as Rank)
            .flat_map(|v| (0..t).map(move |i| self.eff_bp_entry(v, i)))
            .collect();
        let bp_owned = crate::bp::BitParallelLabels::from_raw(n, self.bp_roots.to_vec(), entries);
        with_undirected!(self.base, idx => {
            let order = idx.order().to_vec();
            let inv = inverse_permutation(&order);
            Ok(PllIndex::from_parts(order, inv, labels, bp_owned, idx.stats().clone()))
        })
    }
}

/// An immutable, query-only freeze of a [`DynamicIndex`] overlay: the
/// base index and the repaired bit-parallel columns are shared by
/// `Arc`, only the (small) delta labels are copied, so taking one costs
/// O(n + delta entries) — no flatten. Built by
/// [`DynamicIndex::snapshot`]; this is what `pll-server` publishes
/// behind its epoch cell under overlay-direct serving.
#[derive(Debug)]
pub struct OverlaySnapshot {
    base: Arc<AnyIndex>,
    delta: Vec<DeltaLabel>,
    bp_roots: Vec<Rank>,
    bp_override: Vec<Option<Arc<Vec<BpEntry>>>>,
    delta_entries: usize,
}

impl OverlaySnapshot {
    #[inline]
    fn view(&self) -> OverlayView<'_> {
        OverlayView {
            base: &self.base,
            delta: &self.delta,
            bp_roots: &self.bp_roots,
            bp_override: &self.bp_override,
        }
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// The shared base index underneath the overlay.
    pub fn base(&self) -> &Arc<AnyIndex> {
        &self.base
    }

    /// Delta label entries frozen into this snapshot (the overlay size
    /// the server reports and thresholds flattens on).
    pub fn delta_entries(&self) -> usize {
        self.delta_entries
    }

    /// Exact distance in the updated graph; `None` when disconnected.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range (see
    /// [`OverlaySnapshot::try_distance`]).
    pub fn distance(&self, u: Vertex, v: Vertex) -> Option<u32> {
        self.view().distance(u, v)
    }

    /// Checked variant of [`OverlaySnapshot::distance`].
    pub fn try_distance(&self, u: Vertex, v: Vertex) -> Result<Option<u32>> {
        self.view().try_distance(u, v)
    }

    /// Whether `u` and `v` are connected in the updated graph.
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        self.distance(u, v).is_some()
    }

    /// Merges base + delta into a fresh owned [`PllIndex`] answering
    /// exactly like this snapshot (same contract as
    /// [`DynamicIndex::flatten`]) — the background flattener runs this
    /// off the request path.
    pub fn flatten(&self, threads: usize) -> Result<PllIndex> {
        self.view().flatten(threads)
    }
}

/// Recovers the bit-parallel selected-neighbour identities and root
/// ranks from an undirected base index. Bit `k` of structure `i`
/// belongs to the unique vertex `v` with `δ̃_i(v) = 1` and bit `k` set
/// in its own `S⁻¹` mask (`d(v, v) = 0 = δ̃ − 1`); a non-selected
/// distance-1 vertex inherits only the root's empty `S⁻¹`, so the
/// recovery is exact — also on a flattened (repaired) base, where the
/// same fixpoint holds over the updated adjacency.
fn recover_bp_sources(base: &AnyIndex) -> (Vec<Vec<Rank>>, Vec<Rank>) {
    let n = base.num_vertices();
    let bp_sel = with_undirected!(base, idx => {
        let bp = idx.bit_parallel();
        let t = bp.num_roots();
        let mut sel = vec![vec![RANK_SENTINEL; 64]; t];
        for v in 0..n as Rank {
            for (i, slots) in sel.iter_mut().enumerate() {
                let e = bp.entry(v, i);
                if e.dist == 1 && e.set_minus1 != 0 {
                    let own = e.set_minus1.trailing_zeros() as usize;
                    slots[own] = v;
                }
            }
        }
        sel
    });
    let bp_roots = with_undirected!(base, idx => idx.bit_parallel().roots().to_vec());
    (bp_sel, bp_roots)
}

/// Removes the first occurrence of `x` from `v`, preserving order.
fn remove_first(v: &mut Vec<Rank>, x: Rank) {
    if let Some(p) = v.iter().position(|&y| y == x) {
        v.remove(p);
    }
}

/// Reusable per-batch scratch: lazily-reset tentative distances and the
/// §4.5 temp array over the current root's combined label.
struct UpdateScratch {
    /// Tentative BFS distance, `INF_QUERY` = untouched.
    tent: Vec<u32>,
    /// `temp[w] =` combined label distance from the current root to hub
    /// `w`, `INF8` = absent.
    temp: Vec<Dist>,
    /// BFS queue; doubles as the touched-vertex list for the lazy reset.
    queue: Vec<Rank>,
    /// The current root's bit-parallel entries, copied out once.
    root_bp: Vec<BpEntry>,
    /// Affected-root collection buffer.
    roots: Vec<Rank>,
    /// Ranks whose delta label or bit-parallel words changed this batch.
    touched_ranks: Vec<Rank>,
    /// Pre-edge BFS distances from the inserted edge's two endpoints
    /// (the batched affected-root trigger), `INF_QUERY` = untouched.
    trig_a: Vec<u32>,
    trig_b: Vec<u32>,
    /// Their BFS queues; double as touched lists for the lazy reset.
    trig_qa: Vec<Rank>,
    trig_qb: Vec<Rank>,
    /// Incremental bit-parallel column repair scratch.
    repair: RepairScratch,
}

impl UpdateScratch {
    fn new(n: usize) -> Self {
        UpdateScratch {
            tent: vec![INF_QUERY; n],
            temp: vec![INF8; n],
            queue: Vec::new(),
            root_bp: Vec::new(),
            roots: Vec::new(),
            touched_ranks: Vec::new(),
            trig_a: vec![INF_QUERY; n],
            trig_b: vec![INF_QUERY; n],
            trig_qa: Vec::new(),
            trig_qb: Vec::new(),
            repair: RepairScratch::default(),
        }
    }
}

/// Outcome of one incremental column repair attempt.
enum RepairOutcome {
    /// Repair completed; the scratch overlay holds the (possibly empty)
    /// set of changed entries.
    Done,
    /// The affected region exceeded the frontier cap; the caller falls
    /// back to the full column recompute.
    FrontierExceeded,
}

/// Scratch for the incremental bit-parallel column repair: a sparse
/// overlay over one structure's column plus level-bucketed worklists.
/// Everything is reset lazily, so one repair costs O(touched region).
#[derive(Default)]
struct RepairScratch {
    /// `pos[v]` = overlay slot of rank `v`, `u32::MAX` = untouched.
    pos: Vec<u32>,
    /// Pre-repair entries, parallel to `touched`.
    old: Vec<BpEntry>,
    /// Post-repair entries, parallel to `touched`.
    new: Vec<BpEntry>,
    /// Ranks holding an overlay slot, in slot order.
    touched: Vec<Rank>,
    /// `dirty_mark[v] == gen` ⇔ `v` is already queued for mask repair.
    dirty_mark: Vec<u32>,
    /// Generation counter behind `dirty_mark`'s lazy clearing.
    gen: u32,
    /// Mask-repair worklists, bucketed by (new) BFS level.
    buckets: Vec<Vec<Rank>>,
    /// FIFO queue of the distance phase; doubles as the list of
    /// distance-changed ranks when seeding the mask phase.
    queue: Vec<Rank>,
}

/// An undirected index plus a mutable delta overlay that absorbs edge
/// insertions incrementally — see the module docs for the algorithm and
/// the exactness argument.
///
/// ```
/// use pll_core::{dynamic::DynamicIndex, IndexBuilder, AnyIndex};
/// use pll_graph::CsrGraph;
/// use std::sync::Arc;
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let base = IndexBuilder::new().bit_parallel_roots(1).build(&g).unwrap();
/// let mut dyn_idx = DynamicIndex::new(Arc::new(AnyIndex::Undirected(base)), &g).unwrap();
/// assert_eq!(dyn_idx.distance(0, 3), Some(3));
/// dyn_idx.apply(&[(0, 3)]).unwrap();
/// assert_eq!(dyn_idx.distance(0, 3), Some(1));
/// assert_eq!(dyn_idx.distance(1, 3), Some(2));
/// ```
pub struct DynamicIndex {
    /// The immutable base index (undirected family, owned or view).
    base: Arc<AnyIndex>,
    /// Rank-relabelled base adjacency (vertex `i` *is* rank `i`).
    csr: CsrGraph,
    /// Inserted edges on top of `csr`, rank space, both directions.
    extra: Vec<Vec<Rank>>,
    /// Delta labels, rank-keyed.
    delta: Vec<DeltaLabel>,
    /// Inserted edges in original vertex space (for re-persisting).
    inserted: Vec<(Vertex, Vertex)>,
    /// Recovered identity of BP selected neighbour `(structure, bit)`,
    /// `RANK_SENTINEL` where the bit is unused.
    bp_sel: Vec<Vec<Rank>>,
    /// BP root ranks, copied out of the base (`u32::MAX` = exhausted).
    bp_roots: Vec<Rank>,
    /// Repaired bit-parallel columns: `Some` holds the copy-on-write
    /// column of a structure with at least one incrementally repaired
    /// word; `None` keeps reading the (still exact) base column. The
    /// `Arc` lets [`DynamicIndex::snapshot`] share repaired columns
    /// without copying them.
    bp_override: Vec<Option<Arc<Vec<BpEntry>>>>,
    /// Dense per-vertex distances to the `ktop` most important ranks:
    /// `dtop[v * ktop + w]` is the combined (base + delta) label entry
    /// of `v` for hub `w`, `INF8` where `v` carries no entry for `w`.
    /// Resumed roots are overwhelmingly top-ranked hubs, so the prune
    /// test covers them with one branchless strided row scan instead of
    /// walking `v`'s label (see [`DynamicIndex::pruned`]).
    dtop: Vec<Dist>,
    /// Row stride of `dtop`: `DTOP_RANKS.min(n)`.
    ktop: usize,
    /// Vertices (original space) whose labels or bit-parallel words
    /// changed in the last applied batch — the cache-invalidation set.
    touched: Vec<Vertex>,
    /// Applied-batch counter (0 = pristine base).
    epoch: u64,
    /// Lifetime-accumulated counters.
    stats: UpdateStats,
    scratch: UpdateScratch,
}

impl std::fmt::Debug for DynamicIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicIndex")
            .field("num_vertices", &self.num_vertices())
            .field("epoch", &self.epoch)
            .field("inserted_edges", &self.inserted.len())
            .field("delta_entries", &self.delta_entries())
            .finish_non_exhaustive()
    }
}

impl DynamicIndex {
    /// Wraps `base` (which must be an **undirected** index, owned or
    /// zero-copy) together with the graph it was built from. The graph
    /// is needed because resumed BFSs traverse real adjacency; it is
    /// relabelled into rank space once, here.
    ///
    /// # Errors
    ///
    /// [`PllError::Unsupported`] if `base` is not an undirected index or
    /// `graph` visibly disagrees with it (vertex-count mismatch, or a
    /// sampled edge whose indexed distance is not 1).
    pub fn new(base: Arc<AnyIndex>, graph: &CsrGraph) -> Result<DynamicIndex> {
        if !matches!(
            &*base,
            AnyIndex::Undirected(_) | AnyIndex::UndirectedView(_)
        ) {
            return Err(PllError::Unsupported {
                message: format!(
                    "dynamic updates support the undirected index only (got {}); \
                     directed/weighted variants need per-side resumed searches and \
                     are future work",
                    base.format().name()
                ),
            });
        }
        let n = base.num_vertices();
        if graph.num_vertices() != n {
            return Err(PllError::Unsupported {
                message: format!(
                    "graph has {} vertices but the index covers {n}; pass the graph \
                     the index was built from",
                    graph.num_vertices()
                ),
            });
        }
        // Spot-check that the graph matches the index: every edge is a
        // distance-1 pair. A handful of samples catches passing the
        // wrong file without costing a full verification.
        for (u, v) in graph.edges().take(32) {
            if base.distance(u, v) != Some(1) {
                return Err(PllError::Unsupported {
                    message: format!(
                        "graph does not match the index: edge ({u}, {v}) is indexed at \
                         distance {:?}, expected 1",
                        base.distance(u, v)
                    ),
                });
            }
        }
        let order = with_undirected!(&*base, idx => idx.order().to_vec());
        let csr = apply_order(graph, &order)?;
        // Recover the BP selected-neighbour identities — the index
        // stores only the masks, but the identities are needed to treat
        // BP coverage as resumable virtual hubs and to repair columns.
        let (bp_sel, bp_roots) = recover_bp_sources(&base);
        let t = bp_roots.len();
        let mut this = DynamicIndex {
            base,
            csr,
            extra: vec![Vec::new(); n],
            delta: vec![DeltaLabel::default(); n],
            inserted: Vec::new(),
            bp_sel,
            bp_roots,
            bp_override: vec![None; t],
            dtop: Vec::new(),
            ktop: 0,
            touched: Vec::new(),
            epoch: 0,
            stats: UpdateStats::default(),
            scratch: UpdateScratch::new(n),
        };
        this.rebuild_dtop();
        Ok(this)
    }

    /// (Re)derives the dense top-rank distance rows from the base
    /// labels. Callers must have an **empty** delta (fresh wrap or just
    /// after a rebase cleared it); delta entries added later are
    /// mirrored in by [`DynamicIndex::resume`].
    fn rebuild_dtop(&mut self) {
        let n = self.num_vertices();
        self.ktop = DTOP_RANKS.min(n);
        let mut dtop = std::mem::take(&mut self.dtop);
        dtop.clear();
        dtop.resize(n * self.ktop, INF8);
        for v in 0..n as Rank {
            let (ur, ud) = self.base_label_body(v);
            let row = v as usize * self.ktop;
            for (&w, &dw) in ur.iter().zip(ud.iter()) {
                if (w as usize) >= self.ktop {
                    break;
                }
                dtop[row + w as usize] = dw;
            }
        }
        self.dtop = dtop;
    }

    /// Borrowed query view over the current overlay state (shared code
    /// path with [`OverlaySnapshot`]).
    #[inline]
    fn view(&self) -> OverlayView<'_> {
        OverlayView {
            base: &self.base,
            delta: &self.delta,
            bp_roots: &self.bp_roots,
            bp_override: &self.bp_override,
        }
    }

    /// Number of indexed vertices.
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Applied-batch counter: 0 for a pristine base, incremented by
    /// every [`DynamicIndex::apply`] call that inserted at least one
    /// edge. The serving layer surfaces this as the index *epoch*.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Overrides the epoch counter. Used by WAL recovery in the serving
    /// layer: a server restarting from a snapshot builds a fresh overlay
    /// (whose counter restarts at zero), replays the journal, and then
    /// needs the epoch sequence to continue from the pre-crash value so
    /// clients observe the same numbering as an uncrashed server.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The wrapped base index.
    pub fn base(&self) -> &Arc<AnyIndex> {
        &self.base
    }

    /// Edges inserted since construction (original vertex space).
    pub fn inserted_edges(&self) -> &[(Vertex, Vertex)] {
        &self.inserted
    }

    /// Total delta label entries currently in the overlay.
    pub fn delta_entries(&self) -> usize {
        self.delta.iter().map(|d| d.ranks.len()).sum()
    }

    /// Lifetime-accumulated update counters.
    pub fn update_stats(&self) -> &UpdateStats {
        &self.stats
    }

    /// Exact distance in the *updated* graph; `None` when disconnected.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range (see
    /// [`DynamicIndex::try_distance`]).
    pub fn distance(&self, u: Vertex, v: Vertex) -> Option<u32> {
        self.view().distance(u, v)
    }

    /// Checked variant of [`DynamicIndex::distance`].
    pub fn try_distance(&self, u: Vertex, v: Vertex) -> Result<Option<u32>> {
        self.view().try_distance(u, v)
    }

    /// Whether `u` and `v` are connected in the updated graph.
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        self.distance(u, v).is_some()
    }

    /// Applies a batch of edge insertions (original vertex space) and
    /// returns this batch's counters. Self-loops and edges already
    /// present are counted as skipped; the epoch is bumped iff at least
    /// one edge was inserted.
    ///
    /// # Errors
    ///
    /// [`PllError::VertexOutOfRange`] if any endpoint exceeds the vertex
    /// count (checked for the whole batch up front, before any edge is
    /// applied), [`PllError::DiameterTooLarge`] if a new finite distance
    /// exceeds the 8-bit representation (the overlay is left partially
    /// updated; rebuild with the weighted index).
    pub fn apply(&mut self, edges: &[(Vertex, Vertex)]) -> Result<UpdateStats> {
        let n = self.num_vertices();
        for &(u, v) in edges {
            for x in [u, v] {
                if x as usize >= n {
                    return Err(PllError::VertexOutOfRange {
                        vertex: x,
                        num_vertices: n,
                    });
                }
            }
        }
        let started = Instant::now();
        let mut batch = UpdateStats::default();
        self.touched.clear();
        self.scratch.touched_ranks.clear();
        for &(u, v) in edges {
            if u == v {
                batch.edges_skipped += 1;
                continue;
            }
            let (ru, rv) = with_undirected!(&*self.base, idx => (idx.rank_of(u), idx.rank_of(v)));
            if self.has_edge_rank(ru, rv) {
                batch.edges_skipped += 1;
                continue;
            }
            self.extra[ru as usize].push(rv);
            self.extra[rv as usize].push(ru);
            self.inserted.push((u, v));
            self.touched.push(u);
            self.touched.push(v);
            self.process_insertion(ru, rv, &mut batch)?;
            batch.edges_applied += 1;
        }
        batch.seconds = started.elapsed().as_secs_f64();
        if batch.edges_applied > 0 {
            self.epoch += 1;
        }
        // Surface the rank-space touches (delta upserts, repaired BP
        // words) in vertex space for the serving layer's cache
        // generations; the endpoints above are included conservatively.
        let mut ranks = std::mem::take(&mut self.scratch.touched_ranks);
        with_undirected!(&*self.base, idx => {
            let order = idx.order();
            self.touched.extend(ranks.iter().map(|&r| order[r as usize]));
        });
        ranks.clear();
        self.scratch.touched_ranks = ranks;
        self.touched.sort_unstable();
        self.touched.dedup();
        self.stats.absorb(&batch);
        Ok(batch)
    }

    /// Vertices whose labels or bit-parallel words changed in the last
    /// [`DynamicIndex::apply`] batch (original vertex space, sorted and
    /// deduplicated; inserted-edge endpoints always included). A query
    /// answer is a function of the two endpoints' label sets and BP
    /// rows only, so any pair whose distance changed has at least one
    /// endpoint in this set — a sound per-batch cache-invalidation set,
    /// which the serving layer turns into per-vertex generations.
    pub fn touched_vertices(&self) -> &[Vertex] {
        &self.touched
    }

    /// Whether the overlay currently differs from the base: delta label
    /// entries or repaired bit-parallel columns exist. `false` right
    /// after construction or a fully-caught-up [`DynamicIndex::rebase`];
    /// the flatten pipeline uses this to skip no-op flattens.
    pub fn overlay_dirty(&self) -> bool {
        self.delta.iter().any(|d| !d.ranks.is_empty())
            || self.bp_override.iter().any(Option::is_some)
    }

    /// Verification hook for tests and audits: whether every effective
    /// bit-parallel column (base plus copy-on-write overrides) is
    /// **word-identical** to a from-scratch 65-source BFS over the
    /// current adjacency — the correctness invariant of the incremental
    /// repair. O(t·(n+m)); not for hot paths.
    ///
    /// # Errors
    ///
    /// Propagates [`PllError::DiameterTooLarge`] from the reference
    /// recompute (the incremental repair would have hit it first).
    pub fn bp_columns_word_identical(&self) -> Result<bool> {
        let n = self.num_vertices();
        for i in 0..self.bp_roots.len() {
            if self.bp_roots[i] == RANK_SENTINEL {
                continue;
            }
            let full = self.recompute_column(i)?;
            for v in 0..n as Rank {
                if self.eff_bp_entry(v, i) != full[v as usize] {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Freezes the current overlay into an immutable query-only
    /// [`OverlaySnapshot`]: O(n + delta entries), sharing the base and
    /// the repaired bit-parallel columns by `Arc` — cheap enough to run
    /// on every UPDATE batch.
    pub fn snapshot(&self) -> OverlaySnapshot {
        OverlaySnapshot {
            base: Arc::clone(&self.base),
            delta: self.delta.clone(),
            bp_roots: self.bp_roots.clone(),
            bp_override: self.bp_override.clone(),
            delta_entries: self.delta_entries(),
        }
    }

    /// Swaps a freshly flattened base underneath the live overlay. The
    /// first `absorbed` inserted edges are assumed baked into `new_base`
    /// (they are when it came from flattening a snapshot taken at that
    /// point); the remainder is replayed against the new base, so
    /// answers are unchanged at every vertex pair. Epoch and lifetime
    /// stats are preserved — a rebase is a representation change, not
    /// an update, and it never touches [`DynamicIndex::touched_vertices`]
    /// semantics (the set refers to the last `apply` batch).
    ///
    /// # Errors
    ///
    /// [`PllError::Unsupported`] if `new_base` is not an undirected
    /// index with the same vertex count and rank order as the current
    /// base. Replay errors (e.g. [`PllError::DiameterTooLarge`]) cannot
    /// occur when the replayed edges were already applied to this
    /// overlay, but propagate if they do; the overlay is then invalid.
    pub fn rebase(&mut self, new_base: Arc<AnyIndex>, absorbed: usize) -> Result<()> {
        if !matches!(
            &*new_base,
            AnyIndex::Undirected(_) | AnyIndex::UndirectedView(_)
        ) {
            return Err(PllError::Unsupported {
                message: format!(
                    "rebase requires an undirected index (got {})",
                    new_base.format().name()
                ),
            });
        }
        if new_base.num_vertices() != self.num_vertices() {
            return Err(PllError::Unsupported {
                message: format!(
                    "rebase vertex-count mismatch: overlay covers {}, new base {}",
                    self.num_vertices(),
                    new_base.num_vertices()
                ),
            });
        }
        let same_order = with_undirected!(&*self.base, old => {
            with_undirected!(&*new_base, fresh => old.order() == fresh.order())
        });
        if !same_order {
            return Err(PllError::Unsupported {
                message: "rebase requires the same vertex order as the current base \
                          (flatten preserves it; an independently rebuilt index may not)"
                    .to_string(),
            });
        }
        let absorbed = absorbed.min(self.inserted.len());
        let replay: Vec<(Vertex, Vertex)> = self.inserted.split_off(absorbed);
        // The delta adjacency must describe exactly the edge set the new
        // base was flattened over before anything is replayed — a
        // not-yet-replayed edge left in `extra` would pollute the BP
        // mask fixpoint the incremental repair relies on. The absorbed
        // edges stay: `csr` is still the original base graph.
        for &(u, v) in &replay {
            let (ru, rv) = with_undirected!(&*new_base, idx => (idx.rank_of(u), idx.rank_of(v)));
            remove_first(&mut self.extra[ru as usize], rv);
            remove_first(&mut self.extra[rv as usize], ru);
        }
        for d in &mut self.delta {
            d.ranks.clear();
            d.dists.clear();
        }
        let (bp_sel, bp_roots) = recover_bp_sources(&new_base);
        self.bp_sel = bp_sel;
        self.bp_override = vec![None; bp_roots.len()];
        self.bp_roots = bp_roots;
        self.base = new_base;
        self.rebuild_dtop();
        let mut batch = UpdateStats::default();
        for &(u, v) in &replay {
            let (ru, rv) = with_undirected!(&*self.base, idx => (idx.rank_of(u), idx.rank_of(v)));
            self.extra[ru as usize].push(rv);
            self.extra[rv as usize].push(ru);
            self.inserted.push((u, v));
            self.process_insertion(ru, rv, &mut batch)?;
        }
        self.scratch.touched_ranks.clear();
        Ok(())
    }

    /// Merges base + delta labels into a fresh owned [`PllIndex`]
    /// answering exactly like this dynamic view — ready for
    /// [`crate::v2::save_v2_index`] and for atomically swapping into a
    /// serving cell. `threads` drives the parallel arena scatter of the
    /// flatten, exactly as in construction (`0` = auto).
    ///
    /// Parent pointers, if the base stored them, are dropped: resumed
    /// BFSs do not maintain them, and stale parents would reconstruct
    /// wrong paths through inserted edges. Rebuild with
    /// `store_parents(true)` when path reconstruction must survive
    /// updates.
    pub fn flatten(&self, threads: usize) -> Result<PllIndex> {
        self.view().flatten(threads)
    }

    // -- internals ----------------------------------------------------

    fn has_edge_rank(&self, a: Rank, b: Rank) -> bool {
        self.csr.has_edge(a, b) || self.extra[a as usize].contains(&b)
    }

    /// Body (sentinel excluded) of the base label of rank `v`.
    fn base_label_body(&self, v: Rank) -> (&[Rank], &[Dist]) {
        with_undirected!(&*self.base, idx => {
            let (r, d) = idx.labels().label(v);
            (&r[..r.len() - 1], &d[..d.len() - 1])
        })
    }

    /// Entry of vertex `v` for structure `i`, reading the repaired
    /// column when one exists and the base column otherwise.
    #[inline]
    fn eff_bp_entry(&self, v: Rank, i: usize) -> BpEntry {
        match &self.bp_override[i] {
            Some(column) => column[v as usize],
            None => with_undirected!(&*self.base, idx => idx.bit_parallel().entry(v, i)),
        }
    }

    /// `eff_bp_entry` against pre-resolved override columns: the hot
    /// insertion paths clone the `Arc` handles once per edge (so the
    /// borrow is independent of `self`) and read raw slices instead of
    /// re-resolving `bp_override` on every visit.
    #[inline]
    fn bp_entry_from(&self, cols: &[Option<&[BpEntry]>], v: Rank, i: usize) -> BpEntry {
        match cols[i] {
            Some(c) => c[v as usize],
            None => with_undirected!(&*self.base, idx => idx.bit_parallel().entry(v, i)),
        }
    }

    /// The exact updated distance between rank-space vertices: min over
    /// the repaired bit-parallel oracle and the merge-join over combined
    /// base + delta labels.
    fn combined_query_ranks(&self, u: Rank, v: Rank) -> u32 {
        self.view().combined_query_ranks(u, v)
    }

    /// Collects the hubs "visible" from rank `x`: combined normal label
    /// hubs plus the virtual bit-parallel hubs (structure roots with a
    /// finite δ̃ and the selected neighbours recorded in `x`'s masks).
    fn collect_hubs(&self, x: Rank, out: &mut Vec<Rank>) {
        let (br, _) = self.base_label_body(x);
        out.extend_from_slice(br);
        out.extend_from_slice(&self.delta[x as usize].ranks);
        for (i, sel) in self.bp_sel.iter().enumerate() {
            let e = self.eff_bp_entry(x, i);
            if e.dist == INF8 {
                continue;
            }
            debug_assert_ne!(
                self.bp_roots[i],
                u32::MAX,
                "reachable entry in exhausted slot"
            );
            out.push(self.bp_roots[i]);
            let mut bits = e.set_minus1 | e.set_zero;
            while bits != 0 {
                let k = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                debug_assert_ne!(sel[k], RANK_SENTINEL, "mask bit without identity");
                out.push(sel[k]);
            }
        }
    }

    /// Repairs the bit-parallel oracle for an inserted rank-space edge
    /// `(a, b)`. Every structure whose component contains the edge is
    /// repaired *incrementally* ([`DynamicIndex::repair_column_core`]):
    /// the repair keeps each stored column **word-identical to a full
    /// recompute over the current adjacency** — even a gap-1 edge
    /// changes sibling/parent mask words, so every in-component
    /// structure is visited, and the repair itself detects the (common)
    /// no-change case in O(degree). Structures whose affected region
    /// exceeds the frontier cap fall back to the full level-synchronous
    /// recompute. Only columns with at least one changed word
    /// materialize a copy-on-write override; `bp_columns_repaired`
    /// counts exactly those.
    fn update_bp_columns(&mut self, a: Rank, b: Rank, batch: &mut UpdateStats) -> Result<()> {
        for i in 0..self.bp_roots.len() {
            if self.bp_roots[i] == u32::MAX {
                continue; // exhausted slot, never ran
            }
            let ea = self.eff_bp_entry(a, i);
            let eb = self.eff_bp_entry(b, i);
            if ea.dist == INF8 && eb.dist == INF8 {
                continue; // the edge is outside this structure's component
            }
            let n = self.num_vertices();
            let mut s = std::mem::take(&mut self.scratch.repair);
            if s.pos.len() < n {
                s.pos.resize(n, u32::MAX);
                s.dirty_mark.resize(n, 0);
            }
            if s.buckets.len() < MAX_DIST as usize + 2 {
                s.buckets.resize_with(MAX_DIST as usize + 2, Vec::new);
            }
            s.old.clear();
            s.new.clear();
            s.touched.clear();
            s.queue.clear();
            s.gen = s.gen.wrapping_add(1);
            if s.gen == 0 {
                s.dirty_mark.fill(0);
                s.gen = 1;
            }
            let outcome = self.repair_column_core(i, a, b, &mut s);
            // Lazy reset (the overlay lists in `s` stay intact).
            for &v in &s.touched {
                s.pos[v as usize] = u32::MAX;
            }
            for bucket in s.buckets.iter_mut() {
                bucket.clear();
            }
            let outcome = match outcome {
                Ok(o) => o,
                Err(e) => {
                    self.scratch.repair = s;
                    return Err(e);
                }
            };
            match outcome {
                RepairOutcome::Done => {
                    let any_changed = (0..s.touched.len()).any(|p| s.new[p] != s.old[p]);
                    if any_changed {
                        self.ensure_override(i);
                        if let Some(arc) = self.bp_override[i].as_mut() {
                            let column = Arc::make_mut(arc);
                            for (p, &v) in s.touched.iter().enumerate() {
                                if s.new[p] != s.old[p] {
                                    column[v as usize] = s.new[p];
                                    self.scratch.touched_ranks.push(v);
                                }
                            }
                        }
                        batch.bp_columns_repaired += 1;
                    }
                }
                RepairOutcome::FrontierExceeded => {
                    let column = match self.recompute_column(i) {
                        Ok(c) => c,
                        Err(e) => {
                            self.scratch.repair = s;
                            return Err(e);
                        }
                    };
                    let mut changed = false;
                    for v in 0..n as Rank {
                        if self.eff_bp_entry(v, i) != column[v as usize] {
                            changed = true;
                            self.scratch.touched_ranks.push(v);
                        }
                    }
                    if changed {
                        self.bp_override[i] = Some(Arc::new(column));
                        batch.bp_columns_repaired += 1;
                    }
                }
            }
            self.scratch.repair = s;
        }
        Ok(())
    }

    /// Materializes an owned override column for structure `i` by
    /// copying the base column; no-op when an override already exists.
    fn ensure_override(&mut self, i: usize) {
        if self.bp_override[i].is_some() {
            return;
        }
        let n = self.num_vertices();
        let column: Vec<BpEntry> = with_undirected!(&*self.base, idx => {
            let bp = idx.bit_parallel();
            (0..n as Rank).map(|v| bp.entry(v, i)).collect()
        });
        self.bp_override[i] = Some(Arc::new(column));
    }

    /// Effective entry of `v` in structure `i`, reading the in-progress
    /// repair overlay first.
    #[inline]
    fn repaired_entry(&self, s: &RepairScratch, i: usize, v: Rank) -> BpEntry {
        match s.pos[v as usize] {
            u32::MAX => self.eff_bp_entry(v, i),
            p => s.new[p as usize],
        }
    }

    /// Ensures `v` has a repair-overlay slot (capturing its pre-repair
    /// entry for the change diff) and returns the slot index.
    fn repair_slot(&self, s: &mut RepairScratch, i: usize, v: Rank) -> usize {
        match s.pos[v as usize] {
            u32::MAX => {
                let e = self.eff_bp_entry(v, i);
                let p = s.touched.len();
                s.pos[v as usize] = p as u32;
                s.touched.push(v);
                s.old.push(e);
                s.new.push(e);
                p
            }
            p => p as usize,
        }
    }

    /// Queues `v` for the mask sweep at its (new) level; no-op for
    /// unreachable vertices (no masks) and already-queued ones.
    fn queue_dirty(&self, s: &mut RepairScratch, i: usize, v: Rank, max_level: &mut u32) {
        if s.dirty_mark[v as usize] == s.gen {
            return;
        }
        let e = self.repaired_entry(s, i, v);
        if e.dist == INF8 {
            return;
        }
        s.dirty_mark[v as usize] = s.gen;
        let level = e.dist as u32;
        s.buckets[level as usize].push(v);
        if level > *max_level {
            *max_level = level;
        }
    }

    /// The incremental column repair. The stored column is the unique
    /// fixpoint of the §5 recurrences over the current adjacency with
    /// the root pinned at 0 and each selected neighbour `k` pinned at 1
    /// with seed bit `1 << k`:
    ///
    /// * `S⁻¹(v) = seed(v) | OR { S⁻¹(u) : u ∈ N(v), d(u) = d(v) − 1 }`
    /// * `S⁰(v) = OR { S⁻¹(u) : u ∈ N(v), d(u) = d(v) }
    ///            | OR { S⁰(u) : u ∈ N(v), d(u) = d(v) − 1 }`
    ///
    /// which is exactly what [`DynamicIndex::recompute_column`] (and
    /// construction's level-synchronous BFS) computes — hence
    /// word-identity.
    ///
    /// **Phase 1 (distances)**: a decrease-only FIFO BFS seeded across
    /// the new edge. Old distances were exact over the old adjacency, so
    /// for any old edge `|d(u) − d(v)| ≤ 1`; improvements therefore only
    /// propagate through improved vertices and the BFS settles each
    /// affected vertex at its final new distance on first touch.
    ///
    /// **Phase 2 (masks)**: the dirty set — distance-changed vertices,
    /// their reachable neighbours, and the edge endpoints — is swept in
    /// level order. Per level, pass 1 re-evaluates `S⁻¹` (its level-−1
    /// inputs are final) and re-queues same-level neighbours on change
    /// (they read it for their `S⁰`); pass 2 re-evaluates `S⁰`
    /// (same-level `S⁻¹` is now final) and re-queues the children on
    /// any change (they read both words). Inductively every vertex whose
    /// fixpoint value differs from the stored word is queued before its
    /// level is processed, and untouched vertices keep their (equal)
    /// words — so the sweep rewrites exactly the changed words.
    fn repair_column_core(
        &self,
        i: usize,
        a: Rank,
        b: Rank,
        s: &mut RepairScratch,
    ) -> Result<RepairOutcome> {
        let n = self.num_vertices();
        let root = self.bp_roots[i];
        let cap = (n / 4).max(64);
        // Phase 1: decrease-only BFS across the inserted edge.
        let ea = self.eff_bp_entry(a, i);
        let eb = self.eff_bp_entry(b, i);
        let da = if ea.dist == INF8 {
            INF_QUERY
        } else {
            ea.dist as u32
        };
        let db = if eb.dist == INF8 {
            INF_QUERY
        } else {
            eb.dist as u32
        };
        let (far, dn) = if da <= db { (b, da) } else { (a, db) };
        if dn.saturating_add(1) < da.max(db) {
            if dn + 1 > MAX_DIST as u32 {
                return Err(PllError::DiameterTooLarge { root_rank: root });
            }
            let p = self.repair_slot(s, i, far);
            s.new[p].dist = (dn + 1) as u8;
            s.queue.push(far);
            let mut head = 0usize;
            while head < s.queue.len() {
                let v = s.queue[head];
                head += 1;
                let dv = s.new[s.pos[v as usize] as usize].dist as u32;
                for &u in self
                    .csr
                    .neighbors(v)
                    .iter()
                    .chain(self.extra[v as usize].iter())
                {
                    let eu = self.repaired_entry(s, i, u);
                    let du = if eu.dist == INF8 {
                        INF_QUERY
                    } else {
                        eu.dist as u32
                    };
                    if dv + 1 < du {
                        if dv + 1 > MAX_DIST as u32 {
                            return Err(PllError::DiameterTooLarge { root_rank: root });
                        }
                        let p = self.repair_slot(s, i, u);
                        s.new[p].dist = (dv + 1) as u8;
                        s.queue.push(u);
                        if s.queue.len() > cap {
                            return Ok(RepairOutcome::FrontierExceeded);
                        }
                    }
                }
            }
        }
        // Phase 2: seed the dirty set, then sweep in level order.
        let mut max_level = 0u32;
        for qi in 0..s.queue.len() {
            let v = s.queue[qi];
            self.queue_dirty(s, i, v, &mut max_level);
            for &u in self
                .csr
                .neighbors(v)
                .iter()
                .chain(self.extra[v as usize].iter())
            {
                self.queue_dirty(s, i, u, &mut max_level);
            }
        }
        self.queue_dirty(s, i, a, &mut max_level);
        self.queue_dirty(s, i, b, &mut max_level);
        let mut processed = 0usize;
        let mut level = 0u32;
        while level <= max_level {
            // Pass 1: S⁻¹ words (level-−1 inputs are final).
            let mut idx = 0usize;
            while idx < s.buckets[level as usize].len() {
                let v = s.buckets[level as usize][idx];
                idx += 1;
                processed += 1;
                if processed > cap {
                    return Ok(RepairOutcome::FrontierExceeded);
                }
                let mut m1 = 0u64;
                if level == 1 {
                    if let Some(k) = self.bp_sel[i].iter().position(|&x| x == v) {
                        m1 |= 1u64 << k;
                    }
                }
                if level > 0 {
                    for &u in self
                        .csr
                        .neighbors(v)
                        .iter()
                        .chain(self.extra[v as usize].iter())
                    {
                        let eu = self.repaired_entry(s, i, u);
                        if eu.dist != INF8 && eu.dist as u32 + 1 == level {
                            m1 |= eu.set_minus1;
                        }
                    }
                }
                let p = self.repair_slot(s, i, v);
                let moved = s.new[p].dist != s.old[p].dist;
                let m1_changed = m1 != s.old[p].set_minus1;
                s.new[p].set_minus1 = m1;
                if moved || m1_changed {
                    // Same-level neighbours read this S⁻¹ for their S⁰.
                    for &u in self
                        .csr
                        .neighbors(v)
                        .iter()
                        .chain(self.extra[v as usize].iter())
                    {
                        let eu = self.repaired_entry(s, i, u);
                        if eu.dist != INF8 && eu.dist as u32 == level {
                            self.queue_dirty(s, i, u, &mut max_level);
                        }
                    }
                }
            }
            // Pass 2: S⁰ words (same-level S⁻¹ is now final).
            let mut idx = 0usize;
            while idx < s.buckets[level as usize].len() {
                let v = s.buckets[level as usize][idx];
                idx += 1;
                let mut z = 0u64;
                for &u in self
                    .csr
                    .neighbors(v)
                    .iter()
                    .chain(self.extra[v as usize].iter())
                {
                    let eu = self.repaired_entry(s, i, u);
                    if eu.dist == INF8 {
                        continue;
                    }
                    if eu.dist as u32 == level {
                        z |= eu.set_minus1;
                    } else if eu.dist as u32 + 1 == level {
                        z |= eu.set_zero;
                    }
                }
                let p = s.pos[v as usize] as usize;
                s.new[p].set_zero = z;
                if s.new[p] != s.old[p] {
                    // Children read both words of this vertex.
                    for &u in self
                        .csr
                        .neighbors(v)
                        .iter()
                        .chain(self.extra[v as usize].iter())
                    {
                        let eu = self.repaired_entry(s, i, u);
                        if eu.dist != INF8 && eu.dist as u32 == level + 1 {
                            self.queue_dirty(s, i, u, &mut max_level);
                        }
                    }
                }
            }
            level += 1;
        }
        Ok(RepairOutcome::Done)
    }

    /// Reruns the level-synchronous 65-source BFS of structure `i`
    /// (same root, same selected neighbours and bit assignment) over
    /// the updated adjacency, yielding the full exact column.
    fn recompute_column(&self, i: usize) -> Result<Vec<BpEntry>> {
        let n = self.num_vertices();
        let root = self.bp_roots[i];
        let unreached = BpEntry {
            dist: INF8,
            set_minus1: 0,
            set_zero: 0,
        };
        let mut column = vec![unreached; n];
        column[root as usize].dist = 0;
        let mut current: Vec<Rank> = vec![root];
        let mut next: Vec<Rank> = Vec::new();
        for (k, &v) in self.bp_sel[i].iter().enumerate() {
            if v == RANK_SENTINEL {
                continue;
            }
            column[v as usize].dist = 1;
            column[v as usize].set_minus1 = 1u64 << k;
            next.push(v);
        }
        let mut sibling_edges: Vec<(Rank, Rank)> = Vec::new();
        let mut child_edges: Vec<(Rank, Rank)> = Vec::new();
        let mut level: u32 = 0;
        while !current.is_empty() {
            sibling_edges.clear();
            child_edges.clear();
            for &v in &current {
                for &u in self
                    .csr
                    .neighbors(v)
                    .iter()
                    .chain(self.extra[v as usize].iter())
                {
                    let du = column[u as usize].dist;
                    if du == INF8 {
                        if level as u8 >= MAX_DIST {
                            return Err(PllError::DiameterTooLarge { root_rank: root });
                        }
                        column[u as usize].dist = level as u8 + 1;
                        next.push(u);
                        child_edges.push((v, u));
                    } else if du as u32 == level + 1 {
                        child_edges.push((v, u));
                    } else if du as u32 == level {
                        sibling_edges.push((v, u));
                    }
                }
            }
            for &(v, u) in &sibling_edges {
                column[u as usize].set_zero |= column[v as usize].set_minus1;
            }
            for &(v, u) in &child_edges {
                column[u as usize].set_minus1 |= column[v as usize].set_minus1;
                column[u as usize].set_zero |= column[v as usize].set_zero;
            }
            std::mem::swap(&mut current, &mut next);
            next.clear();
            level += 1;
        }
        Ok(column)
    }

    /// Handles one inserted rank-space edge `(a, b)` (already added to
    /// the delta adjacency): repairs the bit-parallel oracle, then
    /// resumes pruned BFSs from every affected root whose pre-edge
    /// distances to the endpoints differ by ≥ 2.
    ///
    /// The trigger needs `d(r, a)` and `d(r, b)` in the pre-edge graph
    /// for every candidate root. Two ways to get those exact values:
    /// one combined-label query per root and endpoint
    /// (O(roots · avg-label)), or two plain BFSs from the endpoints
    /// over the combined adjacency minus the new edge (O(n + m) total,
    /// independent of the root count). Both are exact on the same
    /// metric, so the choice is purely a cost model: small graphs with
    /// fat labels (where the root set rivals the vertex count) take the
    /// BFS pair; large sparse graphs with compact labels keep the
    /// per-root queries.
    fn process_insertion(&mut self, a: Rank, b: Rank, batch: &mut UpdateStats) -> Result<()> {
        self.update_bp_columns(a, b, batch)?;
        // Pin the (just-repaired) bit-parallel columns for the whole
        // edge: cloning the `Arc` handles detaches the borrow from
        // `self`, and the raw slices spare every trigger fetch and
        // prune-test visit a re-resolution of `bp_override`.
        let bp_over = self.bp_override.clone();
        let bp_cols: Vec<Option<&[BpEntry]>> = bp_over
            .iter()
            .map(|o| o.as_deref().map(Vec::as_slice))
            .collect();
        let mut roots = std::mem::take(&mut self.scratch.roots);
        roots.clear();
        self.collect_hubs(a, &mut roots);
        self.collect_hubs(b, &mut roots);
        roots.sort_unstable();
        roots.dedup();
        let n = self.num_vertices() as u64;
        let m = self.csr.num_edges() as u64 + 2 * self.inserted.len() as u64;
        // roots.len() ≈ |L(a)| + |L(b)| ≈ twice the average label, so
        // roots² / 2 estimates the per-root-query cost while 2(n + m)
        // is the exact BFS-pair cost.
        let bfs_cheaper = 2 * (n + m) < (roots.len() as u64).pow(2) / 2;
        if bfs_cheaper {
            let mut da_arr = std::mem::take(&mut self.scratch.trig_a);
            let mut db_arr = std::mem::take(&mut self.scratch.trig_b);
            let mut qa = std::mem::take(&mut self.scratch.trig_qa);
            let mut qb = std::mem::take(&mut self.scratch.trig_qb);
            self.pre_edge_distances(a, a, b, &mut da_arr, &mut qa);
            self.pre_edge_distances(b, a, b, &mut db_arr, &mut qb);
            let t = self.bp_roots.len();
            let a_bp: Vec<BpEntry> = (0..t).map(|i| self.bp_entry_from(&bp_cols, a, i)).collect();
            let b_bp: Vec<BpEntry> = (0..t).map(|i| self.bp_entry_from(&bp_cols, b, i)).collect();
            let mut result = Ok(());
            for &r in &roots {
                // Min with the (already repaired, so post-edge) BP
                // oracle, exactly like the combined query below does:
                // a root whose shortened pairs the oracle certifies
                // needs no label repair at all. The endpoints' entries
                // are hoisted above; only the root's vary per iteration.
                let mut qa_bp = INF_QUERY;
                let mut qb_bp = INF_QUERY;
                for i in 0..t {
                    let re = self.bp_entry_from(&bp_cols, r, i);
                    qa_bp = bp_pair_min(&re, &a_bp[i], qa_bp);
                    qb_bp = bp_pair_min(&re, &b_bp[i], qb_bp);
                }
                let da = da_arr[r as usize].min(qa_bp);
                let db = db_arr[r as usize].min(qb_bp);
                if da != INF_QUERY && da.saturating_add(1) < db {
                    result = self.resume(r, b, da + 1, batch, &bp_cols);
                } else if db != INF_QUERY && db.saturating_add(1) < da {
                    result = self.resume(r, a, db + 1, batch, &bp_cols);
                }
                if result.is_err() {
                    break;
                }
            }
            // Lazy reset so the next insertion starts clean.
            for &v in &qa {
                da_arr[v as usize] = INF_QUERY;
            }
            for &v in &qb {
                db_arr[v as usize] = INF_QUERY;
            }
            self.scratch.trig_a = da_arr;
            self.scratch.trig_b = db_arr;
            self.scratch.trig_qa = qa;
            self.scratch.trig_qb = qb;
            self.scratch.roots = roots;
            return result;
        }
        for &r in &roots {
            let da = self.combined_query_ranks(r, a);
            let db = self.combined_query_ranks(r, b);
            if da != INF_QUERY && da.saturating_add(1) < db {
                self.resume(r, b, da + 1, batch, &bp_cols)?;
            } else if db != INF_QUERY && db.saturating_add(1) < da {
                self.resume(r, a, db + 1, batch, &bp_cols)?;
            }
        }
        self.scratch.roots = roots;
        Ok(())
    }

    /// Fills `dist` with exact BFS distances from `from` over the
    /// combined adjacency **minus** the just-inserted edge `(a, b)` —
    /// the pre-edge metric the affected-root trigger compares, equal by
    /// construction to a combined-label query against the not-yet-
    /// repaired labels. `queue` doubles as the touched list for the
    /// caller's lazy reset.
    fn pre_edge_distances(
        &self,
        from: Rank,
        a: Rank,
        b: Rank,
        dist: &mut [u32],
        queue: &mut Vec<Rank>,
    ) {
        queue.clear();
        dist[from as usize] = 0;
        queue.push(from);
        let mut head = 0usize;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u as usize];
            for &w in self
                .csr
                .neighbors(u)
                .iter()
                .chain(self.extra[u as usize].iter())
            {
                if (u == a && w == b) || (u == b && w == a) {
                    continue;
                }
                if dist[w as usize] == INF_QUERY {
                    dist[w as usize] = du + 1;
                    queue.push(w);
                }
            }
        }
    }

    /// Resumes the pruned BFS of root `r` from `start` at distance `d0`,
    /// pruning every visit the combined index already answers and
    /// appending `(r, d)` delta entries elsewhere (Algorithm 1, seeded
    /// mid-tree).
    fn resume(
        &mut self,
        r: Rank,
        start: Rank,
        d0: u32,
        batch: &mut UpdateStats,
        bp_cols: &[Option<&[BpEntry]>],
    ) -> Result<()> {
        batch.roots_resumed += 1;
        // Temp array over the combined label of r (§4.5 "Querying"), and
        // d(r, r) = 0 even when r's own label elides it (BP-covered
        // roots never self-labelled). The top-rank head is exactly `r`'s
        // dense row (base and delta pre-merged, equal ranks already at
        // their min), so populating it is one short copy; only hubs past
        // `ktop` need a sparse walk, starting at a binary-searched
        // offset because labels are rank-sorted.
        let mut temp = std::mem::take(&mut self.scratch.temp);
        let ktop = self.ktop;
        // Highest-ranked hub present in `temp`: label scans in the prune
        // test can stop at the first hub past it (labels are rank-sorted
        // ascending, and a hub absent from `temp` can never certify).
        let mut temp_max = r;
        {
            temp[..ktop].copy_from_slice(&self.dtop[r as usize * ktop..(r as usize + 1) * ktop]);
            let (br, bd) = self.base_label_body(r);
            let start = br.partition_point(|&w| (w as usize) < ktop);
            for (&w, &dw) in br[start..].iter().zip(bd[start..].iter()) {
                temp[w as usize] = temp[w as usize].min(dw);
                temp_max = temp_max.max(w);
            }
            let dl = &self.delta[r as usize];
            let start = dl.ranks.partition_point(|&w| (w as usize) < ktop);
            for (&w, &dw) in dl.ranks[start..].iter().zip(dl.dists[start..].iter()) {
                temp[w as usize] = temp[w as usize].min(dw);
                temp_max = temp_max.max(w);
            }
            temp[r as usize] = 0;
        }

        let mut root_bp = std::mem::take(&mut self.scratch.root_bp);
        root_bp.clear();
        root_bp.extend((0..self.bp_roots.len()).map(|i| self.bp_entry_from(bp_cols, r, i)));

        let mut tent = std::mem::take(&mut self.scratch.tent);
        let mut queue = std::mem::take(&mut self.scratch.queue);
        queue.clear();
        queue.push(start);
        tent[start as usize] = d0;
        let mut head = 0usize;
        let mut result = Ok(());
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let d = tent[u as usize];
            batch.vertices_visited += 1;
            if self.pruned(&root_bp, bp_cols, u, d, &temp, temp_max) {
                continue;
            }
            if d > MAX_DIST as u32 {
                result = Err(PllError::DiameterTooLarge { root_rank: r });
                break;
            }
            if self.delta[u as usize].upsert(r, d as Dist) {
                if (r as usize) < self.ktop {
                    // Mirror the (inserted or improved) entry into the
                    // dense row the prune test reads.
                    self.dtop[u as usize * self.ktop + r as usize] = d as Dist;
                }
                batch.entries_added += 1;
                self.scratch.touched_ranks.push(u);
            }
            for w in self
                .csr
                .neighbors(u)
                .iter()
                .chain(self.extra[u as usize].iter())
            {
                if tent[*w as usize] == INF_QUERY {
                    tent[*w as usize] = d + 1;
                    queue.push(*w);
                }
            }
        }
        // Lazy reset of everything touched: one fill for the dense head,
        // then the sparse tail hubs. The walk re-reads the *current*
        // labels — a superset of what setup saw if the BFS just grew
        // `delta[r]` — which at worst re-clears an already-clear slot.
        for &v in &queue {
            tent[v as usize] = INF_QUERY;
        }
        temp[..ktop].fill(INF8);
        if (temp_max as usize) >= ktop {
            let (br, _) = self.base_label_body(r);
            let start = br.partition_point(|&w| (w as usize) < ktop);
            for &w in &br[start..] {
                temp[w as usize] = INF8;
            }
            let dl = &self.delta[r as usize];
            let start = dl.ranks.partition_point(|&w| (w as usize) < ktop);
            for &w in &dl.ranks[start..] {
                temp[w as usize] = INF8;
            }
            temp[r as usize] = INF8;
        }
        self.scratch.tent = tent;
        self.scratch.temp = temp;
        self.scratch.queue = queue;
        self.scratch.root_bp = root_bp;
        result
    }

    /// The dynamic pruning test for a visit of `u` at distance `d` from
    /// the current root: the branchless dense-row label test first (the
    /// cheapest check and the one that fires most often), then the
    /// repaired bit-parallel certificates, then the sparse label
    /// suffix. The three certificates are OR'd, so the order is purely
    /// a cost choice.
    fn pruned(
        &self,
        root_bp: &[BpEntry],
        bp_cols: &[Option<&[BpEntry]>],
        u: Rank,
        d: u32,
        temp: &[Dist],
        temp_max: Rank,
    ) -> bool {
        if d >= INF8 as u32 {
            // Distances this large are about to fail the MAX_DIST check
            // anyway; take the plain label walk, whose unsaturated sums
            // keep the exact legacy semantics at the overflow boundary.
            // `temp_max` only tracks hubs past the dense head, so widen
            // the stop bound to cover the head too (a larger bound only
            // scans further — unset `temp` entries never certify).
            if self.bp_certified(root_bp, bp_cols, u, d) {
                return true;
            }
            let stop = temp_max.max(self.ktop.saturating_sub(1) as Rank);
            return self.pruned_scan(u, d, temp, stop, 0);
        }
        // Top ranks: one branchless strided row — min over the dense
        // `d(r, w) + d(w, u)` relaxations, `INF8` saturating so missing
        // entries never certify. This is the whole test for the common
        // case (`temp_max < ktop`, i.e. every hub of the merged L(r) is
        // a top rank). `best` stays INF8 = 255 when nothing certifies,
        // which can't pass `<= d` here (`d < 255`).
        let row = &self.dtop[u as usize * self.ktop..(u as usize + 1) * self.ktop];
        let mut best = INF8;
        for (&tw, &dw) in temp[..self.ktop].iter().zip(row.iter()) {
            best = best.min(tw.saturating_add(dw));
        }
        if best as u32 <= d {
            return true;
        }
        if self.bp_certified(root_bp, bp_cols, u, d) {
            return true;
        }
        if (temp_max as usize) >= self.ktop && self.pruned_scan(u, d, temp, temp_max, self.ktop) {
            return true;
        }
        false
    }

    /// Whether any repaired bit-parallel structure certifies
    /// `d(r, u) <= d` — the §5.3 case analysis against the root entries
    /// hoisted in `root_bp` and the per-edge resolved columns.
    #[inline]
    fn bp_certified(
        &self,
        root_bp: &[BpEntry],
        bp_cols: &[Option<&[BpEntry]>],
        u: Rank,
        d: u32,
    ) -> bool {
        root_bp.iter().enumerate().any(|(i, a)| {
            if a.dist == INF8 {
                return false;
            }
            let b = self.bp_entry_from(bp_cols, u, i);
            if b.dist == INF8 {
                return false;
            }
            let mut td = a.dist as u32 + b.dist as u32;
            if td.saturating_sub(2) > d {
                return false;
            }
            if a.set_minus1 & b.set_minus1 != 0 {
                td -= 2;
            } else if (a.set_minus1 & b.set_zero) | (a.set_zero & b.set_minus1) != 0 {
                td -= 1;
            }
            td <= d
        })
    }

    /// The label-walk half of the prune test, restricted to hubs with
    /// rank in `[min_rank, temp_max]` — the tail [`DynamicIndex::dtop`]
    /// does not cover. Labels are rank-sorted, so the walk starts at a
    /// binary-searched offset and stops at the first hub past
    /// `temp_max` (absent from `temp`, it could never certify).
    fn pruned_scan(&self, u: Rank, d: u32, temp: &[Dist], temp_max: Rank, min_rank: usize) -> bool {
        let (ur, ud) = self.base_label_body(u);
        let start = ur.partition_point(|&w| (w as usize) < min_rank);
        for (&w, &dw) in ur[start..].iter().zip(ud[start..].iter()) {
            if w > temp_max {
                break;
            }
            let tw = temp[w as usize];
            if tw != INF8 && tw as u32 + dw as u32 <= d {
                return true;
            }
        }
        let dl = &self.delta[u as usize];
        let start = dl.ranks.partition_point(|&w| (w as usize) < min_rank);
        for (&w, &dw) in dl.ranks[start..].iter().zip(dl.dists[start..].iter()) {
            if w > temp_max {
                break;
            }
            let tw = temp[w as usize];
            if tw != INF8 && tw as u32 + dw as u32 <= d {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuilder;
    use crate::order::OrderingStrategy;
    use pll_graph::gen;
    use pll_graph::traversal::bfs::BfsEngine;

    fn owned_any(g: &CsrGraph, bp_roots: usize) -> Arc<AnyIndex> {
        let idx = IndexBuilder::new()
            .bit_parallel_roots(bp_roots)
            .build(g)
            .unwrap();
        Arc::new(AnyIndex::Undirected(idx))
    }

    fn view_any(g: &CsrGraph, bp_roots: usize) -> Arc<AnyIndex> {
        let idx = IndexBuilder::new()
            .bit_parallel_roots(bp_roots)
            .build(g)
            .unwrap();
        let mut buf = Vec::new();
        crate::v2::save_v2_index(&idx, &mut buf).unwrap();
        let aligned = Arc::new(crate::storage::AlignedBytes::from_bytes(&buf));
        Arc::new(crate::v2::open_v2_bytes(aligned).unwrap())
    }

    /// Checks the dynamic index against BFS ground truth on `full` after
    /// applying `new_edges` on top of `base_graph`.
    fn assert_exact(dyn_idx: &DynamicIndex, full: &CsrGraph) {
        let n = full.num_vertices();
        let mut engine = BfsEngine::new(n);
        for s in 0..n as Vertex {
            let d = engine.run(full, s).to_vec();
            for t in 0..n as Vertex {
                let expect = (d[t as usize] != u32::MAX).then_some(d[t as usize]);
                assert_eq!(dyn_idx.distance(s, t), expect, "pair ({s}, {t})");
            }
        }
    }

    /// Splits `full`'s edges: the first `keep` stay in the base graph,
    /// the rest are applied dynamically (in batches of `batch`). Checks
    /// exactness after every batch, over both backends.
    fn incremental_case(full: &CsrGraph, keep: usize, batch: usize, bp_roots: usize) {
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let base_graph = CsrGraph::from_edges(full.num_vertices(), &all[..keep]).unwrap();
        for base in [
            owned_any(&base_graph, bp_roots),
            view_any(&base_graph, bp_roots),
        ] {
            let mut dyn_idx = DynamicIndex::new(base, &base_graph).unwrap();
            let mut applied = all[..keep].to_vec();
            for chunk in all[keep..].chunks(batch.max(1)) {
                dyn_idx.apply(chunk).unwrap();
                applied.extend_from_slice(chunk);
                let current = CsrGraph::from_edges(full.num_vertices(), &applied).unwrap();
                assert_exact(&dyn_idx, &current);
            }
            assert_eq!(dyn_idx.update_stats().edges_applied, all.len() - keep);
        }
    }

    #[test]
    fn single_insertions_on_structured_graphs() {
        incremental_case(&gen::grid(5, 5).unwrap(), 30, 1, 0);
        incremental_case(&gen::cycle(12).unwrap(), 11, 1, 2);
        incremental_case(&gen::complete(7).unwrap(), 10, 1, 1);
    }

    #[test]
    fn batched_insertions_on_random_graphs() {
        incremental_case(&gen::erdos_renyi_gnm(60, 150, 7).unwrap(), 90, 8, 0);
        incremental_case(&gen::barabasi_albert(70, 2, 3).unwrap(), 100, 5, 4);
    }

    #[test]
    fn insertion_joins_components() {
        // Two separate paths; the inserted edge bridges them.
        let g = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]).unwrap();
        for base in [owned_any(&g, 0), owned_any(&g, 2), view_any(&g, 2)] {
            let mut dyn_idx = DynamicIndex::new(base, &g).unwrap();
            assert_eq!(dyn_idx.distance(0, 7), None);
            assert!(!dyn_idx.connected(0, 7));
            dyn_idx.apply(&[(3, 4)]).unwrap();
            assert_eq!(dyn_idx.distance(0, 7), Some(7));
            assert!(dyn_idx.connected(0, 7));
            let full =
                CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)])
                    .unwrap();
            assert_exact(&dyn_idx, &full);
        }
    }

    #[test]
    fn noop_insertions_add_no_delta() {
        let g = gen::erdos_renyi_gnm(40, 120, 3).unwrap();
        let existing: Vec<(Vertex, Vertex)> = g.edges().take(5).collect();
        let mut dyn_idx = DynamicIndex::new(owned_any(&g, 2), &g).unwrap();
        // Duplicates and self-loops are skipped without touching labels.
        let mut batch = existing.clone();
        batch.push((7, 7));
        let stats = dyn_idx.apply(&batch).unwrap();
        assert_eq!(stats.edges_applied, 0);
        assert_eq!(stats.edges_skipped, existing.len() + 1);
        assert_eq!(stats.entries_added, 0);
        assert_eq!(dyn_idx.delta_entries(), 0);
        assert_eq!(dyn_idx.epoch(), 0, "no-op batches do not bump the epoch");
    }

    #[test]
    fn delta_prune_keeps_entries_minimal() {
        // Path 0-1-2: closing the triangle with (0, 2) changes exactly
        // one distance (d(0,2): 2 → 1). The overlay must stay tiny —
        // combined pruning means no redundant entries, and in particular
        // far fewer than a full per-root relabel would produce.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut dyn_idx = DynamicIndex::new(owned_any(&g, 0), &g).unwrap();
        let stats = dyn_idx.apply(&[(0, 2)]).unwrap();
        assert_eq!(stats.edges_applied, 1);
        assert_eq!(
            dyn_idx.delta_entries(),
            1,
            "one changed distance needs exactly one delta entry"
        );
        assert_eq!(dyn_idx.distance(0, 2), Some(1));
        assert_eq!(dyn_idx.epoch(), 1);
    }

    #[test]
    fn epoch_counts_applied_batches() {
        let g = gen::path(6).unwrap();
        let mut dyn_idx = DynamicIndex::new(owned_any(&g, 0), &g).unwrap();
        dyn_idx.apply(&[(0, 2)]).unwrap();
        dyn_idx.apply(&[(0, 3), (1, 4)]).unwrap();
        assert_eq!(dyn_idx.epoch(), 2);
        assert_eq!(dyn_idx.update_stats().edges_applied, 3);
        assert_eq!(dyn_idx.inserted_edges(), &[(0, 2), (0, 3), (1, 4)]);
    }

    #[test]
    fn flatten_matches_dynamic_and_rebuild() {
        let full = gen::erdos_renyi_gnm(50, 130, 11).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let base_graph = CsrGraph::from_edges(50, &all[..80]).unwrap();
        let mut dyn_idx = DynamicIndex::new(view_any(&base_graph, 3), &base_graph).unwrap();
        dyn_idx.apply(&all[80..]).unwrap();
        let flat = dyn_idx.flatten(1).unwrap();
        let rebuilt = IndexBuilder::new()
            .bit_parallel_roots(3)
            .build(&full)
            .unwrap();
        for s in 0..50u32 {
            for t in 0..50u32 {
                let d = dyn_idx.distance(s, t);
                assert_eq!(flat.distance(s, t), d, "flatten pair ({s}, {t})");
                assert_eq!(rebuilt.distance(s, t), d, "rebuild pair ({s}, {t})");
            }
        }
        // The flattened index round-trips through v2 and still agrees.
        let mut buf = Vec::new();
        crate::v2::save_v2_index(&flat, &mut buf).unwrap();
        let aligned = Arc::new(crate::storage::AlignedBytes::from_bytes(&buf));
        let reopened = crate::v2::open_v2_bytes(aligned).unwrap();
        for s in (0..50u32).step_by(3) {
            for t in (0..50u32).step_by(7) {
                assert_eq!(
                    reopened.distance(s, t),
                    dyn_idx.distance(s, t).map(u64::from)
                );
            }
        }
    }

    #[test]
    fn flatten_can_seed_a_new_dynamic_index() {
        // Flatten → wrap again → keep inserting: the flattened index is
        // a first-class base (its BP distances are stale upper bounds,
        // which the pruning tolerates by design).
        let full = gen::barabasi_albert(40, 2, 9).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let g0 = CsrGraph::from_edges(40, &all[..50]).unwrap();
        let mut d0 = DynamicIndex::new(owned_any(&g0, 2), &g0).unwrap();
        d0.apply(&all[50..60]).unwrap();
        let flat = d0.flatten(1).unwrap();
        let g1 = CsrGraph::from_edges(40, &all[..60]).unwrap();
        let mut d1 = DynamicIndex::new(Arc::new(AnyIndex::Undirected(flat)), &g1).unwrap();
        d1.apply(&all[60..]).unwrap();
        assert_exact(&d1, &full);
    }

    #[test]
    fn ordering_strategies_do_not_matter() {
        let full = gen::erdos_renyi_gnm(45, 110, 5).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let base_graph = CsrGraph::from_edges(45, &all[..70]).unwrap();
        for strat in [
            OrderingStrategy::Degree,
            OrderingStrategy::Random,
            OrderingStrategy::Closeness { samples: 8 },
        ] {
            let idx = IndexBuilder::new()
                .ordering(strat)
                .bit_parallel_roots(2)
                .build(&base_graph)
                .unwrap();
            let mut dyn_idx =
                DynamicIndex::new(Arc::new(AnyIndex::Undirected(idx)), &base_graph).unwrap();
            dyn_idx.apply(&all[70..]).unwrap();
            assert_exact(&dyn_idx, &full);
        }
    }

    #[test]
    fn rejects_wrong_family_and_mismatched_graph() {
        use pll_graph::wgraph::WeightedGraph;
        let wg = WeightedGraph::from_edges(4, &[(0, 1, 2), (1, 2, 3)]).unwrap();
        let widx = crate::weighted::WeightedIndexBuilder::new()
            .build(&wg)
            .unwrap();
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let err = DynamicIndex::new(Arc::new(AnyIndex::Weighted(widx)), &g).unwrap_err();
        assert!(matches!(err, PllError::Unsupported { .. }), "got {err}");

        // Vertex-count mismatch.
        let idx = owned_any(&g, 0);
        let bigger = CsrGraph::from_edges(6, &[(0, 1), (1, 2)]).unwrap();
        assert!(matches!(
            DynamicIndex::new(Arc::clone(&idx), &bigger),
            Err(PllError::Unsupported { .. })
        ));
        // Same n, visibly different edges: the spot check fires.
        let other = CsrGraph::from_edges(4, &[(0, 3), (0, 2)]).unwrap();
        assert!(matches!(
            DynamicIndex::new(idx, &other),
            Err(PllError::Unsupported { .. })
        ));
    }

    #[test]
    fn apply_rejects_out_of_range_before_mutating() {
        let g = gen::path(5).unwrap();
        let mut dyn_idx = DynamicIndex::new(owned_any(&g, 0), &g).unwrap();
        let err = dyn_idx.apply(&[(0, 2), (1, 99)]).unwrap_err();
        assert!(matches!(err, PllError::VertexOutOfRange { vertex: 99, .. }));
        // The whole batch was rejected up front: nothing changed.
        assert_eq!(dyn_idx.delta_entries(), 0);
        assert_eq!(dyn_idx.distance(0, 2), Some(2));
        assert_eq!(dyn_idx.epoch(), 0);
    }

    /// Asserts every structure's effective (incrementally repaired)
    /// column is word-identical to a from-scratch recompute over the
    /// current adjacency — the tentpole invariant of the repair.
    fn assert_columns_word_identical(d: &DynamicIndex) {
        let n = d.num_vertices();
        for i in 0..d.bp_roots.len() {
            if d.bp_roots[i] == u32::MAX {
                continue;
            }
            let full = d.recompute_column(i).unwrap();
            for v in 0..n as Rank {
                assert_eq!(
                    d.eff_bp_entry(v, i),
                    full[v as usize],
                    "structure {i}, rank {v}"
                );
            }
        }
    }

    #[test]
    fn repaired_columns_are_word_identical_to_recompute() {
        for (full, keep, bp) in [
            (gen::erdos_renyi_gnm(60, 150, 7).unwrap(), 90, 4),
            (gen::barabasi_albert(70, 2, 3).unwrap(), 100, 8),
            (gen::grid(6, 6).unwrap(), 40, 2),
        ] {
            let all: Vec<(Vertex, Vertex)> = full.edges().collect();
            let base_graph = CsrGraph::from_edges(full.num_vertices(), &all[..keep]).unwrap();
            let mut d = DynamicIndex::new(owned_any(&base_graph, bp), &base_graph).unwrap();
            for e in &all[keep..] {
                d.apply(std::slice::from_ref(e)).unwrap();
                assert_columns_word_identical(&d);
            }
        }
    }

    #[test]
    fn component_joins_repair_bp_words_exactly() {
        let g = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]).unwrap();
        let mut d = DynamicIndex::new(owned_any(&g, 3), &g).unwrap();
        d.apply(&[(3, 4)]).unwrap();
        assert_columns_word_identical(&d);
    }

    #[test]
    fn frontier_cap_falls_back_to_full_recompute() {
        // Closing a 150-vertex path into a cycle halves most distances:
        // the affected region blows past the cap (max(64, n/4)), forcing
        // the fallback, which must stay exact and word-identical.
        let full_edges: Vec<(Vertex, Vertex)> =
            (0..149).map(|i| (i, i + 1)).chain([(0, 149)]).collect();
        let g = CsrGraph::from_edges(150, &full_edges[..149]).unwrap();
        let mut d = DynamicIndex::new(owned_any(&g, 2), &g).unwrap();
        d.apply(&[(0, 149)]).unwrap();
        assert_columns_word_identical(&d);
        let full = CsrGraph::from_edges(150, &full_edges).unwrap();
        assert_exact(&d, &full);
    }

    #[test]
    fn snapshots_freeze_answers_while_the_live_overlay_moves_on() {
        let full = gen::erdos_renyi_gnm(40, 110, 9).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let g0 = CsrGraph::from_edges(40, &all[..70]).unwrap();
        let mut d = DynamicIndex::new(view_any(&g0, 2), &g0).unwrap();
        d.apply(&all[70..90]).unwrap();
        let snap = d.snapshot();
        d.apply(&all[90..]).unwrap();
        // The snapshot answers the state at freeze time…
        let mid = CsrGraph::from_edges(40, &all[..90]).unwrap();
        let mut engine = BfsEngine::new(40);
        for s in 0..40u32 {
            let dist = engine.run(&mid, s).to_vec();
            for t in 0..40u32 {
                let expect = (dist[t as usize] != u32::MAX).then_some(dist[t as usize]);
                assert_eq!(snap.distance(s, t), expect, "snapshot pair ({s}, {t})");
                assert_eq!(snap.try_distance(s, t).unwrap(), expect);
            }
        }
        // …the live overlay answers the full graph, and flattening the
        // snapshot reproduces the snapshot's answers bit-for-bit.
        assert_exact(&d, &full);
        let flat = snap.flatten(1).unwrap();
        for s in 0..40u32 {
            for t in 0..40u32 {
                assert_eq!(flat.distance(s, t), snap.distance(s, t));
            }
        }
        assert!(snap.try_distance(0, 99).is_err());
    }

    #[test]
    fn rebase_swaps_the_base_without_changing_answers() {
        let full = gen::erdos_renyi_gnm(50, 140, 17).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let g0 = CsrGraph::from_edges(50, &all[..80]).unwrap();
        let mut d = DynamicIndex::new(owned_any(&g0, 3), &g0).unwrap();
        d.apply(&all[80..110]).unwrap();
        // Snapshot mid-stream, as the background flattener would…
        let snap = d.snapshot();
        let absorbed = d.inserted_edges().len();
        // …while more updates land before the flatten finishes.
        d.apply(&all[110..130]).unwrap();
        let epoch = d.epoch();
        let flat = snap.flatten(1).unwrap();
        d.rebase(Arc::new(AnyIndex::Undirected(flat)), absorbed)
            .unwrap();
        assert_eq!(d.epoch(), epoch, "rebase must not move the epoch");
        assert_eq!(d.inserted_edges().len(), all[80..130].len());
        assert_columns_word_identical(&d);
        let g130 = CsrGraph::from_edges(50, &all[..130]).unwrap();
        assert_exact(&d, &g130);
        // Updates keep applying on the new base.
        d.apply(&all[130..]).unwrap();
        assert_exact(&d, &full);
        assert_columns_word_identical(&d);
        // A fully caught-up rebase leaves a pristine overlay.
        let flat_all = d.flatten(1).unwrap();
        let absorbed = d.inserted_edges().len();
        d.rebase(Arc::new(AnyIndex::Undirected(flat_all)), absorbed)
            .unwrap();
        assert!(!d.overlay_dirty());
        assert_eq!(d.delta_entries(), 0);
        assert_exact(&d, &full);
    }

    #[test]
    fn rebase_rejects_mismatched_bases() {
        let g = gen::path(6).unwrap();
        let mut d = DynamicIndex::new(owned_any(&g, 0), &g).unwrap();
        let bigger = gen::path(8).unwrap();
        let other = owned_any(&bigger, 0);
        assert!(matches!(
            d.rebase(Arc::clone(&other), 0),
            Err(PllError::Unsupported { .. })
        ));
        use pll_graph::wgraph::WeightedGraph;
        let wg = WeightedGraph::from_edges(6, &[(0, 1, 2)]).unwrap();
        let widx = crate::weighted::WeightedIndexBuilder::new()
            .build(&wg)
            .unwrap();
        assert!(matches!(
            d.rebase(Arc::new(AnyIndex::Weighted(widx)), 0),
            Err(PllError::Unsupported { .. })
        ));
    }

    #[test]
    fn touched_vertices_cover_every_changed_pair() {
        let full = gen::erdos_renyi_gnm(45, 120, 21).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let g0 = CsrGraph::from_edges(45, &all[..80]).unwrap();
        let mut d = DynamicIndex::new(owned_any(&g0, 2), &g0).unwrap();
        for chunk in all[80..].chunks(4) {
            let before: Vec<Vec<Option<u32>>> = (0..45)
                .map(|s| (0..45).map(|t| d.distance(s, t)).collect())
                .collect();
            d.apply(chunk).unwrap();
            let touched: std::collections::HashSet<Vertex> =
                d.touched_vertices().iter().copied().collect();
            for s in 0..45u32 {
                for t in 0..45u32 {
                    if d.distance(s, t) != before[s as usize][t as usize] {
                        assert!(
                            touched.contains(&s) || touched.contains(&t),
                            "changed pair ({s}, {t}) has no touched endpoint"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bp_covered_pairs_get_fresh_coverage() {
        // Saturate BP so phase 2 labels are almost empty: every pair is
        // covered by bit-parallel certificates only. Inserting edges
        // must still restore exactness via delta entries.
        let full = gen::erdos_renyi_gnm(30, 80, 13).unwrap();
        let all: Vec<(Vertex, Vertex)> = full.edges().collect();
        let base_graph = CsrGraph::from_edges(30, &all[..50]).unwrap();
        let base = owned_any(&base_graph, 64);
        let mut dyn_idx = DynamicIndex::new(base, &base_graph).unwrap();
        dyn_idx.apply(&all[50..]).unwrap();
        assert_exact(&dyn_idx, &full);
    }
}
