//! Versioned binary serialisation of [`PllIndex`] — the **v1** stream
//! formats.
//!
//! Superseded as the write path by the zero-copy v2 format of
//! [`crate::v2`] (`pll build` writes v2); the v1 readers here stay
//! supported so existing index files keep loading, and
//! [`detect_format`] sniffs both generations. The v1 writers remain for
//! compatibility tests and for producing files older tooling can read.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic    8 bytes  "PLLIDX01"
//! length   u64      payload byte count
//! checksum u64      FNV-1a over the payload
//! payload:
//!   n           u64
//!   t           u64
//!   flags       u8      bit 0: parents stored
//!   order       n × u32
//!   offsets     (n+1) × u32
//!   ranks       len × u32
//!   dists       len × u8
//!   [parents    len × u32]           (iff flag)
//!   bp_roots    t × u32
//!   bp_entries  n·t × (u8 + u64 + u64)
//! ```
//!
//! `inv` is recomputed from `order` on load; construction statistics are
//! not persisted (a loaded index reports default stats).

use crate::bp::{BitParallelLabels, BpEntry};
use crate::error::{PllError, Result};
use crate::index::PllIndex;
use crate::label::LabelSet;
use crate::stats::ConstructionStats;
use crate::types::{INF8, RANK_SENTINEL};
use pll_graph::reorder::inverse_permutation;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"PLLIDX01";

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(PllError::Format {
                message: "payload truncated".into(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u32_vec(&mut self, count: usize) -> Result<Vec<u32>> {
        let bytes = count.checked_mul(4).ok_or(PllError::Format {
            message: "array length overflows".into(),
        })?;
        let raw = self.take(bytes)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Writes `index` to `writer`.
pub fn save_index<W: Write>(index: &PllIndex, mut writer: W) -> Result<()> {
    let (order, _inv, labels, bp, _stats) = index.parts();
    let (offsets, ranks, dists, parents) = labels.as_raw();
    let (bp_roots, bp_entries) = bp.as_raw();

    let mut payload: Vec<u8> = Vec::new();
    payload.extend_from_slice(&(order.len() as u64).to_le_bytes());
    payload.extend_from_slice(&(bp_roots.len() as u64).to_le_bytes());
    payload.push(u8::from(parents.is_some()));
    for &v in order {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    for &o in offsets {
        payload.extend_from_slice(&o.to_le_bytes());
    }
    for &r in ranks {
        payload.extend_from_slice(&r.to_le_bytes());
    }
    payload.extend_from_slice(dists);
    if let Some(parents) = parents {
        for &p in parents {
            payload.extend_from_slice(&p.to_le_bytes());
        }
    }
    for &r in bp_roots {
        payload.extend_from_slice(&r.to_le_bytes());
    }
    for e in bp_entries {
        payload.push(e.dist);
        payload.extend_from_slice(&e.set_minus1.to_le_bytes());
        payload.extend_from_slice(&e.set_zero.to_le_bytes());
    }

    writer.write_all(MAGIC)?;
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(&fnv1a(&payload).to_le_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads an index written by [`save_index`].
///
/// # Errors
///
/// [`PllError::Format`] on bad magic, checksum mismatch, truncation or
/// structural inconsistencies.
pub fn load_index<R: Read>(mut reader: R) -> Result<PllIndex> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(PllError::Format {
            message: "bad magic bytes".into(),
        });
    }
    let mut hdr = [0u8; 16];
    reader.read_exact(&mut hdr)?;
    let len = u64::from_le_bytes(hdr[..8].try_into().unwrap());
    let checksum = u64::from_le_bytes(hdr[8..].try_into().unwrap());
    // Never allocate `len` up front: a corrupt header could claim exabytes.
    // `Read::take` bounds the read; growth is bounded by the actual stream.
    let mut payload = Vec::new();
    reader.take(len).read_to_end(&mut payload)?;
    if payload.len() as u64 != len {
        return Err(PllError::Format {
            message: "payload truncated".into(),
        });
    }
    if fnv1a(&payload) != checksum {
        return Err(PllError::Format {
            message: "checksum mismatch".into(),
        });
    }

    let mut c = Cursor {
        buf: &payload,
        pos: 0,
    };
    let n = c.u64()? as usize;
    let t = c.u64()? as usize;
    // A vertex costs at least 9 payload bytes (order entry + offset +
    // sentinel); reject fabricated counts before any sized allocation.
    if n.saturating_mul(9) > payload.len() || t.saturating_mul(4) > payload.len() {
        return Err(PllError::Format {
            message: "vertex/root counts exceed payload size".into(),
        });
    }
    let flags = c.u8()?;
    let has_parents = flags & 1 != 0;

    let order = c.u32_vec(n)?;
    let offsets = c.u32_vec(n + 1)?;
    let total = *offsets.last().unwrap_or(&0) as usize;
    if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PllError::Format {
            message: "non-monotone label offsets".into(),
        });
    }
    let ranks = c.u32_vec(total)?;
    let dists = c.take(total)?.to_vec();
    let parents = if has_parents {
        Some(c.u32_vec(total)?)
    } else {
        None
    };
    let bp_roots = c.u32_vec(t)?;
    let entry_count = n.checked_mul(t).ok_or(PllError::Format {
        message: "bit-parallel entry count overflows".into(),
    })?;
    if entry_count.saturating_mul(17) > payload.len() {
        return Err(PllError::Format {
            message: "bit-parallel entries exceed payload size".into(),
        });
    }
    let mut bp_entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        let dist = c.u8()?;
        let set_minus1 = c.u64()?;
        let set_zero = c.u64()?;
        bp_entries.push(BpEntry {
            dist,
            set_minus1,
            set_zero,
        });
    }
    if c.pos != payload.len() {
        return Err(PllError::Format {
            message: format!("{} trailing payload bytes", payload.len() - c.pos),
        });
    }

    // Structural validation: each label strictly sorted and
    // sentinel-terminated.
    for v in 0..n {
        let s = offsets[v] as usize;
        let e = offsets[v + 1] as usize;
        if s == e {
            return Err(PllError::Format {
                message: format!("label of rank {v} lacks a sentinel"),
            });
        }
        if ranks[e - 1] != RANK_SENTINEL || dists[e - 1] != INF8 {
            return Err(PllError::Format {
                message: format!("label of rank {v} not sentinel-terminated"),
            });
        }
        if ranks[s..e].windows(2).any(|w| w[0] >= w[1]) {
            return Err(PllError::Format {
                message: format!("label of rank {v} not strictly sorted"),
            });
        }
        // Hub ranks index the permutation arrays (`distance_with_hub`);
        // the body is strictly ascending, so checking its maximum
        // suffices.
        if e - s >= 2 && ranks[e - 2] as usize >= n {
            return Err(PllError::Format {
                message: format!("label of rank {v} holds an out-of-range hub rank"),
            });
        }
    }
    if let Some(parents) = &parents {
        for &x in parents {
            if x != RANK_SENTINEL && x as usize >= n {
                return Err(PllError::Format {
                    message: format!("parent rank {x} out of range"),
                });
            }
        }
    }
    // `inverse_permutation` panics on malformed permutations; validate.
    let mut seen = vec![false; n];
    for &v in &order {
        if v as usize >= n || seen[v as usize] {
            return Err(PllError::Format {
                message: "order array is not a permutation".into(),
            });
        }
        seen[v as usize] = true;
    }
    let inv = inverse_permutation(&order);

    let labels = LabelSet::from_raw(offsets, ranks, dists, parents);
    let bp = BitParallelLabels::from_raw(n, bp_roots, bp_entries);
    Ok(PllIndex::from_parts(
        order,
        inv,
        labels,
        bp,
        ConstructionStats::default(),
    ))
}

const WEIGHTED_MAGIC: &[u8; 8] = b"PLLWIDX1";
const DIRECTED_MAGIC: &[u8; 8] = b"PLLDIDX1";

fn write_framed<W: Write>(mut writer: W, magic: &[u8; 8], payload: &[u8]) -> Result<()> {
    writer.write_all(magic)?;
    writer.write_all(&(payload.len() as u64).to_le_bytes())?;
    writer.write_all(&fnv1a(payload).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

fn read_framed<R: Read>(mut reader: R, magic: &[u8; 8]) -> Result<Vec<u8>> {
    let mut m = [0u8; 8];
    reader.read_exact(&mut m)?;
    if &m != magic {
        return Err(PllError::Format {
            message: "bad magic bytes".into(),
        });
    }
    let mut hdr = [0u8; 16];
    reader.read_exact(&mut hdr)?;
    let len = u64::from_le_bytes(hdr[..8].try_into().unwrap());
    let checksum = u64::from_le_bytes(hdr[8..].try_into().unwrap());
    let mut payload = Vec::new();
    reader.take(len).read_to_end(&mut payload)?;
    if payload.len() as u64 != len {
        return Err(PllError::Format {
            message: "payload truncated".into(),
        });
    }
    if fnv1a(&payload) != checksum {
        return Err(PllError::Format {
            message: "checksum mismatch".into(),
        });
    }
    Ok(payload)
}

fn validate_order(order: &[u32], n: usize) -> Result<()> {
    let mut seen = vec![false; n];
    for &v in order {
        if v as usize >= n || seen[v as usize] {
            return Err(PllError::Format {
                message: "order array is not a permutation".into(),
            });
        }
        seen[v as usize] = true;
    }
    Ok(())
}

fn validate_sentinel_labels(offsets: &[u32], ranks: &[u32]) -> Result<()> {
    if offsets.first() != Some(&0) || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(PllError::Format {
            message: "non-monotone label offsets".into(),
        });
    }
    let n = offsets.len() - 1;
    for v in 0..n {
        let s = offsets[v] as usize;
        let e = offsets[v + 1] as usize;
        if s == e || ranks[e - 1] != RANK_SENTINEL {
            return Err(PllError::Format {
                message: format!("label of rank {v} not sentinel-terminated"),
            });
        }
        if ranks[s..e].windows(2).any(|w| w[0] >= w[1]) {
            return Err(PllError::Format {
                message: format!("label of rank {v} not strictly sorted"),
            });
        }
        // Hub ranks live in [0, n); the strictly ascending body makes
        // its last entry the maximum.
        if e - s >= 2 && ranks[e - 2] as usize >= n {
            return Err(PllError::Format {
                message: format!("label of rank {v} holds an out-of-range hub rank"),
            });
        }
    }
    Ok(())
}

/// Writes a weighted index (`PLLWIDX1` frame; 32-bit label distances).
pub fn save_weighted_index<W: Write>(
    index: &crate::weighted::WeightedPllIndex,
    writer: W,
) -> Result<()> {
    let (order, _inv, offsets, ranks, dists) = index.as_raw();
    let mut payload = Vec::new();
    payload.extend_from_slice(&(order.len() as u64).to_le_bytes());
    for &v in order {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    for &o in offsets {
        payload.extend_from_slice(&o.to_le_bytes());
    }
    for &r in ranks {
        payload.extend_from_slice(&r.to_le_bytes());
    }
    for &d in dists {
        payload.extend_from_slice(&d.to_le_bytes());
    }
    write_framed(writer, WEIGHTED_MAGIC, &payload)
}

/// Reads a weighted index written by [`save_weighted_index`].
pub fn load_weighted_index<R: Read>(reader: R) -> Result<crate::weighted::WeightedPllIndex> {
    let payload = read_framed(reader, WEIGHTED_MAGIC)?;
    let mut c = Cursor {
        buf: &payload,
        pos: 0,
    };
    let n = c.u64()? as usize;
    if n.saturating_mul(12) > payload.len() {
        return Err(PllError::Format {
            message: "vertex count exceeds payload size".into(),
        });
    }
    let order = c.u32_vec(n)?;
    let offsets = c.u32_vec(n + 1)?;
    let total = *offsets.last().unwrap_or(&0) as usize;
    let ranks = c.u32_vec(total)?;
    let dists = c.u32_vec(total)?;
    if c.pos != payload.len() {
        return Err(PllError::Format {
            message: "trailing payload bytes".into(),
        });
    }
    validate_order(&order, n)?;
    validate_sentinel_labels(&offsets, &ranks)?;
    let inv = inverse_permutation(&order);
    Ok(crate::weighted::WeightedPllIndex::from_raw(
        order, inv, offsets, ranks, dists,
    ))
}

/// Writes a directed index (`PLLDIDX1` frame; IN then OUT labels).
pub fn save_directed_index<W: Write>(
    index: &crate::directed::DirectedPllIndex,
    writer: W,
) -> Result<()> {
    let (order, _inv, labels_in, labels_out) = index.as_raw();
    let mut payload = Vec::new();
    payload.extend_from_slice(&(order.len() as u64).to_le_bytes());
    for &v in order {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    for labels in [labels_in, labels_out] {
        let (offsets, ranks, dists, _parents) = labels.as_raw();
        for &o in offsets {
            payload.extend_from_slice(&o.to_le_bytes());
        }
        payload.extend_from_slice(&(ranks.len() as u64).to_le_bytes());
        for &r in ranks {
            payload.extend_from_slice(&r.to_le_bytes());
        }
        payload.extend_from_slice(dists);
    }
    write_framed(writer, DIRECTED_MAGIC, &payload)
}

/// Reads a directed index written by [`save_directed_index`].
pub fn load_directed_index<R: Read>(reader: R) -> Result<crate::directed::DirectedPllIndex> {
    let payload = read_framed(reader, DIRECTED_MAGIC)?;
    let mut c = Cursor {
        buf: &payload,
        pos: 0,
    };
    let n = c.u64()? as usize;
    if n.saturating_mul(12) > payload.len() {
        return Err(PllError::Format {
            message: "vertex count exceeds payload size".into(),
        });
    }
    let order = c.u32_vec(n)?;
    validate_order(&order, n)?;
    let mut sides = Vec::with_capacity(2);
    for _ in 0..2 {
        let offsets = c.u32_vec(n + 1)?;
        let total = c.u64()? as usize;
        if total != *offsets.last().unwrap_or(&0) as usize {
            return Err(PllError::Format {
                message: "label length disagrees with offsets".into(),
            });
        }
        let ranks = c.u32_vec(total)?;
        let dists = c.take(total)?.to_vec();
        validate_sentinel_labels(&offsets, &ranks)?;
        sides.push(LabelSet::from_raw(offsets, ranks, dists, None));
    }
    if c.pos != payload.len() {
        return Err(PllError::Format {
            message: "trailing payload bytes".into(),
        });
    }
    let labels_out = sides.pop().expect("two sides pushed");
    let labels_in = sides.pop().expect("two sides pushed");
    let inv = inverse_permutation(&order);
    Ok(crate::directed::DirectedPllIndex::from_raw(
        order, inv, labels_in, labels_out,
    ))
}

const WEIGHTED_DIRECTED_MAGIC: &[u8; 8] = b"PLLWDID1";

/// Writes a weighted directed index (`PLLWDID1` frame; IN then OUT label
/// sides, 32-bit label distances).
pub fn save_weighted_directed_index<W: Write>(
    index: &crate::weighted_directed::WeightedDirectedPllIndex,
    writer: W,
) -> Result<()> {
    let (order, _inv, side_in, side_out) = index.as_raw();
    let mut payload = Vec::new();
    payload.extend_from_slice(&(order.len() as u64).to_le_bytes());
    for &v in order {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    for (offsets, ranks, dists) in [side_in, side_out] {
        for &o in offsets {
            payload.extend_from_slice(&o.to_le_bytes());
        }
        payload.extend_from_slice(&(ranks.len() as u64).to_le_bytes());
        for &r in ranks {
            payload.extend_from_slice(&r.to_le_bytes());
        }
        for &d in dists {
            payload.extend_from_slice(&d.to_le_bytes());
        }
    }
    write_framed(writer, WEIGHTED_DIRECTED_MAGIC, &payload)
}

/// Reads a weighted directed index written by
/// [`save_weighted_directed_index`].
pub fn load_weighted_directed_index<R: Read>(
    reader: R,
) -> Result<crate::weighted_directed::WeightedDirectedPllIndex> {
    let payload = read_framed(reader, WEIGHTED_DIRECTED_MAGIC)?;
    let mut c = Cursor {
        buf: &payload,
        pos: 0,
    };
    let n = c.u64()? as usize;
    if n.saturating_mul(12) > payload.len() {
        return Err(PllError::Format {
            message: "vertex count exceeds payload size".into(),
        });
    }
    let order = c.u32_vec(n)?;
    validate_order(&order, n)?;
    let mut sides = Vec::with_capacity(2);
    for _ in 0..2 {
        let offsets = c.u32_vec(n + 1)?;
        let total = c.u64()? as usize;
        if total != *offsets.last().unwrap_or(&0) as usize {
            return Err(PllError::Format {
                message: "label length disagrees with offsets".into(),
            });
        }
        let ranks = c.u32_vec(total)?;
        let dists = c.u32_vec(total)?;
        validate_sentinel_labels(&offsets, &ranks)?;
        sides.push((offsets, ranks, dists));
    }
    if c.pos != payload.len() {
        return Err(PllError::Format {
            message: "trailing payload bytes".into(),
        });
    }
    let (out_offsets, out_ranks, out_dists) = sides.pop().expect("two sides pushed");
    let (in_offsets, in_ranks, in_dists) = sides.pop().expect("two sides pushed");
    let inv = inverse_permutation(&order);
    Ok(
        crate::weighted_directed::WeightedDirectedPllIndex::from_raw(
            order,
            inv,
            in_offsets,
            in_ranks,
            in_dists,
            out_offsets,
            out_ranks,
            out_dists,
        ),
    )
}

/// The four index families the versioned on-disk format distinguishes,
/// detected from the 8-byte magic prefix (see [`detect_format`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexFormat {
    /// `PLLIDX01` — undirected unweighted ([`load_index`]).
    Undirected,
    /// `PLLDIDX1` — directed unweighted ([`load_directed_index`]).
    Directed,
    /// `PLLWIDX1` — weighted undirected ([`load_weighted_index`]).
    Weighted,
    /// `PLLWDID1` — weighted directed
    /// ([`load_weighted_directed_index`]).
    WeightedDirected,
}

impl IndexFormat {
    /// The CLI-facing name (`pll build --format <name>`).
    pub fn name(self) -> &'static str {
        match self {
            IndexFormat::Undirected => "undirected",
            IndexFormat::Directed => "directed",
            IndexFormat::Weighted => "weighted",
            IndexFormat::WeightedDirected => "weighted-directed",
        }
    }
}

/// Format generation of a serialised index file, from its magic prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FormatVersion {
    /// The stream formats of this module (parsed into owned indices).
    V1,
    /// The section-aligned zero-copy format of [`crate::v2`].
    V2,
}

/// Identifies which index family a serialised file holds from its 8-byte
/// magic prefix (v1 or v2 generation), or [`PllError::Format`] for an
/// unknown prefix.
pub fn detect_format(magic: &[u8; 8]) -> Result<IndexFormat> {
    detect_format_versioned(magic).map(|(format, _)| format)
}

/// Like [`detect_format`], also reporting the format generation.
pub fn detect_format_versioned(magic: &[u8; 8]) -> Result<(IndexFormat, FormatVersion)> {
    use crate::v2;
    match magic {
        m if m == MAGIC => Ok((IndexFormat::Undirected, FormatVersion::V1)),
        m if m == DIRECTED_MAGIC => Ok((IndexFormat::Directed, FormatVersion::V1)),
        m if m == WEIGHTED_MAGIC => Ok((IndexFormat::Weighted, FormatVersion::V1)),
        m if m == WEIGHTED_DIRECTED_MAGIC => Ok((IndexFormat::WeightedDirected, FormatVersion::V1)),
        m if m == v2::V2_UNDIRECTED_MAGIC => Ok((IndexFormat::Undirected, FormatVersion::V2)),
        m if m == v2::V2_DIRECTED_MAGIC => Ok((IndexFormat::Directed, FormatVersion::V2)),
        m if m == v2::V2_WEIGHTED_MAGIC => Ok((IndexFormat::Weighted, FormatVersion::V2)),
        m if m == v2::V2_WEIGHTED_DIRECTED_MAGIC => {
            Ok((IndexFormat::WeightedDirected, FormatVersion::V2))
        }
        _ => Err(PllError::Format {
            message: "bad magic bytes".into(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::IndexBuilder;
    use pll_graph::gen;

    fn roundtrip(index: &PllIndex) -> PllIndex {
        let mut buf = Vec::new();
        save_index(index, &mut buf).unwrap();
        load_index(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_all_distances() {
        let g = gen::barabasi_albert(150, 3, 5).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(4).build(&g).unwrap();
        let loaded = roundtrip(&idx);
        assert_eq!(loaded.num_vertices(), idx.num_vertices());
        for s in (0..150u32).step_by(7) {
            for t in (0..150u32).step_by(11) {
                assert_eq!(loaded.distance(s, t), idx.distance(s, t));
            }
        }
    }

    #[test]
    fn roundtrip_with_parents() {
        let g = gen::grid(5, 5).unwrap();
        let idx = IndexBuilder::new()
            .bit_parallel_roots(0)
            .store_parents(true)
            .build(&g)
            .unwrap();
        let loaded = roundtrip(&idx);
        assert!(loaded.has_parents());
        let p = crate::paths::shortest_path(&loaded, 0, 24)
            .unwrap()
            .unwrap();
        assert_eq!(p.len() as u32, loaded.distance(0, 24).unwrap() + 1);
    }

    #[test]
    fn roundtrip_empty_index() {
        let idx = IndexBuilder::new()
            .build(&pll_graph::CsrGraph::empty(0))
            .unwrap();
        let loaded = roundtrip(&idx);
        assert_eq!(loaded.num_vertices(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load_index(&b"NOTANIDX________"[..]).unwrap_err();
        assert!(matches!(err, PllError::Format { .. }));
    }

    #[test]
    fn rejects_corruption() {
        let g = gen::path(6).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(1).build(&g).unwrap();
        let mut buf = Vec::new();
        save_index(&idx, &mut buf).unwrap();

        // Flip a payload byte: checksum must catch it.
        let mut corrupt = buf.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(matches!(
            load_index(corrupt.as_slice()).unwrap_err(),
            PllError::Format { .. }
        ));

        // Truncate: must not panic.
        let truncated = &buf[..buf.len() - 3];
        assert!(load_index(truncated).is_err());
    }

    #[test]
    fn weighted_roundtrip() {
        use crate::weighted::WeightedIndexBuilder;
        use pll_graph::wgraph::WeightedGraph;
        let base = gen::erdos_renyi_gnm(80, 200, 3).unwrap();
        let mut rng = pll_graph::Xoshiro256pp::seed_from_u64(5);
        let edges: Vec<(u32, u32, u32)> = base
            .edges()
            .map(|(u, v)| (u, v, rng.next_below(9) as u32 + 1))
            .collect();
        let g = WeightedGraph::from_edges(80, &edges).unwrap();
        let idx = WeightedIndexBuilder::new().build(&g).unwrap();
        let mut buf = Vec::new();
        save_weighted_index(&idx, &mut buf).unwrap();
        let loaded = load_weighted_index(buf.as_slice()).unwrap();
        for s in 0..80u32 {
            for t in (0..80u32).step_by(7) {
                assert_eq!(loaded.distance(s, t), idx.distance(s, t));
            }
        }
        // Corruption detection.
        let last = buf.len() - 1;
        buf[last] ^= 0x55;
        assert!(load_weighted_index(buf.as_slice()).is_err());
        assert!(load_weighted_index(&b"garbage"[..]).is_err());
    }

    #[test]
    fn directed_roundtrip() {
        use crate::directed::DirectedIndexBuilder;
        let arcs: Vec<(u32, u32)> = (0..60u32)
            .flat_map(|v| [(v, (v + 1) % 60), (v, (v * 7 + 3) % 60)])
            .filter(|&(a, b)| a != b)
            .collect();
        let mut arcs = arcs;
        arcs.sort_unstable();
        arcs.dedup();
        let g = pll_graph::CsrDigraph::from_edges(60, &arcs).unwrap();
        let idx = DirectedIndexBuilder::new().build(&g).unwrap();
        let mut buf = Vec::new();
        save_directed_index(&idx, &mut buf).unwrap();
        let loaded = load_directed_index(buf.as_slice()).unwrap();
        for s in 0..60u32 {
            for t in (0..60u32).step_by(5) {
                assert_eq!(loaded.distance(s, t), idx.distance(s, t), "({s}->{t})");
            }
        }
        // Wrong-family magic is rejected.
        let mut plain = Vec::new();
        let undirected = IndexBuilder::new()
            .bit_parallel_roots(0)
            .build(&gen::path(4).unwrap())
            .unwrap();
        save_index(&undirected, &mut plain).unwrap();
        assert!(load_directed_index(plain.as_slice()).is_err());
        // Truncation is rejected.
        buf.truncate(buf.len() - 3);
        assert!(load_directed_index(buf.as_slice()).is_err());
    }

    #[test]
    fn weighted_directed_roundtrip() {
        use crate::weighted_directed::WeightedDirectedIndexBuilder;
        use pll_graph::wdigraph::WeightedDigraph;
        let mut rng = pll_graph::Xoshiro256pp::seed_from_u64(11);
        let mut arcs = std::collections::HashMap::new();
        while arcs.len() < 200 {
            let u = rng.next_below(50) as u32;
            let v = rng.next_below(50) as u32;
            if u != v {
                arcs.entry((u, v))
                    .or_insert_with(|| rng.next_below(9) as u32 + 1);
            }
        }
        let mut list: Vec<(u32, u32, u32)> =
            arcs.into_iter().map(|((u, v), w)| (u, v, w)).collect();
        list.sort_unstable();
        let g = WeightedDigraph::from_edges(50, &list).unwrap();
        let idx = WeightedDirectedIndexBuilder::new().build(&g).unwrap();
        let mut buf = Vec::new();
        save_weighted_directed_index(&idx, &mut buf).unwrap();
        let loaded = load_weighted_directed_index(buf.as_slice()).unwrap();
        for s in 0..50u32 {
            for t in (0..50u32).step_by(3) {
                assert_eq!(loaded.distance(s, t), idx.distance(s, t), "({s}->{t})");
            }
        }
        // Corruption and wrong-family magic are rejected.
        let mut corrupt = buf.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x55;
        assert!(load_weighted_directed_index(corrupt.as_slice()).is_err());
        assert!(load_weighted_directed_index(&b"garbage"[..]).is_err());
        let mut weighted = Vec::new();
        let base = gen::path(4).unwrap();
        let wg = pll_graph::wgraph::WeightedGraph::from_unweighted(&base);
        let widx = crate::weighted::WeightedIndexBuilder::new()
            .build(&wg)
            .unwrap();
        save_weighted_index(&widx, &mut weighted).unwrap();
        assert!(load_weighted_directed_index(weighted.as_slice()).is_err());
        // Truncation is rejected.
        buf.truncate(buf.len() - 3);
        assert!(load_weighted_directed_index(buf.as_slice()).is_err());
    }

    #[test]
    fn detect_format_recognises_all_magics() {
        assert_eq!(detect_format(b"PLLIDX01").unwrap(), IndexFormat::Undirected);
        assert_eq!(detect_format(b"PLLDIDX1").unwrap(), IndexFormat::Directed);
        assert_eq!(detect_format(b"PLLWIDX1").unwrap(), IndexFormat::Weighted);
        assert_eq!(
            detect_format(b"PLLWDID1").unwrap(),
            IndexFormat::WeightedDirected
        );
        assert!(detect_format(b"NOTMAGIC").is_err());
        assert_eq!(IndexFormat::WeightedDirected.name(), "weighted-directed");
    }

    #[test]
    fn memory_size_within_expected_bounds() {
        let g = gen::barabasi_albert(100, 2, 1).unwrap();
        let idx = IndexBuilder::new().bit_parallel_roots(2).build(&g).unwrap();
        let mut buf = Vec::new();
        save_index(&idx, &mut buf).unwrap();
        // Serialised form tracks in-memory size within a small factor.
        assert!(buf.len() < 4 * idx.memory_bytes() + 1024);
    }
}
