//! Graph substrate for the pruned landmark labeling reproduction.
//!
//! This crate provides everything the indexing layer ([`pll-core`]) and the
//! experiment harness need from a graph library:
//!
//! * compact CSR representations for undirected ([`CsrGraph`]), directed
//!   ([`CsrDigraph`]) and weighted ([`WeightedGraph`]) graphs;
//! * a [`GraphBuilder`] that normalises raw edge lists (deduplication,
//!   self-loop removal, validation);
//! * text and binary edge-list I/O compatible with the SNAP datasets the
//!   paper evaluates on ([`edgelist`]);
//! * reusable-buffer traversal engines (BFS, bidirectional BFS, Dijkstra,
//!   connected components) in [`traversal`];
//! * the synthetic network generators used as stand-ins for the paper's
//!   eleven real-world datasets ([`gen`]);
//! * degree/distance statistics used by Figure 2 ([`stats`]);
//! * vertex relabelling used by the rank-ordering optimisation of §4.5
//!   ([`reorder`]).
//!
//! [`pll-core`]: https://example.invalid/pll-core
//!
//! # Example
//!
//! ```
//! use pll_graph::{CsrGraph, traversal::bfs};
//!
//! // A 4-cycle: 0 - 1 - 2 - 3 - 0.
//! let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 4);
//! let d = bfs::distances(&g, 0);
//! assert_eq!(d[2], 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod digraph;
pub mod edgelist;
pub mod error;
pub mod gen;
pub mod reorder;
pub mod stats;
pub mod traversal;
pub mod wdigraph;
pub mod wgraph;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use digraph::CsrDigraph;
pub use error::GraphError;
pub use gen::rng::Xoshiro256pp;
pub use wdigraph::WeightedDigraph;
pub use wgraph::WeightedGraph;

/// Vertex identifier. The paper uses 32-bit vertex ids (§7: "32-bit integers
/// to represent vertices"); all graphs in this workspace do the same.
pub type Vertex = u32;

/// Marker for "no vertex" / unreachable in `u32`-valued arrays.
pub const INVALID_VERTEX: Vertex = u32::MAX;

/// Unreachable distance marker for `u32`-valued distance arrays.
pub const INF_U32: u32 = u32::MAX;

/// Unreachable distance marker for `u64`-valued (weighted) distance arrays.
pub const INF_U64: u64 = u64::MAX;
