//! Error type shared by the graph substrate.

use std::fmt;

/// Errors produced while constructing, parsing or transforming graphs.
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was `>= num_vertices`.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: u64,
        /// Number of vertices in the graph being built.
        num_vertices: u64,
    },
    /// The number of vertices or edges exceeds the 32-bit representation
    /// used by the CSR layout.
    TooLarge {
        /// Human-readable description of the exceeded quantity.
        what: &'static str,
    },
    /// A text edge list failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Underlying I/O failure while reading or writing a graph.
    Io(std::io::Error),
    /// A binary graph file had an invalid header or was truncated.
    Format {
        /// Description of the problem.
        message: String,
    },
    /// An operation received a parameter outside its documented domain
    /// (e.g. a generator asked for more edges than the vertex count allows).
    InvalidParameter {
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::TooLarge { what } => {
                write!(f, "{what} exceeds the 32-bit CSR representation")
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::Format { message } => write!(f, "graph format error: {message}"),
            GraphError::InvalidParameter { message } => {
                write!(f, "invalid parameter: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_vertex_out_of_range() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert_eq!(
            e.to_string(),
            "vertex 9 out of range for graph with 4 vertices"
        );
    }

    #[test]
    fn display_parse() {
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_roundtrip() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
