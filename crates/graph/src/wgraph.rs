//! Weighted undirected CSR graph for the pruned-Dijkstra variant (§6).

use crate::error::{GraphError, Result};
use crate::Vertex;

/// Edge weight type. Weights must be strictly positive so Dijkstra's
/// algorithm (and the pruned variant) applies.
pub type Weight = u32;

/// An immutable, undirected, positively-weighted graph in CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    offsets: Vec<u32>,
    targets: Vec<Vertex>,
    weights: Vec<Weight>,
}

impl WeightedGraph {
    /// Builds a weighted graph from `(u, v, w)` triples.
    ///
    /// # Errors
    ///
    /// Rejects zero weights, self-loops, duplicate edges and out-of-range
    /// endpoints.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex, Weight)]) -> Result<Self> {
        if n > u32::MAX as usize - 1 {
            return Err(GraphError::TooLarge {
                what: "vertex count",
            });
        }
        let half_edges = edges
            .len()
            .checked_mul(2)
            .ok_or(GraphError::TooLarge { what: "edge count" })?;
        if half_edges > u32::MAX as usize {
            return Err(GraphError::TooLarge { what: "edge count" });
        }

        let mut degree = vec![0u32; n];
        for &(u, v, w) in edges {
            if u as usize >= n || v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u.max(v) as u64,
                    num_vertices: n as u64,
                });
            }
            if u == v {
                return Err(GraphError::InvalidParameter {
                    message: format!("self-loop at vertex {u}"),
                });
            }
            if w == 0 {
                return Err(GraphError::InvalidParameter {
                    message: format!("zero weight on edge ({u}, {v})"),
                });
            }
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }

        let mut pairs: Vec<Vec<(Vertex, Weight)>> = vec![Vec::new(); n];
        for &(u, v, w) in edges {
            pairs[u as usize].push((v, w));
            pairs[v as usize].push((u, w));
        }
        let mut targets = Vec::with_capacity(half_edges);
        let mut weights = Vec::with_capacity(half_edges);
        for (v, mut list) in pairs.into_iter().enumerate() {
            list.sort_unstable();
            if list.windows(2).any(|w| w[0].0 == w[1].0) {
                return Err(GraphError::InvalidParameter {
                    message: format!("duplicate edge incident to vertex {v}"),
                });
            }
            for (t, w) in list {
                targets.push(t);
                weights.push(w);
            }
        }

        Ok(WeightedGraph {
            offsets,
            targets,
            weights,
        })
    }

    /// Lifts an unweighted graph to a weighted one with unit weights.
    pub fn from_unweighted(g: &crate::CsrGraph) -> Self {
        let (offsets, targets) = g.as_parts();
        WeightedGraph {
            offsets: offsets.to_vec(),
            targets: targets.to_vec(),
            weights: vec![1; targets.len()],
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbours of `v` with weights, sorted by neighbour id.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> impl Iterator<Item = (Vertex, Weight)> + '_ {
        let s = self.offsets[v as usize] as usize;
        let e = self.offsets[v as usize + 1] as usize;
        self.targets[s..e]
            .iter()
            .copied()
            .zip(self.weights[s..e].iter().copied())
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: Vertex, v: Vertex) -> Option<Weight> {
        let s = self.offsets[u as usize] as usize;
        let e = self.offsets[u as usize + 1] as usize;
        self.targets[s..e]
            .binary_search(&v)
            .ok()
            .map(|i| self.weights[s + i])
    }

    /// Iterates each undirected edge once as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex, Weight)> + '_ {
        (0..self.num_vertices() as Vertex).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&(v, _)| u < v)
                .map(move |(v, w)| (u, v, w))
        })
    }

    /// Iterates all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> {
        0..self.num_vertices() as Vertex
    }

    /// Heap bytes used by the CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.targets.len() * 4 + self.weights.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    fn weighted_triangle() -> WeightedGraph {
        WeightedGraph::from_edges(3, &[(0, 1, 5), (1, 2, 7), (2, 0, 100)]).unwrap()
    }

    #[test]
    fn shape_and_weights() {
        let g = weighted_triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(1, 0), Some(5));
        assert_eq!(g.edge_weight(0, 2), Some(100));
        assert_eq!(g.edge_weight(1, 1), None);
    }

    #[test]
    fn neighbors_sorted_with_weights() {
        let g = weighted_triangle();
        let n: Vec<_> = g.neighbors(2).collect();
        assert_eq!(n, vec![(0, 100), (1, 7)]);
    }

    #[test]
    fn rejects_zero_weight() {
        assert!(WeightedGraph::from_edges(2, &[(0, 1, 0)]).is_err());
    }

    #[test]
    fn rejects_duplicate_and_loop() {
        assert!(WeightedGraph::from_edges(2, &[(0, 1, 1), (1, 0, 2)]).is_err());
        assert!(WeightedGraph::from_edges(2, &[(1, 1, 1)]).is_err());
    }

    #[test]
    fn from_unweighted_unit_weights() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let w = WeightedGraph::from_unweighted(&g);
        assert_eq!(w.num_edges(), 2);
        assert_eq!(w.edge_weight(0, 1), Some(1));
        assert_eq!(w.edge_weight(1, 2), Some(1));
    }

    #[test]
    fn edges_iterator_once_per_edge() {
        let g = weighted_triangle();
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1, 5), (0, 2, 100), (1, 2, 7)]);
    }
}
