//! Connected components and largest-component extraction.
//!
//! Distance labelings answer ∞ for cross-component pairs, but the paper's
//! experiments (and sensible benchmarks) run on the largest connected
//! component of each dataset; [`largest_component`] provides that.

use crate::{CsrGraph, Vertex, INVALID_VERTEX};

/// Component labelling: `labels[v]` is the 0-based component id of `v`,
/// numbered in order of first discovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// Component id per vertex.
    pub labels: Vec<u32>,
    /// Number of vertices per component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of connected components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Id of a largest component (ties broken by lowest id).
    pub fn largest(&self) -> Option<u32> {
        self.sizes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
    }
}

/// Computes connected components via repeated BFS.
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_vertices();
    let mut labels = vec![INVALID_VERTEX; n];
    let mut sizes = Vec::new();
    let mut queue = Vec::new();
    for start in 0..n as Vertex {
        if labels[start as usize] != INVALID_VERTEX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        labels[start as usize] = id;
        queue.clear();
        queue.push(start);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            size += 1;
            for &w in g.neighbors(u) {
                if labels[w as usize] == INVALID_VERTEX {
                    labels[w as usize] = id;
                    queue.push(w);
                }
            }
        }
        sizes.push(size);
    }
    Components { labels, sizes }
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &CsrGraph) -> bool {
    connected_components(g).count() <= 1
}

/// Extracts the largest connected component as a standalone graph.
///
/// Returns `(subgraph, old_of_new)` where `old_of_new[new_id] = old_id`.
/// Vertices keep their relative order. An empty graph maps to itself.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<Vertex>) {
    let comps = connected_components(g);
    let Some(keep) = comps.largest() else {
        return (CsrGraph::empty(0), Vec::new());
    };
    let mut old_of_new = Vec::with_capacity(comps.sizes[keep as usize]);
    let mut new_of_old = vec![INVALID_VERTEX; g.num_vertices()];
    for v in 0..g.num_vertices() as Vertex {
        if comps.labels[v as usize] == keep {
            new_of_old[v as usize] = old_of_new.len() as Vertex;
            old_of_new.push(v);
        }
    }
    let mut edges = Vec::new();
    for (u, v) in g.edges() {
        if comps.labels[u as usize] == keep {
            edges.push((new_of_old[u as usize], new_of_old[v as usize]));
        }
    }
    let sub = CsrGraph::from_edges(old_of_new.len(), &edges)
        .expect("component subgraph inherits validity from parent");
    (sub, old_of_new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_components() -> CsrGraph {
        // Component A: 0-1-2 path. Component B: 3-4 edge. Isolated: 5.
        CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap()
    }

    #[test]
    fn counts_components_and_sizes() {
        let c = connected_components(&two_components());
        assert_eq!(c.count(), 3);
        assert_eq!(c.sizes, vec![3, 2, 1]);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[0], c.labels[3]);
        assert_eq!(c.largest(), Some(0));
    }

    #[test]
    fn is_connected_checks() {
        assert!(is_connected(
            &CsrGraph::from_edges(3, &[(0, 1), (1, 2)]).unwrap()
        ));
        assert!(!is_connected(&two_components()));
        assert!(is_connected(&CsrGraph::empty(0)));
        assert!(is_connected(&CsrGraph::empty(1)));
        assert!(!is_connected(&CsrGraph::empty(2)));
    }

    #[test]
    fn largest_component_extraction() {
        let (sub, map) = largest_component(&two_components());
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map, vec![0, 1, 2]);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let (sub, map) = largest_component(&CsrGraph::empty(0));
        assert_eq!(sub.num_vertices(), 0);
        assert!(map.is_empty());
    }

    #[test]
    fn tie_break_prefers_first_component() {
        // Two components of equal size; discovery order decides.
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.largest(), Some(0));
        let (sub, map) = largest_component(&g);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(map, vec![0, 1]);
    }
}
