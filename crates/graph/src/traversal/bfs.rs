//! Breadth-first search engines.
//!
//! [`BfsEngine`] keeps its distance array and queue between runs and resets
//! only the vertices it actually touched — the same trick §4.5
//! ("Initialization") uses to keep pruned BFSs sub-linear.

use crate::{CsrGraph, Vertex, INF_U32, INVALID_VERTEX};

/// One-shot BFS distances from `src` (`INF_U32` marks unreachable vertices).
pub fn distances(g: &CsrGraph, src: Vertex) -> Vec<u32> {
    let mut engine = BfsEngine::new(g.num_vertices());
    engine.run(g, src);
    engine.dist.clone()
}

/// One-shot BFS returning `(distances, parents)`; the parent of the source
/// (and of unreachable vertices) is [`INVALID_VERTEX`].
pub fn distances_and_parents(g: &CsrGraph, src: Vertex) -> (Vec<u32>, Vec<Vertex>) {
    let n = g.num_vertices();
    let mut dist = vec![INF_U32; n];
    let mut parent = vec![INVALID_VERTEX; n];
    let mut queue = Vec::with_capacity(n);
    dist[src as usize] = 0;
    queue.push(src);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if dist[w as usize] == INF_U32 {
                dist[w as usize] = du + 1;
                parent[w as usize] = u;
                queue.push(w);
            }
        }
    }
    (dist, parent)
}

/// Single-pair BFS distance with early exit once `t` is settled.
pub fn distance(g: &CsrGraph, s: Vertex, t: Vertex) -> Option<u32> {
    let mut engine = BfsEngine::new(g.num_vertices());
    engine.distance(g, s, t)
}

/// Single-pair bidirectional BFS; asymptotically explores far fewer vertices
/// than one-sided BFS on small-world networks (used as the strongest
/// index-free baseline in Table 3's "BFS" column).
pub fn bidirectional_distance(g: &CsrGraph, s: Vertex, t: Vertex) -> Option<u32> {
    let mut engine = BidirBfsEngine::new(g.num_vertices());
    engine.distance(g, s, t)
}

/// Reusable BFS engine: `run` fills a distance array, `distance` answers a
/// single pair with early exit. Buffers are reset lazily (touched vertices
/// only).
#[derive(Clone, Debug)]
pub struct BfsEngine {
    dist: Vec<u32>,
    queue: Vec<Vertex>,
}

impl BfsEngine {
    /// Creates an engine for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BfsEngine {
            dist: vec![INF_U32; n],
            queue: Vec::with_capacity(n),
        }
    }

    fn reset(&mut self) {
        for &v in &self.queue {
            self.dist[v as usize] = INF_U32;
        }
        self.queue.clear();
    }

    /// Runs a full BFS from `src` and returns the distance array
    /// (`INF_U32` = unreachable). Valid until the next call.
    pub fn run(&mut self, g: &CsrGraph, src: Vertex) -> &[u32] {
        assert!(
            (src as usize) < g.num_vertices(),
            "source {src} out of range"
        );
        self.reset();
        self.dist[src as usize] = 0;
        self.queue.push(src);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            for &w in g.neighbors(u) {
                if self.dist[w as usize] == INF_U32 {
                    self.dist[w as usize] = du + 1;
                    self.queue.push(w);
                }
            }
        }
        &self.dist
    }

    /// BFS distance from `s` to `t` with early exit.
    pub fn distance(&mut self, g: &CsrGraph, s: Vertex, t: Vertex) -> Option<u32> {
        assert!((s as usize) < g.num_vertices(), "source {s} out of range");
        assert!((t as usize) < g.num_vertices(), "target {t} out of range");
        if s == t {
            return Some(0);
        }
        self.reset();
        self.dist[s as usize] = 0;
        self.queue.push(s);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            for &w in g.neighbors(u) {
                if self.dist[w as usize] == INF_U32 {
                    if w == t {
                        let d = du + 1;
                        // Record before reset bookkeeping: w is in no queue,
                        // so push it to make `reset` clear it next time.
                        self.dist[w as usize] = d;
                        self.queue.push(w);
                        return Some(d);
                    }
                    self.dist[w as usize] = du + 1;
                    self.queue.push(w);
                }
            }
        }
        None
    }

    /// Eccentricity of `src`: the largest finite BFS distance.
    pub fn eccentricity(&mut self, g: &CsrGraph, src: Vertex) -> u32 {
        self.run(g, src);
        self.queue
            .iter()
            .map(|&v| self.dist[v as usize])
            .max()
            .unwrap_or(0)
    }

    /// Number of vertices reachable from `src` (including `src`).
    pub fn reachable_count(&mut self, g: &CsrGraph, src: Vertex) -> usize {
        self.run(g, src);
        self.queue.len()
    }
}

/// Reusable bidirectional BFS engine for single-pair distance queries.
#[derive(Clone, Debug)]
pub struct BidirBfsEngine {
    dist_f: Vec<u32>,
    dist_b: Vec<u32>,
    touched_f: Vec<Vertex>,
    touched_b: Vec<Vertex>,
}

impl BidirBfsEngine {
    /// Creates an engine for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        BidirBfsEngine {
            dist_f: vec![INF_U32; n],
            dist_b: vec![INF_U32; n],
            touched_f: Vec::new(),
            touched_b: Vec::new(),
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched_f {
            self.dist_f[v as usize] = INF_U32;
        }
        for &v in &self.touched_b {
            self.dist_b[v as usize] = INF_U32;
        }
        self.touched_f.clear();
        self.touched_b.clear();
    }

    /// Distance from `s` to `t`, expanding the smaller frontier first.
    pub fn distance(&mut self, g: &CsrGraph, s: Vertex, t: Vertex) -> Option<u32> {
        assert!((s as usize) < g.num_vertices(), "source {s} out of range");
        assert!((t as usize) < g.num_vertices(), "target {t} out of range");
        if s == t {
            return Some(0);
        }
        self.reset();

        self.dist_f[s as usize] = 0;
        self.dist_b[t as usize] = 0;
        self.touched_f.push(s);
        self.touched_b.push(t);
        let mut frontier_f = vec![s];
        let mut frontier_b = vec![t];
        let mut df = 0u32; // depth reached by forward search
        let mut db = 0u32; // depth reached by backward search
        let mut best = INF_U32;

        while !frontier_f.is_empty() && !frontier_b.is_empty() {
            // Stop once even the cheapest possible meeting beats `best`.
            if df + db + 1 >= best {
                break;
            }
            // Expand the side with the smaller frontier (classic heuristic).
            let forward = frontier_f.len() <= frontier_b.len();
            let (frontier, dist_own, dist_other, touched, depth) = if forward {
                (
                    &mut frontier_f,
                    &mut self.dist_f,
                    &self.dist_b,
                    &mut self.touched_f,
                    &mut df,
                )
            } else {
                (
                    &mut frontier_b,
                    &mut self.dist_b,
                    &self.dist_f,
                    &mut self.touched_b,
                    &mut db,
                )
            };
            let mut next = Vec::new();
            for &u in frontier.iter() {
                let du = dist_own[u as usize];
                for &w in g.neighbors(u) {
                    if dist_own[w as usize] == INF_U32 {
                        dist_own[w as usize] = du + 1;
                        touched.push(w);
                        next.push(w);
                        if dist_other[w as usize] != INF_U32 {
                            best = best.min(du + 1 + dist_other[w as usize]);
                        }
                    }
                }
            }
            *frontier = next;
            *depth += 1;
        }

        (best != INF_U32).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn path5() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn distances_on_path() {
        let g = path5();
        let d = distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn distances_unreachable() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF_U32);
        assert_eq!(d[3], INF_U32);
    }

    #[test]
    fn parents_form_shortest_path_tree() {
        let g = path5();
        let (d, p) = distances_and_parents(&g, 0);
        assert_eq!(p[0], INVALID_VERTEX);
        for v in 1..5u32 {
            assert_eq!(d[v as usize], d[p[v as usize] as usize] + 1);
        }
    }

    #[test]
    fn single_pair_early_exit_matches_full_bfs() {
        let g = path5();
        assert_eq!(distance(&g, 0, 4), Some(4));
        assert_eq!(distance(&g, 4, 0), Some(4));
        assert_eq!(distance(&g, 2, 2), Some(0));
    }

    #[test]
    fn single_pair_unreachable() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(distance(&g, 0, 3), None);
    }

    #[test]
    fn engine_reuse_does_not_leak_state() {
        let g = path5();
        let mut e = BfsEngine::new(5);
        assert_eq!(e.distance(&g, 0, 4), Some(4));
        assert_eq!(e.distance(&g, 1, 3), Some(2));
        let d = e.run(&g, 4).to_vec();
        assert_eq!(d, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn eccentricity_and_reach() {
        let g = path5();
        let mut e = BfsEngine::new(5);
        assert_eq!(e.eccentricity(&g, 2), 2);
        assert_eq!(e.eccentricity(&g, 0), 4);
        assert_eq!(e.reachable_count(&g, 0), 5);
    }

    #[test]
    fn bidirectional_matches_bfs_on_random_graphs() {
        let g = gen::erdos_renyi_gnm(200, 500, 42).unwrap();
        let mut uni = BfsEngine::new(200);
        let mut bi = BidirBfsEngine::new(200);
        for (s, t) in [(0, 1), (5, 199), (17, 3), (100, 100), (42, 7)] {
            assert_eq!(uni.distance(&g, s, t), bi.distance(&g, s, t), "{s}->{t}");
        }
    }

    #[test]
    fn bidirectional_unreachable_and_trivial() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut bi = BidirBfsEngine::new(4);
        assert_eq!(bi.distance(&g, 0, 2), None);
        assert_eq!(bi.distance(&g, 3, 3), Some(0));
        assert_eq!(bi.distance(&g, 0, 1), Some(1));
    }
}
