//! Dijkstra's algorithm for the weighted variant (§6) and its baselines.

use crate::wgraph::WeightedGraph;
use crate::{Vertex, INF_U64, INVALID_VERTEX};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One-shot Dijkstra distances from `src` (`INF_U64` marks unreachable).
pub fn distances(g: &WeightedGraph, src: Vertex) -> Vec<u64> {
    let mut engine = DijkstraEngine::new(g.num_vertices());
    engine.run(g, src).to_vec()
}

/// Single-pair Dijkstra distance with early exit once `t` is settled.
pub fn distance(g: &WeightedGraph, s: Vertex, t: Vertex) -> Option<u64> {
    let mut engine = DijkstraEngine::new(g.num_vertices());
    engine.distance(g, s, t)
}

/// One-shot Dijkstra returning `(distances, parents)`.
pub fn distances_and_parents(g: &WeightedGraph, src: Vertex) -> (Vec<u64>, Vec<Vertex>) {
    let n = g.num_vertices();
    let mut dist = vec![INF_U64; n];
    let mut parent = vec![INVALID_VERTEX; n];
    let mut heap = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for (w, wt) in g.neighbors(u) {
            let nd = d + wt as u64;
            if nd < dist[w as usize] {
                dist[w as usize] = nd;
                parent[w as usize] = u;
                heap.push(Reverse((nd, w)));
            }
        }
    }
    (dist, parent)
}

/// Reusable Dijkstra engine with lazily-reset buffers.
#[derive(Clone, Debug)]
pub struct DijkstraEngine {
    dist: Vec<u64>,
    touched: Vec<Vertex>,
    heap: BinaryHeap<Reverse<(u64, Vertex)>>,
}

impl DijkstraEngine {
    /// Creates an engine for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        DijkstraEngine {
            dist: vec![INF_U64; n],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF_U64;
        }
        self.touched.clear();
        self.heap.clear();
    }

    /// Runs a full Dijkstra from `src`; the returned slice is valid until the
    /// next call.
    pub fn run(&mut self, g: &WeightedGraph, src: Vertex) -> &[u64] {
        assert!(
            (src as usize) < g.num_vertices(),
            "source {src} out of range"
        );
        self.reset();
        self.dist[src as usize] = 0;
        self.touched.push(src);
        self.heap.push(Reverse((0, src)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue;
            }
            for (w, wt) in g.neighbors(u) {
                let nd = d + wt as u64;
                if nd < self.dist[w as usize] {
                    if self.dist[w as usize] == INF_U64 {
                        self.touched.push(w);
                    }
                    self.dist[w as usize] = nd;
                    self.heap.push(Reverse((nd, w)));
                }
            }
        }
        &self.dist
    }

    /// Distance from `s` to `t` with early exit when `t` is settled.
    pub fn distance(&mut self, g: &WeightedGraph, s: Vertex, t: Vertex) -> Option<u64> {
        assert!((s as usize) < g.num_vertices(), "source {s} out of range");
        assert!((t as usize) < g.num_vertices(), "target {t} out of range");
        if s == t {
            return Some(0);
        }
        self.reset();
        self.dist[s as usize] = 0;
        self.touched.push(s);
        self.heap.push(Reverse((0, s)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            if d > self.dist[u as usize] {
                continue;
            }
            if u == t {
                return Some(d);
            }
            for (w, wt) in g.neighbors(u) {
                let nd = d + wt as u64;
                if nd < self.dist[w as usize] {
                    if self.dist[w as usize] == INF_U64 {
                        self.touched.push(w);
                    }
                    self.dist[w as usize] = nd;
                    self.heap.push(Reverse((nd, w)));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::bfs;
    use crate::{gen, CsrGraph};

    fn wgraph() -> WeightedGraph {
        // 0 --1-- 1 --1-- 2 and a heavy direct edge 0 --5-- 2.
        WeightedGraph::from_edges(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 5)]).unwrap()
    }

    #[test]
    fn prefers_lighter_two_hop_path() {
        let g = wgraph();
        assert_eq!(distances(&g, 0), vec![0, 1, 2]);
        assert_eq!(distance(&g, 0, 2), Some(2));
    }

    #[test]
    fn unreachable_is_none() {
        let g = WeightedGraph::from_edges(4, &[(0, 1, 3), (2, 3, 4)]).unwrap();
        assert_eq!(distance(&g, 0, 3), None);
        assert_eq!(distances(&g, 0)[2], INF_U64);
    }

    #[test]
    fn parents_reconstruct_weighted_path() {
        let g = wgraph();
        let (d, p) = distances_and_parents(&g, 0);
        assert_eq!(d[2], 2);
        assert_eq!(p[2], 1);
        assert_eq!(p[1], 0);
        assert_eq!(p[0], INVALID_VERTEX);
    }

    #[test]
    fn unit_weights_match_bfs() {
        let g = gen::erdos_renyi_gnm(150, 400, 7).unwrap();
        let w = WeightedGraph::from_unweighted(&g);
        let bfs_d = bfs::distances(&g, 3);
        let dij_d = distances(&w, 3);
        for v in 0..150 {
            let expect = if bfs_d[v] == u32::MAX {
                INF_U64
            } else {
                bfs_d[v] as u64
            };
            assert_eq!(dij_d[v], expect, "vertex {v}");
        }
    }

    #[test]
    fn engine_reuse_is_clean() {
        let g = wgraph();
        let mut e = DijkstraEngine::new(3);
        assert_eq!(e.distance(&g, 0, 2), Some(2));
        assert_eq!(e.distance(&g, 2, 0), Some(2));
        assert_eq!(e.run(&g, 1).to_vec(), vec![1, 0, 1]);
    }

    #[test]
    fn single_vertex() {
        let g = WeightedGraph::from_unweighted(&CsrGraph::empty(1));
        assert_eq!(distance(&g, 0, 0), Some(0));
    }
}
