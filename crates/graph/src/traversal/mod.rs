//! Traversal engines: BFS, bidirectional BFS, Dijkstra and connected
//! components, with reusable buffers so repeated runs avoid O(n) allocation.

pub mod bfs;
pub mod components;
pub mod dijkstra;
pub mod kcore;
