//! k-core decomposition.
//!
//! The paper repeatedly leans on the *core–fringe* structure of complex
//! networks (§1, §4.6.3): a dense core surrounded by tree-like fringes.
//! Core numbers make that structure measurable — the fringe is the 1-core
//! minus the 2-core, and the "core" the paper's tree-decomposition
//! discussion refers to is the high-core region. The decomposition also
//! yields the *degeneracy ordering* used as an alternative PLL vertex
//! order.

use crate::{CsrGraph, Vertex};

/// Result of the k-core decomposition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `core[v]` = core number of `v` (largest k with v in the k-core).
    pub core: Vec<u32>,
    /// Vertices in degeneracy order: each vertex has the minimum remaining
    /// degree at its removal time. The *reverse* of this order (most
    /// deeply-cored vertices first) is a useful PLL priority order.
    pub degeneracy_order: Vec<Vertex>,
    /// The graph's degeneracy (maximum core number; 0 for edgeless).
    pub degeneracy: u32,
}

/// Computes core numbers with the linear-time bucket algorithm
/// (Batagelj–Zaveršnik).
pub fn core_decomposition(g: &CsrGraph) -> CoreDecomposition {
    let n = g.num_vertices();
    let mut degree: Vec<u32> = (0..n as Vertex).map(|v| g.degree(v) as u32).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by current degree.
    let mut bin_start = vec![0usize; max_degree + 2];
    for &d in &degree {
        bin_start[d as usize + 1] += 1;
    }
    for i in 1..bin_start.len() {
        bin_start[i] += bin_start[i - 1];
    }
    let mut pos = vec![0usize; n]; // position of v in `order`
    let mut order = vec![0 as Vertex; n]; // vertices sorted by degree
    {
        let mut cursor = bin_start.clone();
        for v in 0..n as Vertex {
            let d = degree[v as usize] as usize;
            pos[v as usize] = cursor[d];
            order[cursor[d]] = v;
            cursor[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    let mut degeneracy = 0u32;
    for i in 0..n {
        let v = order[i];
        let dv = degree[v as usize];
        degeneracy = degeneracy.max(dv);
        core[v as usize] = degeneracy;
        // "Remove" v: decrement the degree of later neighbours, moving each
        // one bucket down by swapping it to the front of its current bucket.
        for &w in g.neighbors(v) {
            if pos[w as usize] > i {
                let dw = degree[w as usize] as usize;
                // First vertex of w's bucket (skipping already-removed
                // prefix positions).
                let bucket_front = bin_start[dw].max(i + 1);
                let front_vertex = order[bucket_front];
                let pw = pos[w as usize];
                order.swap(bucket_front, pw);
                pos[w as usize] = bucket_front;
                pos[front_vertex as usize] = pw;
                bin_start[dw] = bucket_front + 1;
                degree[w as usize] -= 1;
            }
        }
    }

    CoreDecomposition {
        core,
        degeneracy_order: order,
        degeneracy,
    }
}

/// Extracts the subgraph induced by vertices with core number `>= k`,
/// returning `(subgraph, old_of_new)`.
pub fn k_core(g: &CsrGraph, k: u32) -> (CsrGraph, Vec<Vertex>) {
    let decomp = core_decomposition(g);
    let mut old_of_new = Vec::new();
    let mut new_of_old = vec![u32::MAX; g.num_vertices()];
    for v in 0..g.num_vertices() as Vertex {
        if decomp.core[v as usize] >= k {
            new_of_old[v as usize] = old_of_new.len() as Vertex;
            old_of_new.push(v);
        }
    }
    let edges: Vec<(Vertex, Vertex)> = g
        .edges()
        .filter(|&(u, v)| decomp.core[u as usize] >= k && decomp.core[v as usize] >= k)
        .map(|(u, v)| (new_of_old[u as usize], new_of_old[v as usize]))
        .collect();
    let sub =
        CsrGraph::from_edges(old_of_new.len(), &edges).expect("induced subgraph inherits validity");
    (sub, old_of_new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    /// Reference quadratic implementation: repeatedly strip min-degree.
    fn core_numbers_reference(g: &CsrGraph) -> Vec<u32> {
        let n = g.num_vertices();
        let mut alive = vec![true; n];
        let mut degree: Vec<u32> = (0..n as Vertex).map(|v| g.degree(v) as u32).collect();
        let mut core = vec![0u32; n];
        let mut k = 0u32;
        for _ in 0..n {
            let v = (0..n as Vertex)
                .filter(|&v| alive[v as usize])
                .min_by_key(|&v| degree[v as usize])
                .unwrap();
            k = k.max(degree[v as usize]);
            core[v as usize] = k;
            alive[v as usize] = false;
            for &w in g.neighbors(v) {
                if alive[w as usize] {
                    degree[w as usize] -= 1;
                }
            }
        }
        core
    }

    #[test]
    fn matches_reference_on_random_graphs() {
        for seed in [1, 2, 3, 4] {
            let g = gen::erdos_renyi_gnm(60, 150, seed).unwrap();
            assert_eq!(
                core_decomposition(&g).core,
                core_numbers_reference(&g),
                "seed {seed}"
            );
        }
        let g = gen::barabasi_albert(80, 3, 5).unwrap();
        assert_eq!(core_decomposition(&g).core, core_numbers_reference(&g));
    }

    #[test]
    fn known_structures() {
        // Trees are 1-degenerate.
        let t = gen::balanced_tree(3, 4).unwrap();
        let d = core_decomposition(&t);
        assert_eq!(d.degeneracy, 1);
        assert!(d.core.iter().all(|&c| c <= 1));

        // Cycles are 2-degenerate everywhere.
        let c = gen::cycle(10).unwrap();
        let d = core_decomposition(&c);
        assert_eq!(d.degeneracy, 2);
        assert!(d.core.iter().all(|&c| c == 2));

        // Complete graph: core number n-1 everywhere.
        let k = gen::complete(6).unwrap();
        let d = core_decomposition(&k);
        assert!(d.core.iter().all(|&c| c == 5));

        // BA(m): every vertex has core number >= m... the seed clique has
        // m+1; final degeneracy is exactly m.
        let g = gen::barabasi_albert(200, 3, 7).unwrap();
        assert_eq!(core_decomposition(&g).degeneracy, 3);
    }

    #[test]
    fn degeneracy_order_is_permutation() {
        let g = gen::chung_lu(150, 2.3, 6.0, 9).unwrap();
        let d = core_decomposition(&g);
        let mut sorted = d.degeneracy_order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..150).collect::<Vec<_>>());
    }

    #[test]
    fn k_core_extraction() {
        // Triangle with two pendants: 2-core = the triangle.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 4)]).unwrap();
        let (core2, map) = k_core(&g, 2);
        assert_eq!(core2.num_vertices(), 3);
        assert_eq!(core2.num_edges(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        // 3-core is empty.
        let (core3, map3) = k_core(&g, 3);
        assert_eq!(core3.num_vertices(), 0);
        assert!(map3.is_empty());
        // 0-core is everything.
        let (core0, _) = k_core(&g, 0);
        assert_eq!(core0.num_vertices(), 5);
    }

    #[test]
    fn edgeless_graph() {
        let g = CsrGraph::empty(4);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 0);
        assert_eq!(d.core, vec![0; 4]);
        assert_eq!(d.degeneracy_order.len(), 4);
    }

    use crate::CsrGraph;
}
