//! Directed CSR graph with both adjacency directions materialised.
//!
//! The directed variant of the paper (§6) performs two pruned BFSs per root:
//! one over out-edges and one over in-edges, so the representation stores
//! both directions up front.

use crate::error::{GraphError, Result};
use crate::Vertex;

/// An immutable directed graph in CSR form with forward and reverse
/// adjacency. Parallel edges and self-loops are rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrDigraph {
    out_offsets: Vec<u32>,
    out_targets: Vec<Vertex>,
    in_offsets: Vec<u32>,
    in_targets: Vec<Vertex>,
}

impl CsrDigraph {
    /// Builds a digraph from a directed edge list `(u, v)` meaning `u -> v`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`], [`GraphError::TooLarge`] or
    /// [`GraphError::InvalidParameter`] (self-loop / duplicate arc) like the
    /// undirected builder.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Result<Self> {
        if n > u32::MAX as usize - 1 {
            return Err(GraphError::TooLarge {
                what: "vertex count",
            });
        }
        if edges.len() > u32::MAX as usize {
            return Err(GraphError::TooLarge { what: "edge count" });
        }

        let mut out_degree = vec![0u32; n];
        let mut in_degree = vec![0u32; n];
        for &(u, v) in edges {
            if u as usize >= n || v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u.max(v) as u64,
                    num_vertices: n as u64,
                });
            }
            if u == v {
                return Err(GraphError::InvalidParameter {
                    message: format!("self-loop at vertex {u}"),
                });
            }
            out_degree[u as usize] += 1;
            in_degree[v as usize] += 1;
        }

        let prefix = |deg: &[u32]| {
            let mut offs = Vec::with_capacity(n + 1);
            let mut acc = 0u32;
            offs.push(0);
            for &d in deg {
                acc += d;
                offs.push(acc);
            }
            offs
        };
        let out_offsets = prefix(&out_degree);
        let in_offsets = prefix(&in_degree);

        let mut out_targets = vec![0 as Vertex; edges.len()];
        let mut in_targets = vec![0 as Vertex; edges.len()];
        let mut out_cursor: Vec<u32> = out_offsets[..n].to_vec();
        let mut in_cursor: Vec<u32> = in_offsets[..n].to_vec();
        for &(u, v) in edges {
            out_targets[out_cursor[u as usize] as usize] = v;
            out_cursor[u as usize] += 1;
            in_targets[in_cursor[v as usize] as usize] = u;
            in_cursor[v as usize] += 1;
        }

        for v in 0..n {
            let list = &mut out_targets[out_offsets[v] as usize..out_offsets[v + 1] as usize];
            list.sort_unstable();
            if list.windows(2).any(|w| w[0] == w[1]) {
                return Err(GraphError::InvalidParameter {
                    message: format!("duplicate arc out of vertex {v}"),
                });
            }
            in_targets[in_offsets[v] as usize..in_offsets[v + 1] as usize].sort_unstable();
        }

        Ok(CsrDigraph {
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: Vertex) -> usize {
        (self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: Vertex) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Sorted successors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.out_targets
            [self.out_offsets[v as usize] as usize..self.out_offsets[v as usize + 1] as usize]
    }

    /// Sorted predecessors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.in_targets
            [self.in_offsets[v as usize] as usize..self.in_offsets[v as usize + 1] as usize]
    }

    /// Whether the arc `u -> v` exists.
    pub fn has_arc(&self, u: Vertex, v: Vertex) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates all arcs `(u, v)` meaning `u -> v`.
    pub fn arcs(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        (0..self.num_vertices() as Vertex)
            .flat_map(move |u| self.out_neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterates all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> {
        0..self.num_vertices() as Vertex
    }

    /// The digraph with every arc reversed (shares no storage).
    pub fn reversed(&self) -> CsrDigraph {
        CsrDigraph {
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_targets.clone(),
            in_offsets: self.out_offsets.clone(),
            in_targets: self.out_targets.clone(),
        }
    }

    /// Heap bytes used by the four CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        4 * std::mem::size_of::<u32>() * (self.out_offsets.len() + self.out_targets.len()) / 2
            + (self.in_offsets.len() + self.in_targets.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrDigraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        CsrDigraph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn shape_and_degrees() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
    }

    #[test]
    fn has_arc_is_directional() {
        let g = diamond();
        assert!(g.has_arc(0, 1));
        assert!(!g.has_arc(1, 0));
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = diamond().reversed();
        assert!(g.has_arc(1, 0));
        assert!(!g.has_arc(0, 1));
        assert_eq!(g.out_degree(3), 2);
    }

    #[test]
    fn antiparallel_arcs_are_allowed() {
        let g = CsrDigraph::from_edges(2, &[(0, 1), (1, 0)]).unwrap();
        assert!(g.has_arc(0, 1));
        assert!(g.has_arc(1, 0));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rejects_duplicate_arc() {
        assert!(CsrDigraph::from_edges(2, &[(0, 1), (0, 1)]).is_err());
    }

    #[test]
    fn rejects_self_loop() {
        assert!(CsrDigraph::from_edges(2, &[(0, 0)]).is_err());
    }

    #[test]
    fn arcs_iterator() {
        let g = diamond();
        let mut a: Vec<_> = g.arcs().collect();
        a.sort_unstable();
        assert_eq!(a, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }
}
