//! Weighted directed CSR graph for the combined "directed and weighted"
//! variant of §6.

use crate::error::{GraphError, Result};
use crate::wgraph::Weight;
use crate::Vertex;

/// An immutable directed graph with positive arc weights, storing both
/// adjacency directions. Parallel arcs and self-loops are rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedDigraph {
    out_offsets: Vec<u32>,
    out_targets: Vec<Vertex>,
    out_weights: Vec<Weight>,
    in_offsets: Vec<u32>,
    in_targets: Vec<Vertex>,
    in_weights: Vec<Weight>,
}

impl WeightedDigraph {
    /// Builds from `(u, v, w)` triples meaning an arc `u -> v` of weight
    /// `w > 0`.
    ///
    /// # Errors
    ///
    /// Rejects zero weights, self-loops, duplicate arcs and out-of-range
    /// endpoints.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex, Weight)]) -> Result<Self> {
        if n > u32::MAX as usize - 1 {
            return Err(GraphError::TooLarge {
                what: "vertex count",
            });
        }
        if edges.len() > u32::MAX as usize {
            return Err(GraphError::TooLarge { what: "edge count" });
        }
        for &(u, v, w) in edges {
            if u as usize >= n || v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u.max(v) as u64,
                    num_vertices: n as u64,
                });
            }
            if u == v {
                return Err(GraphError::InvalidParameter {
                    message: format!("self-loop at vertex {u}"),
                });
            }
            if w == 0 {
                return Err(GraphError::InvalidParameter {
                    message: format!("zero weight on arc ({u}, {v})"),
                });
            }
        }

        let build_side = |key: fn(&(Vertex, Vertex, Weight)) -> (Vertex, Vertex)| {
            let mut lists: Vec<Vec<(Vertex, Weight)>> = vec![Vec::new(); n];
            for e in edges {
                let (from, to) = key(e);
                lists[from as usize].push((to, e.2));
            }
            let mut offsets = Vec::with_capacity(n + 1);
            let mut targets = Vec::with_capacity(edges.len());
            let mut weights = Vec::with_capacity(edges.len());
            offsets.push(0u32);
            for list in &mut lists {
                list.sort_unstable();
                for &(t, w) in list.iter() {
                    targets.push(t);
                    weights.push(w);
                }
                offsets.push(targets.len() as u32);
            }
            (offsets, targets, weights)
        };

        let (out_offsets, out_targets, out_weights) = build_side(|&(u, v, _)| (u, v));
        for v in 0..n {
            let s = out_offsets[v] as usize;
            let e = out_offsets[v + 1] as usize;
            if out_targets[s..e].windows(2).any(|w| w[0] == w[1]) {
                return Err(GraphError::InvalidParameter {
                    message: format!("duplicate arc out of vertex {v}"),
                });
            }
        }
        let (in_offsets, in_targets, in_weights) = build_side(|&(u, v, _)| (v, u));

        Ok(WeightedDigraph {
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_targets,
            in_weights,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of directed arcs.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: Vertex) -> usize {
        (self.out_offsets[v as usize + 1] - self.out_offsets[v as usize]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: Vertex) -> usize {
        (self.in_offsets[v as usize + 1] - self.in_offsets[v as usize]) as usize
    }

    /// Weighted successors of `v`, sorted by target.
    #[inline]
    pub fn out_neighbors(&self, v: Vertex) -> impl Iterator<Item = (Vertex, Weight)> + '_ {
        let s = self.out_offsets[v as usize] as usize;
        let e = self.out_offsets[v as usize + 1] as usize;
        self.out_targets[s..e]
            .iter()
            .copied()
            .zip(self.out_weights[s..e].iter().copied())
    }

    /// Weighted predecessors of `v`, sorted by source.
    #[inline]
    pub fn in_neighbors(&self, v: Vertex) -> impl Iterator<Item = (Vertex, Weight)> + '_ {
        let s = self.in_offsets[v as usize] as usize;
        let e = self.in_offsets[v as usize + 1] as usize;
        self.in_targets[s..e]
            .iter()
            .copied()
            .zip(self.in_weights[s..e].iter().copied())
    }

    /// Weight of arc `u -> v` if present.
    pub fn arc_weight(&self, u: Vertex, v: Vertex) -> Option<Weight> {
        let s = self.out_offsets[u as usize] as usize;
        let e = self.out_offsets[u as usize + 1] as usize;
        self.out_targets[s..e]
            .binary_search(&v)
            .ok()
            .map(|i| self.out_weights[s + i])
    }

    /// Iterates all arcs `(u, v, w)`.
    pub fn arcs(&self) -> impl Iterator<Item = (Vertex, Vertex, Weight)> + '_ {
        (0..self.num_vertices() as Vertex)
            .flat_map(move |u| self.out_neighbors(u).map(move |(v, w)| (u, v, w)))
    }

    /// Heap bytes used by the six CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        (self.out_offsets.len() + self.in_offsets.len()) * 4
            + (self.out_targets.len() + self.in_targets.len()) * 4
            + (self.out_weights.len() + self.in_weights.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> WeightedDigraph {
        // 0 ->(1) 1 ->(1) 3, 0 ->(5) 2 ->(1) 3
        WeightedDigraph::from_edges(4, &[(0, 1, 1), (1, 3, 1), (0, 2, 5), (2, 3, 1)]).unwrap()
    }

    #[test]
    fn shape_and_weights() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.arc_weight(0, 2), Some(5));
        assert_eq!(g.arc_weight(2, 0), None);
        let outs: Vec<_> = g.out_neighbors(0).collect();
        assert_eq!(outs, vec![(1, 1), (2, 5)]);
        let ins: Vec<_> = g.in_neighbors(3).collect();
        assert_eq!(ins, vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn antiparallel_with_different_weights() {
        let g = WeightedDigraph::from_edges(2, &[(0, 1, 3), (1, 0, 7)]).unwrap();
        assert_eq!(g.arc_weight(0, 1), Some(3));
        assert_eq!(g.arc_weight(1, 0), Some(7));
    }

    #[test]
    fn rejections() {
        assert!(WeightedDigraph::from_edges(2, &[(0, 0, 1)]).is_err());
        assert!(WeightedDigraph::from_edges(2, &[(0, 1, 0)]).is_err());
        assert!(WeightedDigraph::from_edges(2, &[(0, 1, 1), (0, 1, 2)]).is_err());
        assert!(WeightedDigraph::from_edges(2, &[(0, 5, 1)]).is_err());
    }

    #[test]
    fn arcs_iterator_and_memory() {
        let g = diamond();
        let mut a: Vec<_> = g.arcs().collect();
        a.sort_unstable();
        assert_eq!(a, vec![(0, 1, 1), (0, 2, 5), (1, 3, 1), (2, 3, 1)]);
        assert!(g.memory_bytes() > 0);
    }
}
