//! Compact undirected graph in CSR (compressed sparse row) form.
//!
//! The paper's index construction performs breadth-first searches whose inner
//! loop is "for all w ∈ N(v)" (Algorithm 1, line 10); a CSR layout makes that
//! loop a contiguous slice scan, which is the memory-locality property §4.5
//! relies on. Neighbour lists are stored sorted, so membership tests are
//! `O(log deg)` and the bit-parallel root selection of §5.4 (take the
//! highest-priority neighbours) is deterministic.

use crate::error::{GraphError, Result};
use crate::Vertex;

/// An immutable, undirected, unweighted graph in CSR form.
///
/// Every undirected edge `{u, v}` is stored twice (as `u -> v` and `v -> u`);
/// [`CsrGraph::num_edges`] reports the number of *undirected* edges. Parallel
/// edges and self-loops are rejected at construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for vertex `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-vertex-sorted adjacency lists.
    targets: Vec<Vertex>,
}

impl CsrGraph {
    /// Builds a graph from an undirected edge list.
    ///
    /// Edges may appear in any order and orientation but must not contain
    /// duplicates (in either orientation) or self-loops; use
    /// [`crate::GraphBuilder`] to normalise raw lists first.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] for endpoints `>= n`,
    /// [`GraphError::TooLarge`] if `2 * edges.len()` overflows `u32`, and
    /// [`GraphError::InvalidParameter`] for self-loops or duplicates.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Result<Self> {
        if n > u32::MAX as usize - 1 {
            return Err(GraphError::TooLarge {
                what: "vertex count",
            });
        }
        let half_edges = edges
            .len()
            .checked_mul(2)
            .ok_or(GraphError::TooLarge { what: "edge count" })?;
        if half_edges > u32::MAX as usize {
            return Err(GraphError::TooLarge { what: "edge count" });
        }

        let mut degree = vec![0u32; n];
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u as u64,
                    num_vertices: n as u64,
                });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v as u64,
                    num_vertices: n as u64,
                });
            }
            if u == v {
                return Err(GraphError::InvalidParameter {
                    message: format!("self-loop at vertex {u}"),
                });
            }
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }

        let mut targets = vec![0 as Vertex; half_edges];
        // `cursor` tracks the next free slot per vertex while scattering.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v) in edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }

        for v in 0..n {
            let s = offsets[v] as usize;
            let e = offsets[v + 1] as usize;
            let list = &mut targets[s..e];
            list.sort_unstable();
            if list.windows(2).any(|w| w[0] == w[1]) {
                return Err(GraphError::InvalidParameter {
                    message: format!("duplicate edge incident to vertex {v}"),
                });
            }
        }

        Ok(CsrGraph { offsets, targets })
    }

    /// Builds a graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Assembles a graph directly from CSR arrays.
    ///
    /// Intended for [`crate::reorder`] and deserialisation, which already
    /// hold validated CSR data. Debug builds assert the invariants.
    pub(crate) fn from_parts(offsets: Vec<u32>, targets: Vec<Vertex>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        CsrGraph { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as Vertex)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2m / n` (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.targets.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Iterates each undirected edge once, as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        (0..self.num_vertices() as Vertex).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> {
        0..self.num_vertices() as Vertex
    }

    /// Raw CSR views `(offsets, targets)`, used by serialisation.
    pub fn as_parts(&self) -> (&[u32], &[Vertex]) {
        (&self.offsets, &self.targets)
    }

    /// Heap bytes used by the CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.targets.len() * std::mem::size_of::<Vertex>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> CsrGraph {
        // 0-1, 1-2, 2-0 triangle with pendant 3 attached to 0.
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap()
    }

    #[test]
    fn basic_shape() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.neighbors(3), &[0]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = CsrGraph::from_edges(5, &[(4, 0), (2, 0), (0, 3), (1, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn has_edge_both_orientations() {
        let g = triangle_plus_pendant();
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_pendant();
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
    }

    #[test]
    fn rejects_self_loop() {
        let err = CsrGraph::from_edges(3, &[(1, 1)]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter { .. }));
    }

    #[test]
    fn rejects_duplicate_edges() {
        let err = CsrGraph::from_edges(3, &[(0, 1), (1, 0)]).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter { .. }));
    }

    #[test]
    fn rejects_out_of_range() {
        let err = CsrGraph::from_edges(3, &[(0, 3)]).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(7);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(6), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn memory_bytes_counts_both_arrays() {
        let g = triangle_plus_pendant();
        assert_eq!(g.memory_bytes(), 5 * 4 + 8 * 4);
    }
}
