//! Normalising builder for raw edge lists.
//!
//! Real-world edge dumps (and some generators, e.g. R-MAT) contain
//! duplicates, self-loops and both orientations of the same edge. §7.1 of the
//! paper treats all datasets as undirected simple graphs; [`GraphBuilder`]
//! performs that normalisation.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::Vertex;

/// Accumulates raw undirected edges and produces a simple [`CsrGraph`].
///
/// ```
/// use pll_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate orientation: dropped
/// b.add_edge(2, 2); // self-loop: dropped
/// b.add_edge(1, 2);
/// let g = b.build().unwrap();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Vertex, Vertex)>,
    dropped_self_loops: usize,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            dropped_self_loops: 0,
        }
    }

    /// Creates a builder with pre-reserved edge capacity.
    pub fn with_capacity(n: usize, edges: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(edges),
            dropped_self_loops: 0,
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of raw (pre-deduplication) edges added so far.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge; self-loops are counted and dropped.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) {
        if u == v {
            self.dropped_self_loops += 1;
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = (Vertex, Vertex)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }

    /// Grows the vertex count to at least `n`.
    pub fn ensure_vertices(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Number of self-loops dropped so far.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Deduplicates and produces the simple graph.
    ///
    /// # Errors
    ///
    /// Propagates range/overflow errors from [`CsrGraph::from_edges`].
    pub fn build(mut self) -> Result<CsrGraph> {
        for &(u, v) in &self.edges {
            if u as usize >= self.n || v as usize >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u.max(v) as u64,
                    num_vertices: self.n as u64,
                });
            }
        }
        self.edges.sort_unstable();
        self.edges.dedup();
        CsrGraph::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_both_orientations() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn drops_and_counts_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 2);
        b.add_edge(0, 1);
        assert_eq!(b.dropped_self_loops(), 1);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn extend_edges_and_capacity() {
        let mut b = GraphBuilder::with_capacity(4, 3);
        b.extend_edges([(0, 1), (1, 2), (2, 3)]);
        assert_eq!(b.num_raw_edges(), 3);
        assert_eq!(b.build().unwrap().num_edges(), 3);
    }

    #[test]
    fn ensure_vertices_grows_only() {
        let mut b = GraphBuilder::new(2);
        b.ensure_vertices(5);
        b.ensure_vertices(1);
        assert_eq!(b.num_vertices(), 5);
    }

    #[test]
    fn out_of_range_detected_at_build() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
        assert!(matches!(
            b.build().unwrap_err(),
            GraphError::VertexOutOfRange { .. }
        ));
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.num_vertices(), 0);
    }
}
