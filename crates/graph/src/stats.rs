//! Degree and distance statistics (Figure 2 of the paper).

use crate::gen::rng::Xoshiro256pp;
use crate::traversal::bfs::BfsEngine;
use crate::{CsrGraph, Vertex, INF_U32};

/// Summary statistics of a graph, printed by the Table 4 harness.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Average degree `2m/n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

/// Computes the summary statistics of `g`.
pub fn summary(g: &CsrGraph) -> GraphSummary {
    GraphSummary {
        num_vertices: g.num_vertices(),
        num_edges: g.num_edges(),
        avg_degree: g.avg_degree(),
        max_degree: g.max_degree(),
    }
}

/// Degree complementary cumulative distribution: for each distinct degree
/// `d` (ascending), the number of vertices with degree `>= d`. This is the
/// quantity Figures 2a/2b plot on log-log axes.
pub fn degree_ccdf(g: &CsrGraph) -> Vec<(usize, usize)> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    degrees.sort_unstable();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        let d = degrees[i];
        // vertices with degree >= d are those from index i onward.
        out.push((d, n - i));
        while i < n && degrees[i] == d {
            i += 1;
        }
    }
    out
}

/// Distance distribution over `samples` random pairs (Figures 2c/2d):
/// `result[d]` is the fraction of sampled *connected* pairs at distance `d`.
/// Returns an empty vector if no sampled pair was connected.
pub fn distance_distribution(g: &CsrGraph, samples: usize, seed: u64) -> Vec<f64> {
    let n = g.num_vertices();
    if n < 2 || samples == 0 {
        return Vec::new();
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut engine = BfsEngine::new(n);
    let mut counts: Vec<usize> = Vec::new();
    let mut connected = 0usize;
    for _ in 0..samples {
        let s = rng.next_below(n as u64) as Vertex;
        let t = rng.next_below(n as u64) as Vertex;
        if let Some(d) = engine.distance(g, s, t) {
            let d = d as usize;
            if counts.len() <= d {
                counts.resize(d + 1, 0);
            }
            counts[d] += 1;
            connected += 1;
        }
    }
    if connected == 0 {
        return Vec::new();
    }
    counts
        .into_iter()
        .map(|c| c as f64 / connected as f64)
        .collect()
}

/// Mean distance over `samples` random connected pairs; `None` if no sampled
/// pair was connected.
pub fn mean_distance(g: &CsrGraph, samples: usize, seed: u64) -> Option<f64> {
    let dist = distance_distribution(g, samples, seed);
    if dist.is_empty() {
        return None;
    }
    Some(dist.iter().enumerate().map(|(d, f)| d as f64 * f).sum())
}

/// Approximate effective diameter: smallest `d` such that at least
/// `quantile` of sampled connected pairs are within distance `d`.
pub fn effective_diameter(g: &CsrGraph, samples: usize, quantile: f64, seed: u64) -> Option<u32> {
    let dist = distance_distribution(g, samples, seed);
    if dist.is_empty() {
        return None;
    }
    let mut acc = 0.0;
    for (d, f) in dist.iter().enumerate() {
        acc += f;
        if acc >= quantile {
            return Some(d as u32);
        }
    }
    Some(dist.len() as u32 - 1)
}

/// Exact diameter via BFS from every vertex — O(nm), tests/small graphs only.
/// Returns `None` for graphs with no finite-distance pair of distinct
/// vertices.
pub fn exact_diameter(g: &CsrGraph) -> Option<u32> {
    let n = g.num_vertices();
    let mut engine = BfsEngine::new(n);
    let mut best: Option<u32> = None;
    for v in 0..n as Vertex {
        let d = engine.run(g, v);
        for &dv in d.iter().filter(|&&dv| dv != INF_U32 && dv > 0) {
            best = Some(best.map_or(dv, |b| b.max(dv)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn summary_of_path() {
        let g = gen::path(5).unwrap();
        let s = summary(&g);
        assert_eq!(s.num_vertices, 5);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 1.6).abs() < 1e-12);
    }

    #[test]
    fn ccdf_is_monotone_and_starts_at_n() {
        let g = gen::barabasi_albert(500, 3, 1).unwrap();
        let ccdf = degree_ccdf(&g);
        assert_eq!(ccdf.first().unwrap().1, 500);
        for w in ccdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 > w[1].1);
        }
        assert!(ccdf.last().unwrap().1 >= 1);
    }

    #[test]
    fn ccdf_star() {
        let g = gen::star(10).unwrap();
        // degrees: one 9, nine 1s.
        assert_eq!(degree_ccdf(&g), vec![(1, 10), (9, 1)]);
    }

    #[test]
    fn distance_distribution_sums_to_one() {
        let g = gen::barabasi_albert(300, 2, 2).unwrap();
        let dist = distance_distribution(&g, 2000, 7);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // BA(300,2) is small-world: most pairs within distance 8.
        assert!(dist.len() < 12, "distances {dist:?}");
    }

    #[test]
    fn distance_distribution_edgeless() {
        // Only self-pairs are connected in an edgeless graph, so the whole
        // distribution mass sits at distance 0.
        let g = CsrGraph::empty(10);
        assert_eq!(distance_distribution(&g, 100, 1), vec![1.0]);
        assert_eq!(mean_distance(&g, 100, 1), Some(0.0));
    }

    #[test]
    fn mean_distance_of_edge() {
        let g = gen::path(2).unwrap();
        // pairs: (0,0),(0,1),(1,0),(1,1) -> mean 0.5 over many samples.
        let m = mean_distance(&g, 4000, 3).unwrap();
        assert!((m - 0.5).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn effective_diameter_path() {
        let g = gen::path(50).unwrap();
        let d90 = effective_diameter(&g, 4000, 0.9, 5).unwrap();
        assert!((30..=49).contains(&d90), "d90 {d90}");
        // Edgeless graph: only self-pairs connect, all at distance 0.
        assert_eq!(effective_diameter(&CsrGraph::empty(3), 10, 0.9, 1), Some(0));
    }

    #[test]
    fn exact_diameter_cases() {
        assert_eq!(exact_diameter(&gen::path(10).unwrap()), Some(9));
        assert_eq!(exact_diameter(&gen::cycle(8).unwrap()), Some(4));
        assert_eq!(exact_diameter(&gen::complete(5).unwrap()), Some(1));
        assert_eq!(exact_diameter(&CsrGraph::empty(3)), None);
        // diameter ignores cross-component infinities
        let g = CsrGraph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(exact_diameter(&g), Some(1));
    }
}
