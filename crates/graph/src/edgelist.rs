//! Edge-list I/O in the SNAP text format and a compact binary format.
//!
//! The paper's datasets ship as whitespace-separated edge lists with `#`
//! comment lines (SNAP convention). [`read_text`] accepts exactly that, so a
//! user with the original dumps can reproduce the experiments on real data.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::digraph::CsrDigraph;
use crate::error::{GraphError, Result};
use crate::wdigraph::WeightedDigraph;
use crate::wgraph::WeightedGraph;
use crate::Vertex;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Magic bytes of the binary graph format.
const BINARY_MAGIC: &[u8; 8] = b"PLLGRAPH";
/// Binary format version.
const BINARY_VERSION: u32 = 1;

/// Reads an undirected graph from SNAP-style text: one `u v` pair per line,
/// `#`-prefixed comments, arbitrary whitespace. Vertex ids need not be
/// contiguous; the graph is sized by the maximum id. Self-loops and
/// duplicates are dropped.
pub fn read_text<R: Read>(reader: R) -> Result<CsrGraph> {
    let mut edges: Vec<(Vertex, Vertex)> = Vec::new();
    let mut max_vertex: u64 = 0;
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, lineno: usize| -> Result<u64> {
            let tok = tok.ok_or(GraphError::Parse {
                line: lineno + 1,
                message: "expected two vertex ids".into(),
            })?;
            tok.parse::<u64>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad vertex id {tok:?}: {e}"),
            })
        };
        let u = parse(it.next(), lineno)?;
        let v = parse(it.next(), lineno)?;
        if u >= u32::MAX as u64 || v >= u32::MAX as u64 {
            return Err(GraphError::TooLarge {
                what: "vertex id in edge list",
            });
        }
        max_vertex = max_vertex.max(u).max(v);
        edges.push((u as Vertex, v as Vertex));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_vertex as usize + 1
    };
    let mut builder = GraphBuilder::with_capacity(n, edges.len());
    builder.extend_edges(edges);
    builder.build()
}

/// Writes a graph as SNAP-style text (one `u v` line per undirected edge).
pub fn write_text<W: Write>(g: &CsrGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# undirected graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a weighted graph from text lines `u v w`. Self-loops are
/// dropped and duplicate edges (either orientation) are collapsed to the
/// smallest weight, matching [`read_text`]'s leniency.
pub fn read_weighted_text<R: Read>(reader: R) -> Result<WeightedGraph> {
    let mut edges: Vec<(Vertex, Vertex, u32)> = Vec::new();
    let mut max_vertex: u64 = 0;
    let mut saw_edge = false;
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 3 {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: format!("expected `u v w`, got {} tokens", toks.len()),
            });
        }
        let parse = |tok: &str| -> Result<u64> {
            tok.parse::<u64>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad number {tok:?}: {e}"),
            })
        };
        let (u, v, wt) = (parse(toks[0])?, parse(toks[1])?, parse(toks[2])?);
        if u >= u32::MAX as u64 || v >= u32::MAX as u64 || wt > u32::MAX as u64 {
            return Err(GraphError::TooLarge {
                what: "vertex id or weight in edge list",
            });
        }
        max_vertex = max_vertex.max(u).max(v);
        saw_edge = true;
        if u == v {
            continue;
        }
        // Normalise the undirected edge so (u, v) and (v, u) dedup
        // together.
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        edges.push((a as Vertex, b as Vertex, wt as u32));
    }
    let n = if saw_edge { max_vertex as usize + 1 } else { 0 };
    edges.sort_unstable();
    edges.dedup_by_key(|&mut (u, v, _)| (u, v));
    WeightedGraph::from_edges(n, &edges)
}

/// Reads a *directed* graph from SNAP-style text: one `u v` arc per line
/// (meaning `u -> v`), `#`-prefixed comments, arbitrary whitespace.
/// Self-loops and duplicate arcs are dropped, like [`read_text`].
pub fn read_directed_text<R: Read>(reader: R) -> Result<CsrDigraph> {
    let mut arcs: Vec<(Vertex, Vertex)> = Vec::new();
    let mut max_vertex: u64 = 0;
    let mut saw_arc = false;
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<u64> {
            let tok = tok.ok_or(GraphError::Parse {
                line: lineno + 1,
                message: "expected two vertex ids".into(),
            })?;
            tok.parse::<u64>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad vertex id {tok:?}: {e}"),
            })
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        if u >= u32::MAX as u64 || v >= u32::MAX as u64 {
            return Err(GraphError::TooLarge {
                what: "vertex id in edge list",
            });
        }
        max_vertex = max_vertex.max(u).max(v);
        saw_arc = true;
        if u == v {
            continue;
        }
        arcs.push((u as Vertex, v as Vertex));
    }
    let n = if saw_arc { max_vertex as usize + 1 } else { 0 };
    arcs.sort_unstable();
    arcs.dedup();
    CsrDigraph::from_edges(n, &arcs)
}

/// Reads a *weighted directed* graph from text lines `u v w` (meaning an
/// arc `u -> v` of weight `w > 0`). Self-loops are dropped; for duplicate
/// arcs the smallest weight wins.
pub fn read_weighted_directed_text<R: Read>(reader: R) -> Result<WeightedDigraph> {
    let mut arcs: Vec<(Vertex, Vertex, u32)> = Vec::new();
    let mut max_vertex: u64 = 0;
    let mut saw_arc = false;
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() != 3 {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: format!("expected `u v w`, got {} tokens", toks.len()),
            });
        }
        let parse = |tok: &str| -> Result<u64> {
            tok.parse::<u64>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad number {tok:?}: {e}"),
            })
        };
        let (u, v, wt) = (parse(toks[0])?, parse(toks[1])?, parse(toks[2])?);
        if u >= u32::MAX as u64 || v >= u32::MAX as u64 || wt > u32::MAX as u64 {
            return Err(GraphError::TooLarge {
                what: "vertex id or weight in edge list",
            });
        }
        max_vertex = max_vertex.max(u).max(v);
        saw_arc = true;
        if u == v {
            continue;
        }
        arcs.push((u as Vertex, v as Vertex, wt as u32));
    }
    let n = if saw_arc { max_vertex as usize + 1 } else { 0 };
    arcs.sort_unstable();
    arcs.dedup_by_key(|&mut (u, v, _)| (u, v));
    WeightedDigraph::from_edges(n, &arcs)
}

/// Writes a graph in the compact binary format (`PLLGRAPH` magic, version,
/// vertex count, CSR arrays, little-endian).
pub fn write_binary<W: Write>(g: &CsrGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&BINARY_VERSION.to_le_bytes())?;
    let (offsets, targets) = g.as_parts();
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(targets.len() as u64).to_le_bytes())?;
    for &o in offsets {
        w.write_all(&o.to_le_bytes())?;
    }
    for &t in targets {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(GraphError::Format {
            message: "bad magic bytes".into(),
        });
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != BINARY_VERSION {
        return Err(GraphError::Format {
            message: format!("unsupported version {version}"),
        });
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let half_edges = u64::from_le_bytes(buf8) as usize;
    if n > u32::MAX as usize || half_edges > u32::MAX as usize {
        return Err(GraphError::Format {
            message: "vertex or edge count exceeds 32-bit layout".into(),
        });
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut buf4)?;
        offsets.push(u32::from_le_bytes(buf4));
    }
    let mut targets = Vec::with_capacity(half_edges);
    for _ in 0..half_edges {
        r.read_exact(&mut buf4)?;
        targets.push(u32::from_le_bytes(buf4));
    }
    if offsets.last().copied().unwrap_or(0) as usize != targets.len()
        || offsets.windows(2).any(|w| w[0] > w[1])
    {
        return Err(GraphError::Format {
            message: "inconsistent CSR offsets".into(),
        });
    }
    // Re-validate through the public constructor path invariants.
    for v in 0..n {
        let s = offsets[v] as usize;
        let e = offsets[v + 1] as usize;
        let list = &targets[s..e];
        if list.windows(2).any(|w| w[0] >= w[1]) {
            return Err(GraphError::Format {
                message: format!("adjacency of vertex {v} not strictly sorted"),
            });
        }
        if list.iter().any(|&t| t as usize >= n) {
            return Err(GraphError::Format {
                message: format!("adjacency of vertex {v} out of range"),
            });
        }
    }
    Ok(CsrGraph::from_parts(offsets, targets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use std::io::Cursor;

    #[test]
    fn text_roundtrip() {
        let g = gen::erdos_renyi_gnm(50, 120, 3).unwrap();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_parses_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n  1   2  \n# trailing\n";
        let g = read_text(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_drops_self_loops_and_duplicates() {
        let text = "0 0\n0 1\n1 0\n";
        let g = read_text(Cursor::new(text)).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn text_reports_parse_errors_with_line() {
        let err = read_text(Cursor::new("0 1\nx y\n")).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
        let err = read_text(Cursor::new("0\n")).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_text_is_empty_graph() {
        let g = read_text(Cursor::new("# nothing\n")).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn weighted_text_roundtrip_via_parse() {
        let text = "0 1 5\n1 2 7\n";
        let g = read_weighted_text(Cursor::new(text)).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(5));
        assert_eq!(g.edge_weight(2, 1), Some(7));
        assert!(read_weighted_text(Cursor::new("0 1\n")).is_err());
    }

    #[test]
    fn weighted_text_drops_self_loops_and_dedups_both_orientations() {
        let text = "0 1 5\n1 0 3\n0 1 8\n2 2 4\n";
        let g = read_weighted_text(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3); // self-loop vertex still counted
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3)); // smallest duplicate wins
    }

    #[test]
    fn directed_text_parses_arcs() {
        let text = "# arcs\n0 1\n1 0\n1 2\n2 2\n1 2\n";
        let g = read_directed_text(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3); // self-loop and duplicate dropped
        assert!(g.has_arc(0, 1));
        assert!(g.has_arc(1, 0));
        assert!(g.has_arc(1, 2));
        assert!(!g.has_arc(2, 1));
        assert!(read_directed_text(Cursor::new("0\n")).is_err());
        assert_eq!(
            read_directed_text(Cursor::new("# nothing\n"))
                .unwrap()
                .num_vertices(),
            0
        );
    }

    #[test]
    fn weighted_directed_text_parses_arcs() {
        let text = "0 1 5\n1 0 9\n0 1 3\n2 2 4\n";
        let g = read_weighted_directed_text(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.arc_weight(0, 1), Some(3)); // smallest duplicate wins
        assert_eq!(g.arc_weight(1, 0), Some(9));
        assert_eq!(g.arc_weight(1, 2), None);
        assert!(read_weighted_directed_text(Cursor::new("0 1\n")).is_err());
    }

    #[test]
    fn binary_roundtrip() {
        let g = gen::barabasi_albert(200, 3, 9).unwrap();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(read_binary(Cursor::new(b"NOTMAGIC".to_vec())).is_err());
        let mut buf = Vec::new();
        write_binary(&gen::path(4).unwrap(), &mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_binary(Cursor::new(buf)).is_err());
    }

    #[test]
    fn binary_rejects_wrong_version() {
        let mut buf = Vec::new();
        write_binary(&gen::path(3).unwrap(), &mut buf).unwrap();
        buf[8] = 99; // clobber version
        assert!(matches!(
            read_binary(Cursor::new(buf)).unwrap_err(),
            GraphError::Format { .. }
        ));
    }
}
