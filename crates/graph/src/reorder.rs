//! Vertex relabelling.
//!
//! §4.5 ("Sorting Labels") relabels the graph so that vertex `i` is the
//! `i`-th vertex in the BFS priority order; labels then store ranks and are
//! implicitly sorted. [`apply_order`] performs that relabelling.

use crate::csr::CsrGraph;
use crate::Vertex;

/// Relabels `g` so that new vertex `r` is `order[r]` (i.e. `order` maps
/// rank → old id). Returns the relabelled graph.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..n` (checked in debug and
/// release: the inverse construction detects duplicates).
pub fn apply_order(g: &CsrGraph, order: &[Vertex]) -> CsrGraph {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order length must equal vertex count");
    let inv = inverse_permutation(order);

    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut acc = 0u32;
    for &old in order {
        acc += g.degree(old) as u32;
        offsets.push(acc);
    }
    let mut targets = vec![0 as Vertex; acc as usize];
    for (rank, &old) in order.iter().enumerate() {
        let s = offsets[rank] as usize;
        let slot = &mut targets[s..s + g.degree(old)];
        for (i, &w) in g.neighbors(old).iter().enumerate() {
            slot[i] = inv[w as usize];
        }
        slot.sort_unstable();
    }
    CsrGraph::from_parts(offsets, targets)
}

/// Computes the inverse of a permutation: `inv[order[r]] = r`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..order.len()`.
pub fn inverse_permutation(order: &[Vertex]) -> Vec<Vertex> {
    let n = order.len();
    let mut inv = vec![u32::MAX; n];
    for (rank, &old) in order.iter().enumerate() {
        assert!(
            (old as usize) < n,
            "order entry {old} out of range for n={n}"
        );
        assert_eq!(
            inv[old as usize],
            u32::MAX,
            "order contains duplicate vertex {old}"
        );
        inv[old as usize] = rank as Vertex;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::traversal::bfs;

    #[test]
    fn identity_order_is_identity() {
        let g = gen::erdos_renyi_gnm(40, 80, 1).unwrap();
        let order: Vec<Vertex> = (0..40).collect();
        assert_eq!(apply_order(&g, &order), g);
    }

    #[test]
    fn relabelling_preserves_distances() {
        let g = gen::barabasi_albert(100, 2, 4).unwrap();
        let mut order: Vec<Vertex> = (0..100).collect();
        order.reverse();
        let h = apply_order(&g, &order);
        let inv = inverse_permutation(&order);
        let dg = bfs::distances(&g, 17);
        let dh = bfs::distances(&h, inv[17]);
        for old in 0..100u32 {
            assert_eq!(dg[old as usize], dh[inv[old as usize] as usize]);
        }
    }

    #[test]
    fn inverse_permutation_roundtrip() {
        let order = vec![2, 0, 3, 1];
        let inv = inverse_permutation(&order);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        for (rank, &old) in order.iter().enumerate() {
            assert_eq!(inv[old as usize] as usize, rank);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_order_panics() {
        inverse_permutation(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_order_panics() {
        inverse_permutation(&[0, 5, 1]);
    }

    #[test]
    fn degree_multiset_preserved() {
        let g = gen::chung_lu(300, 2.4, 5.0, 6).unwrap();
        let mut order: Vec<Vertex> = (0..300).collect();
        // Arbitrary deterministic shuffle.
        order.sort_by_key(|&v| (v as u64 * 2_654_435_761) % 300);
        let h = apply_order(&g, &order);
        let mut dg: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let mut dh: Vec<usize> = h.vertices().map(|v| h.degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
    }
}
