//! Vertex relabelling.
//!
//! §4.5 ("Sorting Labels") relabels the graph so that vertex `i` is the
//! `i`-th vertex in the BFS priority order; labels then store ranks and are
//! implicitly sorted. [`apply_order`] performs that relabelling.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::Vertex;

/// Minimum adjacency entries for the parallel translation pass; below
/// this the spawn/join overhead exceeds the work. Purely a performance
/// knob — both paths produce identical output.
const PARALLEL_RELABEL_MIN_TARGETS: usize = 4096;

/// Relabels `g` so that new vertex `r` is `order[r]` (i.e. `order` maps
/// rank → old id). Returns the relabelled graph. Sequential shorthand for
/// [`apply_order_threaded`] with one thread.
///
/// # Errors
///
/// Returns [`GraphError::TooLarge`] if the relabelled adjacency array
/// would exceed the 32-bit CSR representation (the accumulation used to
/// wrap silently; any graph built through [`CsrGraph::from_edges`]
/// already fits, so this guards future raw constructors).
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..n` (checked in debug and
/// release: the inverse construction detects duplicates).
pub fn apply_order(g: &CsrGraph, order: &[Vertex]) -> Result<CsrGraph> {
    apply_order_threaded(g, order, 1)
}

/// Relabels `g` on up to `threads` worker threads, in two passes:
///
/// 1. a sequential `u64` prefix sum over the permuted degrees builds the
///    rank-space offsets, each checked against the `u32` CSR bound;
/// 2. the ranks are split into contiguous chunks whose adjacency spans
///    are **disjoint** slices of the target array; each worker translates
///    its chunk's neighbour lists through the inverse permutation and
///    sorts every list.
///
/// The chunks write disjoint memory and each sorted list is unique, so
/// the output equals the sequential relabelling at any thread count.
///
/// # Errors / Panics
///
/// As for [`apply_order`].
pub fn apply_order_threaded(g: &CsrGraph, order: &[Vertex], threads: usize) -> Result<CsrGraph> {
    let n = g.num_vertices();
    assert_eq!(order.len(), n, "order length must equal vertex count");
    let inv = inverse_permutation(order);

    // Pass 1: offsets by checked u64 prefix sum of the permuted degrees.
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut acc = 0u64;
    for &old in order {
        acc += g.degree(old) as u64;
        if acc > u32::MAX as u64 {
            return Err(GraphError::TooLarge {
                what: "relabelled adjacency length",
            });
        }
        offsets.push(acc as u32);
    }
    let mut targets = vec![0 as Vertex; acc as usize];

    // Pass 2: translate + sort each rank's neighbour list into its slot.
    let inv = &inv;
    let offsets_ref = &offsets;
    let translate = |ranks: std::ops::Range<usize>, out: &mut [Vertex]| {
        let base = offsets_ref[ranks.start] as usize;
        for rank in ranks {
            let old = order[rank];
            let s = offsets_ref[rank] as usize - base;
            let slot = &mut out[s..s + g.degree(old)];
            for (i, &w) in g.neighbors(old).iter().enumerate() {
                slot[i] = inv[w as usize];
            }
            slot.sort_unstable();
        }
    };
    if threads <= 1 || targets.len() < PARALLEL_RELABEL_MIN_TARGETS {
        translate(0..n, &mut targets);
    } else {
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest: &mut [Vertex] = &mut targets;
            let mut start = 0usize;
            while start < n {
                let end = (start + chunk).min(n);
                let len = (offsets_ref[end] - offsets_ref[start]) as usize;
                let (head, tail) = rest.split_at_mut(len);
                rest = tail;
                let translate = &translate;
                scope.spawn(move || translate(start..end, head));
                start = end;
            }
        });
    }
    Ok(CsrGraph::from_parts(offsets, targets))
}

/// Computes the inverse of a permutation: `inv[order[r]] = r`.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..order.len()`.
pub fn inverse_permutation(order: &[Vertex]) -> Vec<Vertex> {
    let n = order.len();
    let mut inv = vec![u32::MAX; n];
    for (rank, &old) in order.iter().enumerate() {
        assert!(
            (old as usize) < n,
            "order entry {old} out of range for n={n}"
        );
        assert_eq!(
            inv[old as usize],
            u32::MAX,
            "order contains duplicate vertex {old}"
        );
        inv[old as usize] = rank as Vertex;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::traversal::bfs;

    #[test]
    fn identity_order_is_identity() {
        let g = gen::erdos_renyi_gnm(40, 80, 1).unwrap();
        let order: Vec<Vertex> = (0..40).collect();
        assert_eq!(apply_order(&g, &order).unwrap(), g);
    }

    #[test]
    fn relabelling_preserves_distances() {
        let g = gen::barabasi_albert(100, 2, 4).unwrap();
        let mut order: Vec<Vertex> = (0..100).collect();
        order.reverse();
        let h = apply_order(&g, &order).unwrap();
        let inv = inverse_permutation(&order);
        let dg = bfs::distances(&g, 17);
        let dh = bfs::distances(&h, inv[17]);
        for old in 0..100u32 {
            assert_eq!(dg[old as usize], dh[inv[old as usize] as usize]);
        }
    }

    #[test]
    fn inverse_permutation_roundtrip() {
        let order = vec![2, 0, 3, 1];
        let inv = inverse_permutation(&order);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        for (rank, &old) in order.iter().enumerate() {
            assert_eq!(inv[old as usize] as usize, rank);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_order_panics() {
        inverse_permutation(&[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_order_panics() {
        inverse_permutation(&[0, 5, 1]);
    }

    #[test]
    fn degree_multiset_preserved() {
        let g = gen::chung_lu(300, 2.4, 5.0, 6).unwrap();
        let mut order: Vec<Vertex> = (0..300).collect();
        // Arbitrary deterministic shuffle.
        order.sort_by_key(|&v| (v as u64 * 2_654_435_761) % 300);
        let h = apply_order(&g, &order).unwrap();
        let mut dg: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let mut dh: Vec<usize> = h.vertices().map(|v| h.degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        assert_eq!(dg, dh);
    }

    #[test]
    fn threaded_relabel_matches_sequential() {
        let g = gen::barabasi_albert(2000, 3, 4).unwrap();
        let mut order: Vec<Vertex> = (0..2000).collect();
        // Arbitrary deterministic shuffle.
        order.sort_by_key(|&v| (v as u64 * 2_654_435_761) % 2000);
        let seq = apply_order(&g, &order).unwrap();
        for threads in [2usize, 3, 7, 16] {
            assert_eq!(
                seq,
                apply_order_threaded(&g, &order, threads).unwrap(),
                "relabelled graph diverged at threads={threads}"
            );
        }
        // Degenerate shapes: empty graph, threads > n.
        let empty = CsrGraph::empty(0);
        assert_eq!(
            apply_order_threaded(&empty, &[], 8).unwrap().num_vertices(),
            0
        );
        let tiny = gen::path(3).unwrap();
        let seq = apply_order(&tiny, &[2, 0, 1]).unwrap();
        assert_eq!(seq, apply_order_threaded(&tiny, &[2, 0, 1], 8).unwrap());
    }
}
