//! Chung–Lu power-law random graphs.

use crate::error::{GraphError, Result};
use crate::gen::rng::Xoshiro256pp;
use crate::{CsrGraph, GraphBuilder, Vertex};
use std::collections::HashSet;

/// Generates a Chung–Lu graph with a power-law expected-degree sequence.
///
/// Vertex `i` receives weight `w_i ∝ (i + i0)^(-1/(gamma-1))`, scaled so the
/// mean weight is `avg_degree`; edges are then sampled with probability
/// proportional to `w_u * w_v` using the weighted "edge-skipping" scheme.
/// This matches the degree *distribution* of a target power law without the
/// growth dynamics of preferential attachment — a good stand-in for social
/// networks whose degree exponent is known (`gamma ≈ 2.1–2.5`).
///
/// # Errors
///
/// Requires `gamma > 2` (finite mean) and `avg_degree > 0`.
pub fn chung_lu(n: usize, gamma: f64, avg_degree: f64, seed: u64) -> Result<CsrGraph> {
    if gamma <= 2.0 {
        return Err(GraphError::InvalidParameter {
            message: format!("chung_lu requires gamma > 2, got {gamma}"),
        });
    }
    if avg_degree <= 0.0 {
        return Err(GraphError::InvalidParameter {
            message: format!("chung_lu requires avg_degree > 0, got {avg_degree}"),
        });
    }
    if n == 0 {
        return CsrGraph::from_edges(0, &[]);
    }

    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    // Power-law weights; the offset i0 caps the maximum expected degree at
    // roughly n^(1/(gamma-1)), the natural cutoff.
    let exponent = -1.0 / (gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(exponent)).collect();
    let mean: f64 = weights.iter().sum::<f64>() / n as f64;
    let scale = avg_degree / mean;
    for w in &mut weights {
        *w *= scale;
    }
    let total_weight: f64 = weights.iter().sum();

    // Sample m ≈ avg_degree * n / 2 edges, each endpoint weight-proportional,
    // deduplicating. Weight-proportional sampling via prefix sums + binary
    // search keeps generation O(m log n).
    let mut prefix = Vec::with_capacity(n + 1);
    let mut acc = 0.0;
    prefix.push(0.0);
    for &w in &weights {
        acc += w;
        prefix.push(acc);
    }
    let sample = |rng: &mut Xoshiro256pp, prefix: &[f64]| -> Vertex {
        let x = rng.next_f64() * total_weight;
        match prefix.binary_search_by(|p| p.partial_cmp(&x).unwrap()) {
            Ok(i) => (i.min(n - 1)) as Vertex,
            Err(i) => (i.saturating_sub(1)).min(n - 1) as Vertex,
        }
    };

    let target_edges = ((avg_degree * n as f64) / 2.0).round() as usize;
    let max_edges = n * (n - 1) / 2;
    let target_edges = target_edges.min(max_edges);
    let mut chosen: HashSet<(Vertex, Vertex)> = HashSet::with_capacity(target_edges * 2);
    let mut builder = GraphBuilder::with_capacity(n, target_edges);
    let mut attempts = 0usize;
    let attempt_cap = target_edges.saturating_mul(50).max(1000);
    while chosen.len() < target_edges && attempts < attempt_cap {
        attempts += 1;
        let u = sample(&mut rng, &prefix);
        let v = sample(&mut rng, &prefix);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            builder.add_edge(key.0, key.1);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_near_target() {
        let g = chung_lu(2000, 2.3, 8.0, 1).unwrap();
        let target = 2000.0 * 8.0 / 2.0;
        assert!(
            (g.num_edges() as f64 - target).abs() < 0.05 * target,
            "edges {} vs target {target}",
            g.num_edges()
        );
    }

    #[test]
    fn skewed_degree_distribution() {
        let g = chung_lu(5000, 2.2, 6.0, 2).unwrap();
        assert!(g.max_degree() > 8 * g.avg_degree() as usize);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            chung_lu(500, 2.5, 4.0, 77).unwrap(),
            chung_lu(500, 2.5, 4.0, 77).unwrap()
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(chung_lu(100, 2.0, 4.0, 1).is_err());
        assert!(chung_lu(100, 2.5, 0.0, 1).is_err());
    }

    #[test]
    fn empty_graph_ok() {
        let g = chung_lu(0, 2.5, 4.0, 1).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }
}
