//! Barabási–Albert preferential attachment.

use crate::error::{GraphError, Result};
use crate::gen::rng::Xoshiro256pp;
use crate::{CsrGraph, GraphBuilder, Vertex};

/// Generates a Barabási–Albert preferential-attachment graph.
///
/// Starts from a clique on `m + 1` vertices; every later vertex attaches to
/// `m` distinct existing vertices chosen proportionally to degree (via the
/// classic repeated-endpoint list). Produces connected graphs with power-law
/// degree distributions — the social-network stand-in of the harness.
///
/// # Errors
///
/// `m` must satisfy `1 <= m < n`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<CsrGraph> {
    if m == 0 || m >= n {
        return Err(GraphError::InvalidParameter {
            message: format!("barabasi_albert requires 1 <= m < n (n={n}, m={m})"),
        });
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * m);
    // Every edge endpoint is appended here; sampling an element is
    // degree-proportional sampling.
    let mut endpoints: Vec<Vertex> = Vec::with_capacity(2 * n * m);

    let seed_size = m + 1;
    for u in 0..seed_size as Vertex {
        for v in (u + 1)..seed_size as Vertex {
            builder.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    let mut picked: Vec<Vertex> = Vec::with_capacity(m);
    for v in seed_size as Vertex..n as Vertex {
        picked.clear();
        // Rejection-sample m distinct targets; m is tiny (≤ ~32) so the
        // quadratic distinctness check is cheaper than a hash set.
        while picked.len() < m {
            let t = endpoints[rng.next_index(endpoints.len())];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            builder.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::components::is_connected;

    #[test]
    fn produces_expected_edge_count() {
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, 1).unwrap();
        assert_eq!(g.num_vertices(), n);
        // clique(m+1) + m per additional vertex
        assert_eq!(g.num_edges(), m * (m + 1) / 2 + (n - m - 1) * m);
    }

    #[test]
    fn is_connected_and_deterministic() {
        let a = barabasi_albert(300, 2, 7).unwrap();
        let b = barabasi_albert(300, 2, 7).unwrap();
        assert_eq!(a, b);
        assert!(is_connected(&a));
    }

    #[test]
    fn has_skewed_degrees() {
        let g = barabasi_albert(2000, 2, 3).unwrap();
        // Preferential attachment must create hubs well above the mean.
        assert!(g.max_degree() > 10 * g.avg_degree() as usize);
    }

    #[test]
    fn rejects_bad_m() {
        assert!(barabasi_albert(10, 0, 1).is_err());
        assert!(barabasi_albert(10, 10, 1).is_err());
    }

    #[test]
    fn minimal_case_m1() {
        let g = barabasi_albert(50, 1, 9).unwrap();
        // m = 1 yields a tree on the non-seed part plus the 1-edge seed clique.
        assert_eq!(g.num_edges(), 1 + 48);
        assert!(is_connected(&g));
    }
}
