//! R-MAT (recursive matrix) generator.

use crate::error::{GraphError, Result};
use crate::gen::rng::Xoshiro256pp;
use crate::{CsrGraph, GraphBuilder, Vertex};

/// Quadrant probabilities for the recursive matrix model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant (`1 - a - b - c`).
    pub d: f64,
}

impl RmatParams {
    /// The classic Graph500-style skewed parameters.
    pub const GRAPH500: RmatParams = RmatParams {
        a: 0.57,
        b: 0.19,
        c: 0.19,
        d: 0.05,
    };

    fn validate(&self) -> Result<()> {
        let sum = self.a + self.b + self.c + self.d;
        if self.a < 0.0 || self.b < 0.0 || self.c < 0.0 || self.d < 0.0 {
            return Err(GraphError::InvalidParameter {
                message: "R-MAT probabilities must be non-negative".into(),
            });
        }
        if (sum - 1.0).abs() > 1e-9 {
            return Err(GraphError::InvalidParameter {
                message: format!("R-MAT probabilities must sum to 1, got {sum}"),
            });
        }
        Ok(())
    }
}

/// Generates an undirected R-MAT graph with `2^scale` vertices and about
/// `edge_factor * 2^scale` distinct edges (duplicates and self-loops are
/// dropped, as is conventional).
///
/// # Errors
///
/// `scale` must be `1..=30` and parameters must form a distribution.
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Result<CsrGraph> {
    if scale == 0 || scale > 30 {
        return Err(GraphError::InvalidParameter {
            message: format!("rmat scale must be in 1..=30, got {scale}"),
        });
    }
    params.validate()?;
    let n = 1usize << scale;
    let target = n * edge_factor;
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, target);
    for _ in 0..target {
        let mut u = 0usize;
        let mut v = 0usize;
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r = rng.next_f64();
            if r < params.a {
                // top-left: no bits set
            } else if r < params.a + params.b {
                v |= 1;
            } else if r < params.a + params.b + params.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        builder.add_edge(u as Vertex, v as Vertex);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = rmat(8, 4, RmatParams::GRAPH500, 1).unwrap();
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 256 * 4);
    }

    #[test]
    fn skewed_parameters_make_hubs() {
        let g = rmat(10, 8, RmatParams::GRAPH500, 3).unwrap();
        assert!(g.max_degree() > 4 * g.avg_degree().ceil() as usize);
    }

    #[test]
    fn uniform_parameters_are_roughly_regular() {
        let uniform = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        };
        let g = rmat(9, 8, uniform, 3).unwrap();
        // With no skew, the max degree stays within a small factor of mean.
        assert!(g.max_degree() < 6 * g.avg_degree().ceil() as usize);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            rmat(7, 4, RmatParams::GRAPH500, 5).unwrap(),
            rmat(7, 4, RmatParams::GRAPH500, 5).unwrap()
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(rmat(0, 4, RmatParams::GRAPH500, 1).is_err());
        assert!(rmat(31, 4, RmatParams::GRAPH500, 1).is_err());
        let bad = RmatParams {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: -0.5,
        };
        assert!(rmat(5, 2, bad, 1).is_err());
        let not_normalised = RmatParams {
            a: 0.3,
            b: 0.3,
            c: 0.3,
            d: 0.3,
        };
        assert!(rmat(5, 2, not_normalised, 1).is_err());
    }
}
