//! Deterministic structured families: paths, cycles, grids, stars, trees.
//!
//! These exercise edge cases (high diameter, low tree-width) and the
//! Theorem 4.4 experiments: grids and trees have tree-width `O(√n)` and 1
//! respectively, where the centroid-decomposition ordering provably yields
//! `O(w log n)` labels.

use crate::error::{GraphError, Result};
use crate::gen::rng::Xoshiro256pp;
use crate::{CsrGraph, Vertex};

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Result<CsrGraph> {
    let edges: Vec<_> = (1..n as Vertex).map(|v| (v - 1, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// Cycle graph on `n >= 3` vertices.
pub fn cycle(n: usize) -> Result<CsrGraph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            message: format!("cycle requires n >= 3, got {n}"),
        });
    }
    let mut edges: Vec<_> = (1..n as Vertex).map(|v| (v - 1, v)).collect();
    edges.push((n as Vertex - 1, 0));
    CsrGraph::from_edges(n, &edges)
}

/// `rows x cols` grid; vertex `(r, c)` has id `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> Result<CsrGraph> {
    let n = rows * cols;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as Vertex;
            if c + 1 < cols {
                edges.push((v, v + 1));
            }
            if r + 1 < rows {
                edges.push((v, v + cols as Vertex));
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// `rows x cols` torus (grid with wraparound); requires `rows, cols >= 3`.
pub fn torus(rows: usize, cols: usize) -> Result<CsrGraph> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InvalidParameter {
            message: format!("torus requires rows, cols >= 3, got {rows}x{cols}"),
        });
    }
    let n = rows * cols;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as Vertex;
            let right = (r * cols + (c + 1) % cols) as Vertex;
            let down = (((r + 1) % rows) * cols + c) as Vertex;
            edges.push((v, right));
            edges.push((v, down));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Star with centre 0 and `n - 1` leaves.
pub fn star(n: usize) -> Result<CsrGraph> {
    let edges: Vec<_> = (1..n as Vertex).map(|v| (0, v)).collect();
    CsrGraph::from_edges(n, &edges)
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> Result<CsrGraph> {
    let mut edges = Vec::with_capacity(n * (n.saturating_sub(1)) / 2);
    for u in 0..n as Vertex {
        for v in (u + 1)..n as Vertex {
            edges.push((u, v));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Complete `branching`-ary tree of the given `depth` (depth 0 = single
/// root). Vertices are numbered in BFS order.
pub fn balanced_tree(branching: usize, depth: usize) -> Result<CsrGraph> {
    if branching == 0 {
        return Err(GraphError::InvalidParameter {
            message: "balanced_tree requires branching >= 1".into(),
        });
    }
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level = level.saturating_mul(branching);
        n = n.checked_add(level).ok_or(GraphError::TooLarge {
            what: "tree vertex count",
        })?;
    }
    if n > u32::MAX as usize - 1 {
        return Err(GraphError::TooLarge {
            what: "tree vertex count",
        });
    }
    let mut edges = Vec::with_capacity(n - 1);
    for v in 1..n {
        let parent = (v - 1) / branching;
        edges.push((parent as Vertex, v as Vertex));
    }
    CsrGraph::from_edges(n, &edges)
}

/// Caterpillar: a spine path of `spine` vertices, each with `legs` pendant
/// leaves. Tree-width 1, useful for fringe-structure tests.
pub fn caterpillar(spine: usize, legs: usize) -> Result<CsrGraph> {
    if spine == 0 {
        return Err(GraphError::InvalidParameter {
            message: "caterpillar requires spine >= 1".into(),
        });
    }
    let n = spine + spine * legs;
    let mut edges = Vec::with_capacity(n - 1);
    for s in 1..spine {
        edges.push(((s - 1) as Vertex, s as Vertex));
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            edges.push((s as Vertex, next as Vertex));
            next += 1;
        }
    }
    CsrGraph::from_edges(n, &edges)
}

/// Uniform random recursive tree: vertex `v` attaches to a uniformly random
/// earlier vertex.
pub fn random_tree(n: usize, seed: u64) -> Result<CsrGraph> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n {
        let parent = rng.next_index(v) as Vertex;
        edges.push((parent, v as Vertex));
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{bfs, components::is_connected};

    #[test]
    fn path_shape() {
        let g = path(5).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(bfs::distances(&g, 0)[4], 4);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert_eq!(bfs::distances(&g, 0)[3], 3);
        assert!(cycle(2).is_err());
    }

    #[test]
    fn grid_shape_and_distances() {
        let g = grid(4, 5).unwrap();
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 4 * 4 + 3 * 5);
        // Manhattan distance from (0,0) to (3,4).
        assert_eq!(bfs::distances(&g, 0)[19], 7);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 4).unwrap();
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(torus(2, 4).is_err());
    }

    #[test]
    fn star_shape() {
        let g = star(10).unwrap();
        assert_eq!(g.degree(0), 9);
        assert_eq!(bfs::distances(&g, 1)[2], 2);
    }

    #[test]
    fn complete_shape() {
        let g = complete(6).unwrap();
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn balanced_tree_counts() {
        let g = balanced_tree(2, 3).unwrap();
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert!(is_connected(&g));
        assert!(balanced_tree(0, 2).is_err());
    }

    #[test]
    fn caterpillar_counts() {
        let g = caterpillar(5, 3).unwrap();
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 19);
        assert!(is_connected(&g));
        assert!(caterpillar(0, 3).is_err());
    }

    #[test]
    fn random_tree_is_spanning_tree() {
        let g = random_tree(200, 3).unwrap();
        assert_eq!(g.num_edges(), 199);
        assert!(is_connected(&g));
        assert_eq!(random_tree(200, 3).unwrap(), g);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(path(0).unwrap().num_vertices(), 0);
        assert_eq!(path(1).unwrap().num_edges(), 0);
        assert_eq!(star(1).unwrap().num_edges(), 0);
        assert_eq!(complete(1).unwrap().num_edges(), 0);
        assert_eq!(random_tree(1, 0).unwrap().num_edges(), 0);
    }
}
