//! Synthetic network generators.
//!
//! The paper evaluates on eleven real-world networks (Table 4). Those dumps
//! are not redistributable here, so the experiment harness substitutes
//! synthetic models matched by network class (see DESIGN.md §6):
//!
//! * social networks → [`barabasi_albert`] / [`chung_lu`] (power-law degree
//!   distributions, small diameters);
//! * web graphs → [`copying_model`] (power-law plus link-copying locality);
//! * computer/P2P networks → sparse [`barabasi_albert`] / [`rmat`];
//! * structured families (paths, grids, trees, …) → [`path`]/[`grid`]/[`balanced_tree`] and friends, used by the
//!   tree-width experiments around Theorem 4.4.
//!
//! All generators take an explicit `seed` and are deterministic across
//! platforms (see [`rng`]).

pub mod rng;

mod ba;
mod chung_lu;
mod copying;
mod er;
mod forest_fire;
mod regular;
mod rmat;
mod ws;

pub use ba::barabasi_albert;
pub use chung_lu::chung_lu;
pub use copying::copying_model;
pub use er::{erdos_renyi_gnm, erdos_renyi_gnp};
pub use forest_fire::forest_fire;
pub use regular::{
    balanced_tree, caterpillar, complete, cycle, grid, path, random_tree, star, torus,
};
pub use rmat::{rmat, RmatParams};
pub use ws::watts_strogatz;
