//! Forest-fire model (Leskovec, Kleinberg, Faloutsos).

use crate::error::{GraphError, Result};
use crate::gen::rng::Xoshiro256pp;
use crate::{CsrGraph, GraphBuilder, Vertex};
use std::collections::HashSet;

/// Generates a forest-fire graph.
///
/// Each new vertex links to a random *ambassador* and then "burns" through
/// the ambassador's neighbourhood: from every burned vertex it links to a
/// geometrically-distributed number (mean `p / (1 − p)`) of that vertex's
/// not-yet-burned neighbours and recurses. Produces heavy-tailed degrees,
/// densification and small diameters — a good stand-in for citation-like
/// and social growth processes.
///
/// # Errors
///
/// Requires `n >= 1` and `burn_prob` in `[0, 1)`.
pub fn forest_fire(n: usize, burn_prob: f64, seed: u64) -> Result<CsrGraph> {
    if n == 0 {
        return CsrGraph::from_edges(0, &[]);
    }
    if !(0.0..1.0).contains(&burn_prob) {
        return Err(GraphError::InvalidParameter {
            message: format!("forest_fire requires burn_prob in [0,1), got {burn_prob}"),
        });
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    // Adjacency of the growing graph (links from earlier steps).
    let mut adj: Vec<Vec<Vertex>> = vec![Vec::new(); n];
    let link = |adj: &mut Vec<Vec<Vertex>>, builder: &mut GraphBuilder, a: Vertex, b: Vertex| {
        adj[a as usize].push(b);
        adj[b as usize].push(a);
        builder.add_edge(a, b);
    };

    let mut burned: HashSet<Vertex> = HashSet::new();
    let mut frontier: Vec<Vertex> = Vec::new();
    for v in 1..n as Vertex {
        let ambassador = rng.next_below(v as u64) as Vertex;
        burned.clear();
        burned.insert(v);
        burned.insert(ambassador);
        link(&mut adj, &mut builder, v, ambassador);

        frontier.clear();
        frontier.push(ambassador);
        // Cap total burn to keep generation near-linear, as is customary.
        let burn_cap = 32usize;
        let mut burned_count = 1usize;
        while let Some(w) = frontier.pop() {
            if burned_count >= burn_cap {
                break;
            }
            // Geometric number of spreads: keep drawing successes.
            let mut spread = 0usize;
            while rng.next_bool(burn_prob) {
                spread += 1;
            }
            if spread == 0 {
                continue;
            }
            // Sample unburned neighbours of w.
            let candidates: Vec<Vertex> = adj[w as usize]
                .iter()
                .copied()
                .filter(|x| !burned.contains(x))
                .collect();
            for &x in candidates.iter().take(spread) {
                if burned_count >= burn_cap {
                    break;
                }
                burned.insert(x);
                burned_count += 1;
                link(&mut adj, &mut builder, v, x);
                frontier.push(x);
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::components::is_connected;

    #[test]
    fn connected_and_deterministic() {
        let a = forest_fire(500, 0.35, 7).unwrap();
        let b = forest_fire(500, 0.35, 7).unwrap();
        assert_eq!(a, b);
        assert!(is_connected(&a));
        assert!(a.num_edges() >= 499, "at least a spanning tree");
    }

    #[test]
    fn higher_burn_probability_densifies() {
        let sparse = forest_fire(800, 0.1, 3).unwrap();
        let dense = forest_fire(800, 0.5, 3).unwrap();
        assert!(
            dense.num_edges() > sparse.num_edges() * 2,
            "dense {} vs sparse {}",
            dense.num_edges(),
            sparse.num_edges()
        );
    }

    #[test]
    fn heavy_tailed_degrees() {
        let g = forest_fire(2000, 0.45, 11).unwrap();
        assert!(g.max_degree() > 8 * g.avg_degree() as usize);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(forest_fire(0, 0.3, 1).unwrap().num_vertices(), 0);
        assert_eq!(forest_fire(1, 0.3, 1).unwrap().num_edges(), 0);
        assert_eq!(forest_fire(2, 0.0, 1).unwrap().num_edges(), 1);
        assert!(forest_fire(10, 1.0, 1).is_err());
        assert!(forest_fire(10, -0.1, 1).is_err());
    }
}
