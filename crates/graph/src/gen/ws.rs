//! Watts–Strogatz small-world graphs.

use crate::error::{GraphError, Result};
use crate::gen::rng::Xoshiro256pp;
use crate::{CsrGraph, Vertex};
use std::collections::HashSet;

/// Generates a Watts–Strogatz small-world graph.
///
/// Starts from a ring lattice where every vertex connects to its `k` nearest
/// neighbours (`k` even), then rewires each edge's far endpoint with
/// probability `beta`, avoiding self-loops and duplicates.
///
/// # Errors
///
/// Requires `k` even, `0 < k < n`, and `beta` in `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Result<CsrGraph> {
    if k == 0 || !k.is_multiple_of(2) || k >= n {
        return Err(GraphError::InvalidParameter {
            message: format!("watts_strogatz requires even 0 < k < n (n={n}, k={k})"),
        });
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(GraphError::InvalidParameter {
            message: format!("watts_strogatz requires beta in [0,1], got {beta}"),
        });
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut edges: HashSet<(Vertex, Vertex)> = HashSet::with_capacity(n * k / 2);
    let norm = |u: Vertex, v: Vertex| if u < v { (u, v) } else { (v, u) };
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            edges.insert(norm(u as Vertex, v as Vertex));
        }
    }
    // Rewire: iterate the deterministic lattice edges so output is stable.
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            let key = norm(u as Vertex, v as Vertex);
            if !rng.next_bool(beta) || !edges.contains(&key) {
                continue;
            }
            // Try a handful of replacement endpoints; keep original if the
            // vertex is saturated.
            for _ in 0..32 {
                let w = rng.next_below(n as u64) as Vertex;
                if w as usize == u || w as usize == v {
                    continue;
                }
                let new_key = norm(u as Vertex, w);
                if !edges.contains(&new_key) {
                    edges.remove(&key);
                    edges.insert(new_key);
                    break;
                }
            }
        }
    }
    let mut list: Vec<(Vertex, Vertex)> = edges.into_iter().collect();
    list.sort_unstable();
    CsrGraph::from_edges(n, &list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_beta_is_ring_lattice() {
        let g = watts_strogatz(10, 4, 0.0, 1).unwrap();
        assert_eq!(g.num_edges(), 10 * 4 / 2);
        for v in 0..10u32 {
            assert_eq!(g.degree(v), 4);
            assert!(g.has_edge(v, (v + 1) % 10));
            assert!(g.has_edge(v, (v + 2) % 10));
        }
    }

    #[test]
    fn rewiring_preserves_edge_count() {
        let g = watts_strogatz(200, 6, 0.3, 5).unwrap();
        assert_eq!(g.num_edges(), 200 * 6 / 2);
    }

    #[test]
    fn full_rewire_changes_structure() {
        let lattice = watts_strogatz(100, 4, 0.0, 2).unwrap();
        let rewired = watts_strogatz(100, 4, 1.0, 2).unwrap();
        assert_ne!(lattice, rewired);
        assert_eq!(lattice.num_edges(), rewired.num_edges());
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            watts_strogatz(80, 4, 0.2, 11).unwrap(),
            watts_strogatz(80, 4, 0.2, 11).unwrap()
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(watts_strogatz(10, 3, 0.1, 1).is_err()); // odd k
        assert!(watts_strogatz(10, 0, 0.1, 1).is_err());
        assert!(watts_strogatz(4, 4, 0.1, 1).is_err()); // k >= n
        assert!(watts_strogatz(10, 4, 1.5, 1).is_err());
    }
}
