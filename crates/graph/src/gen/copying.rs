//! Linear-growth copying model for web-graph stand-ins.

use crate::error::{GraphError, Result};
use crate::gen::rng::Xoshiro256pp;
use crate::{CsrGraph, GraphBuilder, Vertex};

/// Generates a graph with the Kleinberg et al. copying model.
///
/// Each new vertex picks a uniformly random *prototype* among existing
/// vertices and creates `out_deg` links; each link copies the corresponding
/// prototype link with probability `copy_prob` and otherwise points to a
/// uniform random existing vertex. Copying concentrates links on popular
/// pages, giving the power-law + locality structure of web crawls (the web
/// stand-in for NotreDame / Indo / Indochina).
///
/// # Errors
///
/// Requires `1 <= out_deg < n` and `copy_prob` in `[0, 1]`.
pub fn copying_model(n: usize, out_deg: usize, copy_prob: f64, seed: u64) -> Result<CsrGraph> {
    if out_deg == 0 || out_deg >= n {
        return Err(GraphError::InvalidParameter {
            message: format!("copying_model requires 1 <= out_deg < n (n={n}, out_deg={out_deg})"),
        });
    }
    if !(0.0..=1.0).contains(&copy_prob) {
        return Err(GraphError::InvalidParameter {
            message: format!("copying_model requires copy_prob in [0,1], got {copy_prob}"),
        });
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * out_deg);
    // links[v] holds v's out-links for later copying.
    let mut links: Vec<Vec<Vertex>> = Vec::with_capacity(n);

    let seed_size = out_deg + 1;
    for u in 0..seed_size {
        // Seed clique-ish: vertex u links to all earlier seeds (ring for u=0).
        let mut mine = Vec::with_capacity(out_deg);
        for v in 0..u {
            builder.add_edge(u as Vertex, v as Vertex);
            mine.push(v as Vertex);
        }
        links.push(mine);
    }

    for u in seed_size..n {
        let prototype = rng.next_index(u);
        let proto_links = links[prototype].clone();
        let mut mine = Vec::with_capacity(out_deg);
        for slot in 0..out_deg {
            let target = if slot < proto_links.len() && rng.next_bool(copy_prob) {
                proto_links[slot]
            } else {
                rng.next_below(u as u64) as Vertex
            };
            if target as usize != u && !mine.contains(&target) {
                builder.add_edge(u as Vertex, target);
                mine.push(target);
            }
        }
        links.push(mine);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = copying_model(1000, 5, 0.6, 4).unwrap();
        let b = copying_model(1000, 5, 0.6, 4).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.num_vertices(), 1000);
        // Each non-seed vertex adds at most out_deg edges.
        assert!(a.num_edges() <= 1000 * 5);
        assert!(a.num_edges() > 1000);
    }

    #[test]
    fn copying_creates_heavier_hubs_than_uniform() {
        let copied = copying_model(3000, 4, 0.9, 8).unwrap();
        let uniform = copying_model(3000, 4, 0.0, 8).unwrap();
        assert!(copied.max_degree() > 2 * uniform.max_degree());
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(copying_model(10, 0, 0.5, 1).is_err());
        assert!(copying_model(10, 10, 0.5, 1).is_err());
        assert!(copying_model(10, 2, 1.5, 1).is_err());
    }
}
