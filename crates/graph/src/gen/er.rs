//! Erdős–Rényi random graphs, G(n, m) and G(n, p).

use crate::error::{GraphError, Result};
use crate::gen::rng::Xoshiro256pp;
use crate::{CsrGraph, GraphBuilder, Vertex};
use std::collections::HashSet;

/// Generates a uniform random graph with exactly `m` distinct edges.
///
/// # Errors
///
/// `m` must not exceed `n * (n - 1) / 2`.
pub fn erdos_renyi_gnm(n: usize, m: usize, seed: u64) -> Result<CsrGraph> {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    if m > max_edges {
        return Err(GraphError::InvalidParameter {
            message: format!("G(n,m) with n={n} admits at most {max_edges} edges, got {m}"),
        });
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut chosen: HashSet<(Vertex, Vertex)> = HashSet::with_capacity(m * 2);
    let mut builder = GraphBuilder::with_capacity(n, m);
    // Dense case guard: if m is a large fraction of all pairs, enumerate and
    // shuffle instead of rejection sampling.
    if max_edges > 0 && m * 3 >= max_edges * 2 {
        let mut all: Vec<(Vertex, Vertex)> = Vec::with_capacity(max_edges);
        for u in 0..n as Vertex {
            for v in (u + 1)..n as Vertex {
                all.push((u, v));
            }
        }
        rng.shuffle(&mut all);
        builder.extend_edges(all.into_iter().take(m));
        return builder.build();
    }
    while chosen.len() < m {
        let u = rng.next_below(n as u64) as Vertex;
        let v = rng.next_below(n as u64) as Vertex;
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if chosen.insert(key) {
            builder.add_edge(key.0, key.1);
        }
    }
    builder.build()
}

/// Generates G(n, p) using geometric edge skipping (O(n + m) expected time).
///
/// # Errors
///
/// `p` must lie in `[0, 1]`.
pub fn erdos_renyi_gnp(n: usize, p: f64, seed: u64) -> Result<CsrGraph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            message: format!("G(n,p) requires p in [0,1], got {p}"),
        });
    }
    let mut builder = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return builder.build();
    }
    if p == 1.0 {
        for u in 0..n as Vertex {
            for v in (u + 1)..n as Vertex {
                builder.add_edge(u, v);
            }
        }
        return builder.build();
    }
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    // Batagelj–Brandes skipping over the lower-triangular pair sequence.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n_i = n as i64;
    while v < n_i {
        let r = 1.0 - rng.next_f64(); // (0, 1]
        let skip = (r.ln() / log_q).floor() as i64;
        w += 1 + skip;
        while w >= v && v < n_i {
            w -= v;
            v += 1;
        }
        if v < n_i {
            builder.add_edge(w as Vertex, v as Vertex);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(100, 250, 5).unwrap();
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn gnm_dense_path() {
        // 10 choose 2 = 45; ask for 40 to trigger the enumerate+shuffle path.
        let g = erdos_renyi_gnm(10, 40, 5).unwrap();
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    fn gnm_full_clique() {
        let g = erdos_renyi_gnm(8, 28, 1).unwrap();
        assert_eq!(g.num_edges(), 28);
        assert_eq!(g.max_degree(), 7);
    }

    #[test]
    fn gnm_rejects_impossible() {
        assert!(erdos_renyi_gnm(4, 7, 0).is_err());
    }

    #[test]
    fn gnm_deterministic() {
        assert_eq!(
            erdos_renyi_gnm(60, 120, 9).unwrap(),
            erdos_renyi_gnm(60, 120, 9).unwrap()
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(20, 0.0, 1).unwrap().num_edges(), 0);
        assert_eq!(erdos_renyi_gnp(7, 1.0, 1).unwrap().num_edges(), 21);
        assert!(erdos_renyi_gnp(5, 1.5, 1).is_err());
        assert!(erdos_renyi_gnp(5, -0.1, 1).is_err());
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 400;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, 13).unwrap();
        let expect = (n * (n - 1) / 2) as f64 * p;
        let got = g.num_edges() as f64;
        assert!(
            (got - expect).abs() < 0.15 * expect,
            "expected ~{expect}, got {got}"
        );
    }

    #[test]
    fn gnp_deterministic() {
        assert_eq!(
            erdos_renyi_gnp(100, 0.1, 21).unwrap(),
            erdos_renyi_gnp(100, 0.1, 21).unwrap()
        );
    }
}
