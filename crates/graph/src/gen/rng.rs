//! Deterministic PRNG for dataset generation.
//!
//! The synthetic stand-ins for the paper's datasets must be bit-identical
//! across machines and across dependency upgrades, so the generators use an
//! in-crate xoshiro256++ (seeded through SplitMix64, as its authors
//! recommend) rather than `rand`'s version-dependent engines. `rand` remains
//! a dev-dependency for test inputs where stability does not matter.

/// xoshiro256++ PRNG (Blackman & Vigna). Not cryptographically secure; used
/// only for reproducible graph synthesis and workload sampling.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        // SplitMix64 never yields an all-zero state from these constants,
        // but guard anyway: xoshiro must not start at zero.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        Xoshiro256pp { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Unbiased rejection sampling on the 128-bit product.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(12345);
        let mut b = Xoshiro256pp::seed_from_u64(12345);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.next_below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bool_extremes() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.next_bool(0.0)));
        assert!((0..100).all(|_| rng.next_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_and_single() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn rough_uniformity_of_next_below() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[rng.next_index(4)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }
}
