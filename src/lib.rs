//! Facade crate for the pruned landmark labeling workspace.
//!
//! This crate re-exports the public API of every workspace member so that
//! downstream users (and the repository's examples and integration tests)
//! depend on a single crate:
//!
//! * [`graph`] — CSR graphs, generators, traversal, statistics;
//! * [`pll`] — the pruned landmark labeling index (the paper's
//!   contribution): undirected/directed/weighted construction, bit-parallel
//!   labels, queries, path reconstruction, serialisation;
//! * [`baselines`] — the comparison methods of the paper's evaluation;
//! * [`treedecomp`] — tree-decomposition substrate (Theorem 4.4);
//! * [`datasets`] — synthetic stand-ins for the paper's eleven datasets.
//!
//! # Quickstart
//!
//! ```
//! use pruned_landmark_labeling::graph::gen;
//! use pruned_landmark_labeling::pll::{IndexBuilder, OrderingStrategy};
//!
//! // A small social-network-like graph.
//! let g = gen::barabasi_albert(1_000, 3, 42).unwrap();
//!
//! // Build the 2-hop index: degree ordering, 4 bit-parallel roots.
//! let index = IndexBuilder::new()
//!     .ordering(OrderingStrategy::Degree)
//!     .bit_parallel_roots(4)
//!     .build(&g)
//!     .unwrap();
//!
//! // Exact distances in microseconds.
//! let d = index.distance(17, 923);
//! assert!(d.is_some());
//! ```

pub use pll_baselines as baselines;
pub use pll_core as pll;
pub use pll_datasets as datasets;
pub use pll_graph as graph;
pub use pll_treedecomp as treedecomp;
